"""Section 5.1 performance claims.

The paper (on a 2003 Pentium IV): "given a query interface of size about 25
(number of tokens), parsing takes about 1 second.  Parsing 120 query
interfaces with average size 22 takes less than 100 seconds" -- parsing
time only, excluding tokenization and merging.

We reproduce the same two measurements: the per-interface parse time at
size ~25 and the batch parse time over 120 interfaces of average size ~22.
Absolute numbers on modern hardware are far smaller; the claim that holds
is the *feasibility shape*: near-interactive parses despite the
NP-complete worst case.
"""

from __future__ import annotations

import time

from benchmarks.conftest import (
    bench_batch_count,
    drop_metric,
    record_metric,
    record_table,
)
from repro.bench import SCALE_TIERS, generate_token_sets, run_scale_sweep
from repro.grammar.standard import build_standard_grammar
from repro.parser import is_compiled
from repro.parser.parser import BestEffortParser, ParserConfig


def _token_sets(target_count, size_low, size_high, base_seed):
    """Tokenized forms whose sizes fall within the requested band.

    Delegates to :func:`repro.bench.generate_token_sets` so ``repro
    bench`` and the pytest benchmarks measure the identical workload.
    """
    return generate_token_sets(target_count, size_low, size_high, base_seed)


def test_parse_time_single_interface(benchmark):
    """One interface of ~25 tokens: the paper's 'about 1 second' case."""
    (tokens,) = _token_sets(1, 23, 27, base_seed=60_000)
    parser = BestEffortParser(build_standard_grammar())

    result = benchmark(parser.parse, tokens)
    assert result.trees
    benchmark.extra_info["tokens"] = len(tokens)
    record_table(
        "Section 5.1: single-interface parse time",
        f"interface size: {len(tokens)} tokens\n"
        f"paper: ~1 s on 2003 hardware; measured mean reported by "
        f"pytest-benchmark above (must be well under 1 s)",
    )


def test_parse_time_scaling(benchmark):
    """Parse time vs interface size.

    Visual-language membership is NP-complete (Section 5.1); this sweep
    shows the preference machinery holding growth to something usable
    across the realistic size band.
    """
    bands = ((8, 12), (13, 18), (19, 26), (27, 36), (37, 52))
    parser = BestEffortParser(build_standard_grammar())
    samples = {
        band: _token_sets(4, band[0], band[1], base_seed=62_000 + i * 5_000)
        for i, band in enumerate(bands)
    }

    def run():
        rows = []
        for band, token_sets in samples.items():
            if not token_sets:
                continue
            started = time.perf_counter()
            for tokens in token_sets:
                parser.parse(tokens)
            elapsed = time.perf_counter() - started
            mean_size = sum(len(t) for t in token_sets) / len(token_sets)
            rows.append((mean_size, 1000 * elapsed / len(token_sets)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["avg tokens   ms/interface"]
    for mean_size, ms in rows:
        lines.append(f"{mean_size:10.1f}   {ms:10.1f}")
    lines.append("growth stays polynomial-ish in the realistic band; the "
                 "NP-complete worst case never materializes under pruning")
    record_table("Section 5.1 (extended): parse time vs interface size",
                 "\n".join(lines))
    assert len(rows) >= 3
    # Largest band stays interactive.
    assert rows[-1][1] < 2_000.0


def test_parse_time_batch_120(benchmark):
    """120 interfaces of average size ~22: the paper's '<100 s' case.

    Best-of-3 rounds: wall-clock noise on shared hosts routinely exceeds
    30%, so the recorded metric keeps the best round -- the number
    closest to what the code costs, not what the neighbors cost.
    """
    batch_count = bench_batch_count()
    token_sets = _token_sets(batch_count, 14, 32, base_seed=61_000)
    average_size = sum(len(t) for t in token_sets) / len(token_sets)
    parser = BestEffortParser(build_standard_grammar())
    walls = []

    def parse_all():
        started = time.perf_counter()
        for tokens in token_sets:
            parser.parse(tokens)
        walls.append(time.perf_counter() - started)
        return walls[-1]

    benchmark.pedantic(parse_all, rounds=3, iterations=1)
    elapsed = min(walls)
    record_table(
        "Section 5.1: batch parse time (120 interfaces)",
        f"interfaces: {len(token_sets)}, average size: {average_size:.1f} "
        f"tokens, {parser.kernel} kernel\n"
        f"measured: {elapsed:.2f} s total "
        f"({1000 * elapsed / len(token_sets):.1f} ms/interface, best of "
        f"{len(walls)} rounds)\n"
        f"paper: < 100 s on 2003 hardware",
    )
    benchmark.extra_info["interfaces"] = len(token_sets)
    benchmark.extra_info["average_size"] = round(average_size, 1)
    benchmark.extra_info["total_seconds"] = round(elapsed, 3)
    record_metric("batch120.kernel", parser.kernel)
    record_metric("batch120.compiled", is_compiled())
    record_metric("batch120.seminaive.wall_seconds", round(elapsed, 4))
    record_metric(
        "batch120.seminaive.wall_rounds", [round(w, 4) for w in walls]
    )
    record_metric("batch120.average_size", round(average_size, 1))
    record_metric("batch120.forms", len(token_sets))
    assert len(token_sets) == batch_count
    assert 16 <= average_size <= 28
    assert elapsed < 100.0


def test_parse_time_batch_seminaive_vs_naive(benchmark):
    """Semi-naive fix-point vs the legacy naive loop on the 120 corpus.

    The semi-naive evaluator (frontier deltas + declarative spatial
    bounds + band indexing) is a pure performance transformation -- the
    equivalence suite pins identical output -- so the whole difference
    here is enumeration avoided.
    """
    token_sets = _token_sets(bench_batch_count(), 14, 32, base_seed=61_000)
    grammar = build_standard_grammar()

    def run(mode):
        parser = BestEffortParser(grammar, ParserConfig(evaluation=mode))
        combos = 0
        started = time.perf_counter()
        for tokens in token_sets:
            combos += parser.parse(tokens).stats.combos_examined
        return time.perf_counter() - started, combos

    naive_seconds, naive_combos = run("naive")
    fast_seconds, fast_combos = benchmark.pedantic(
        lambda: run("seminaive"), rounds=1, iterations=1
    )
    combo_ratio = naive_combos / max(1, fast_combos)
    speedup = naive_seconds / max(1e-9, fast_seconds)
    # Both legs ran in this process, so one build stamp covers the pair;
    # the regression gate refuses to compare runs whose stamps differ.
    record_metric("batch120.compiled", is_compiled())
    record_metric("batch120.naive.wall_seconds", round(naive_seconds, 4))
    record_metric("batch120.naive.combos_examined", naive_combos)
    record_metric("batch120.seminaive.combos_examined", fast_combos)
    record_metric("batch120.combo_reduction", round(combo_ratio, 2))
    record_metric("batch120.singleprocess_speedup", round(speedup, 2))
    record_metric("batch120.forms", len(token_sets))
    record_table(
        "Semi-naive vs naive fix-point (120 interfaces)",
        f"combos examined: {naive_combos} naive -> {fast_combos} "
        f"semi-naive ({combo_ratio:.1f}x fewer)\n"
        f"wall time: {naive_seconds:.2f} s naive -> {fast_seconds:.2f} s "
        f"semi-naive ({speedup:.1f}x faster, single process)",
    )
    # Acceptance bars for the rewrite.
    assert combo_ratio >= 3.0
    assert speedup >= 2.0


#: Forms feeding the scaling sweep: enough for one 16-form soup on the
#: largest tier.  Fixed rather than ``REPRO_BENCH_BATCH``-scaled -- the
#: sweep measures pool *size* effects, so its workload must not drift
#: with the batch knob.
SCALE_SWEEP_FORMS = 16


def test_parse_time_pool_scaling(benchmark):
    """Pool-size scaling: the kernel x compilation matrix per tier.

    Wild-web pages pool far more tokens than any single synthetic form
    (the deep-web crawls motivating the paper routinely do), and both
    the vector kernel's margin and ahead-of-time compilation pay more
    the bigger the pool.  The sweep stacks the standard forms into
    ~4x/16x token soups and records best-of-3 wall per
    (tier, kernel, core build) cell; cells of one tier must agree on
    the work counters, so a speedup is never quoted between cells that
    did different work (``run_scale_sweep`` enforces it).
    """
    token_sets = _token_sets(SCALE_SWEEP_FORMS, 14, 32, base_seed=61_000)
    # CI smoke runs shrink the batch knob; follow with fewer rounds, not
    # a different workload.
    repeats = 3 if bench_batch_count() >= 120 else 1

    sweep = benchmark.pedantic(
        lambda: run_scale_sweep(token_sets, repeats=repeats),
        rounds=1,
        iterations=1,
    )

    record_metric("batch120.scale.compiled_available", sweep.compiled_available)
    tier_names = [name for name, _, _ in SCALE_TIERS]
    for tier, (soups, avg_tokens) in sweep.tiers.items():
        record_metric(f"batch120.scale.{tier}.soups", soups)
        record_metric(f"batch120.scale.{tier}.avg_tokens", round(avg_tokens, 1))
    for kernel in ("vector", "scalar"):
        for core_name in ("interpreted", "compiled"):
            for tier in tier_names:
                key = f"batch120.scale.{tier}.{kernel}.{core_name}.wall_seconds"
                cell = sweep.cell(tier, kernel, core_name)
                if cell is None:
                    # A leg this run could not measure (no numpy, or no
                    # compiled build): drop it so a stale number from an
                    # earlier environment never survives the merge.
                    drop_metric(key)
                else:
                    record_metric(key, round(cell.wall_seconds, 4))
    largest = tier_names[-1]
    best_kernel = "vector" if sweep.cell(largest, "vector", "interpreted") else "scalar"
    speedup = sweep.compiled_speedup(largest, best_kernel)
    if speedup is None:
        drop_metric("batch120.scale.compiled_speedup")
    else:
        record_metric("batch120.scale.compiled_speedup", round(speedup, 2))

    record_table(
        "Pool-size scaling sweep (kernel x compilation matrix)",
        sweep.describe(),
    )
    # The tiers genuinely escalate pool size.
    sizes = [sweep.tiers[tier][1] for tier in tier_names]
    assert sizes == sorted(sizes)
    assert sizes[-1] >= 10 * sizes[0]
    # Every measured cell did identical work per tier (enforced inside
    # run_scale_sweep); the largest tier must actually have run.
    assert sweep.tiers[largest][0] >= 1
