"""Extension experiment: does the extracted model answer queries correctly?

The paper motivates capability extraction by the mediation tasks it
enables; this experiment measures that downstream value directly (it has
no counterpart figure in the paper -- see DESIGN.md §4 "extension").

Setup: simulated deep-Web sources (form + record database).  For each
source we build one probe query per ground-truth condition, plan it twice
-- once through the ground-truth model, once through the model *extracted
from the HTML alone* -- submit both, and compare the returned record sets.
A probe counts as answered when the extraction-driven submission returns
exactly the records the truth-driven submission returns.

The parser's extracted models must answer the large majority of probes;
the pairwise-heuristic baseline, which cannot represent operators, ranges,
or composite dates, must answer substantially fewer.
"""

from __future__ import annotations

from benchmarks.conftest import record_table
from repro.baseline.heuristic import HeuristicExtractor
from repro.datasets.domains import BASIC_DOMAINS, NEW_DOMAINS
from repro.extractor import FormExtractor
from repro.query.planner import Constraint, QueryPlanner
from repro.semantics.condition import SemanticModel
from repro.semantics.matching import normalize_attribute
from repro.webdb.source import SimulatedSource


def _attribute_of(source, condition):
    wanted = normalize_attribute(condition.attribute)
    for spec in source.domain.attributes:
        if normalize_attribute(spec.label) == wanted:
            return spec.label
    return None


def _probes(source):
    probes = []
    for condition in source.generated.truth:
        attribute = _attribute_of(source, condition)
        if attribute is None:
            continue
        kind = condition.domain.kind
        if kind == "text":
            sample = str(source.records[0][attribute]).split()[0]
            operator = None
            if len(condition.operators) > 1:
                operator = condition.operators[-1]
                sample = str(source.records[0][attribute])
            probes.append(Constraint(condition.attribute, sample, operator))
        elif kind == "enum":
            real = [
                value for value in condition.domain.values
                if not value.lower().startswith(("all", "any"))
            ]
            if real:
                probes.append(Constraint(condition.attribute, real[0]))
        elif kind == "range":
            values = sorted(record[attribute] for record in source.records)
            probes.append(
                Constraint(
                    condition.attribute,
                    (values[len(values) // 4], values[-len(values) // 4]),
                )
            )
        elif kind == "datetime":
            probes.append(
                Constraint(condition.attribute, source.records[0][attribute])
            )
    return probes


def _answer_rate(sources, extract_fn) -> tuple[int, int]:
    answered = 0
    total = 0
    for source in sources:
        truth_planner = QueryPlanner(
            SemanticModel(conditions=list(source.generated.truth))
        )
        extracted_planner = QueryPlanner(extract_fn(source.html))
        for probe in _probes(source):
            truth_plan = truth_planner.plan([probe])
            if not truth_plan.complete:
                continue
            total += 1
            expected = source.submit(truth_plan.params)
            extracted_plan = extracted_planner.plan([probe])
            if extracted_plan.complete:
                got = source.submit(extracted_plan.params)
                if got == expected:
                    answered += 1
    return answered, total


def test_query_answerability(benchmark):
    domains = list(BASIC_DOMAINS) + list(NEW_DOMAINS)
    sources = [
        SimulatedSource.create(domain, seed=95_000 + index, record_count=120)
        for index, domain in enumerate(domains * 3)
    ]
    extractor = FormExtractor()
    baseline = HeuristicExtractor()

    def run():
        parser_rate = _answer_rate(sources, extractor.extract)
        baseline_rate = _answer_rate(sources, baseline.extract)
        return parser_rate, baseline_rate

    (p_ok, p_total), (b_ok, b_total) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    parser_pct = 100 * p_ok / max(1, p_total)
    baseline_pct = 100 * b_ok / max(1, b_total)
    record_table(
        "Extension: query answerability through extracted capabilities",
        f"sources: {len(sources)} across {len(domains)} domains; "
        f"probes: {p_total}\n"
        f"parser-extracted model:   {p_ok}/{p_total} probes answered "
        f"exactly ({parser_pct:.0f}%)\n"
        f"baseline-extracted model: {b_ok}/{b_total} probes answered "
        f"exactly ({baseline_pct:.0f}%)\n"
        "an answered probe returns record-for-record the result of the "
        "ground-truth submission",
    )
    benchmark.extra_info["parser_rate"] = round(parser_pct, 1)
    benchmark.extra_info["baseline_rate"] = round(baseline_pct, 1)

    assert p_total >= 30
    assert parser_pct >= 75.0
    assert parser_pct >= baseline_pct + 15.0
