"""Extension experiment: grammar-convention calibration (Section 7).

Trains the spatial calibrator on the Basic dataset, rebuilds the grammar
with the learned thresholds, and compares against the hand-set grammar on
the held-out NewDomain and Random datasets.  The claim under test: the
spatial conventions are *learnable from evidence* -- the calibrated
grammar must hold accuracy on unseen domains while using measured (and
tighter) thresholds.
"""

from __future__ import annotations

from benchmarks.conftest import record_table
from repro.evaluation.harness import EvaluationHarness
from repro.extractor import FormExtractor
from repro.grammar.standard import build_standard_grammar
from repro.learning.calibrate import calibrate_spatial_config
from repro.spatial.relations import DEFAULT_SPATIAL


def test_learning_calibration(benchmark, datasets):
    train = datasets["Basic"].sources

    def run():
        config, stats = calibrate_spatial_config(train)
        learned_extractor = FormExtractor(
            grammar=build_standard_grammar(spatial=config)
        )
        learned_harness = EvaluationHarness(
            extract=lambda html: list(
                learned_extractor.extract(html).conditions
            )
        )
        default_harness = EvaluationHarness()
        held_out = {
            name: datasets[name] for name in ("NewDomain", "Random")
        }
        learned = {
            name: learned_harness.evaluate(ds).accuracy
            for name, ds in held_out.items()
        }
        default = {
            name: default_harness.evaluate(ds).accuracy
            for name, ds in held_out.items()
        }
        return config, stats, learned, default

    config, stats, learned, default = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    lines = [
        f"training: {stats.sources_used} Basic sources, "
        f"{stats.conditions_used} correctly-parsed conditions harvested",
        f"arrangement evidence: {dict(stats.arrangement_counts)}",
        f"learned max horizontal gap: {config.max_horizontal_gap:.0f}px "
        f"(hand-set: {DEFAULT_SPATIAL.max_horizontal_gap:.0f}px)",
        f"learned max vertical gap:   {config.max_vertical_gap:.0f}px "
        f"(hand-set: {DEFAULT_SPATIAL.max_vertical_gap:.0f}px)",
        "held-out accuracy   learned   hand-set",
    ]
    for name in learned:
        lines.append(
            f"  {name:12s}      {learned[name]:.3f}     {default[name]:.3f}"
        )
    lines.append(
        "the conventions the grammar hand-encodes are recoverable from "
        "annotated sources (paper Section 7's learning direction)"
    )
    record_table("Extension: calibrating spatial conventions from data",
                 "\n".join(lines))

    benchmark.extra_info["learned_horizontal"] = round(
        config.max_horizontal_gap, 1
    )
    assert stats.conditions_used >= 100
    assert config.max_horizontal_gap <= DEFAULT_SPATIAL.max_horizontal_gap
    for name in learned:
        assert learned[name] >= default[name] - 0.03, name
