"""Serving-tier benchmark: latency and throughput over real HTTP.

Boots :class:`repro.server.ExtractionServer` in-process (event loop on a
background thread, exactly the production stack including sockets and
admission control) and drives it with persistent ``http.client``
connections through three phases:

* **cold** -- every document seen for the first time: the full
  cache-miss path (signature, admission, pool, ladder, cache fill);
* **warm** -- the same corpus again: every request replayed from the
  content-addressed cache, no extraction work;
* **saturation** -- more clients than workers hammering a small queue:
  sustained throughput at full load, plus how much traffic the
  admission gate sheds as 429.

Results land in ``BENCH_serve.json`` (override with
``REPRO_SERVE_BENCH_JSON``): per-phase p50/p99 latency in milliseconds
and throughput in requests per second, plus the shed count.  Knobs:

* ``REPRO_SERVE_BENCH_DOCS`` -- corpus size (default 16);
* ``REPRO_SERVE_BENCH_CLIENTS`` -- client threads (default 4);
* ``REPRO_SERVE_BENCH_ROUNDS`` -- saturation passes over the corpus
  (default 3);
* ``REPRO_SERVE_BENCH_JOBS`` -- worker processes (default ``auto``).

Unlike the pytest benchmarks this is a standalone script (CI's
serve-smoke job runs it directly): ``PYTHONPATH=src python
benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math
import os
import sys
import threading
import time
from pathlib import Path

from repro.datasets.repository import build_random
from repro.observability.prometheus import parse_prometheus
from repro.server import ExtractionServer, ServerConfig


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, math.ceil(q * len(sorted_values)) - 1)
    return sorted_values[max(0, index)]


class _Harness:
    """The server on a background event-loop thread, plus HTTP helpers."""

    def __init__(self, config: ServerConfig):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="bench-serve", daemon=True
        )
        self._thread.start()
        self.server = ExtractionServer(config)
        self.port = asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop
        ).result(timeout=120)

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self._loop
        ).result(timeout=120)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()

    def scrape(self) -> dict[str, float]:
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            conn.request("GET", "/metrics")
            return parse_prometheus(conn.getresponse().read().decode())
        finally:
            conn.close()


def _drive(
    port: int, documents: list[str], clients: int
) -> tuple[list[float], int, float]:
    """Fan *documents* over *clients* persistent connections.

    Returns (per-request latencies for 200s, shed 429 count, wall time).
    """
    work: list[str] = list(documents)
    cursor = {"next": 0}
    lock = threading.Lock()
    latencies: list[float] = []
    shed = {"count": 0}
    errors: list[str] = []

    def worker() -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        try:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(work):
                        return
                    cursor["next"] = index + 1
                body = json.dumps({"html": work[index]}).encode("utf-8")
                started = time.perf_counter()
                conn.request(
                    "POST", "/extract", body=body,
                    headers={"Content-Type": "application/json"},
                )
                response = conn.getresponse()
                response.read()
                elapsed = time.perf_counter() - started
                with lock:
                    if response.status == 200:
                        latencies.append(elapsed)
                    elif response.status == 429:
                        shed["count"] += 1
                    else:
                        errors.append(f"HTTP {response.status}")
        finally:
            conn.close()

    threads = [
        threading.Thread(target=worker, name=f"client-{i}")
        for i in range(clients)
    ]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started
    if errors:
        raise RuntimeError(f"unexpected responses: {errors[:5]}")
    return latencies, shed["count"], wall


def _phase_row(name: str, latencies: list[float], wall: float) -> dict:
    ordered = sorted(latencies)
    return {
        f"serve.{name}.requests": len(latencies),
        f"serve.{name}.p50_ms": round(_quantile(ordered, 0.50) * 1e3, 3),
        f"serve.{name}.p99_ms": round(_quantile(ordered, 0.99) * 1e3, 3),
        f"serve.{name}.throughput_rps": round(len(latencies) / wall, 2)
        if wall > 0
        else float("nan"),
    }


def main() -> int:
    docs = int(os.environ.get("REPRO_SERVE_BENCH_DOCS", "16"))
    clients = int(os.environ.get("REPRO_SERVE_BENCH_CLIENTS", "4"))
    rounds = int(os.environ.get("REPRO_SERVE_BENCH_ROUNDS", "3"))
    jobs_raw = os.environ.get("REPRO_SERVE_BENCH_JOBS", "auto")
    jobs: int | str = jobs_raw if jobs_raw == "auto" else int(jobs_raw)
    out_path = Path(os.environ.get("REPRO_SERVE_BENCH_JSON", "BENCH_serve.json"))

    corpus = [source.html for source in build_random(count=docs, seed=7)]
    report: dict[str, object] = {
        "serve.docs": docs,
        "serve.clients": clients,
    }

    # Cold + warm share one server so the warm phase hits the cold fill.
    harness = _Harness(ServerConfig(port=0, jobs=jobs, max_queue=512))
    try:
        report["serve.workers"] = harness.server.service.workers
        latencies, _, wall = _drive(harness.port, corpus, clients)
        report.update(_phase_row("cold", latencies, wall))
        latencies, _, wall = _drive(harness.port, corpus, clients)
        report.update(_phase_row("warm", latencies, wall))
        samples = harness.scrape()
        hits = samples.get("repro_serve_cache_hits_total", 0.0)
        report["serve.warm.hit_ratio"] = round(hits / max(1, docs), 3)
    finally:
        harness.stop()

    # Saturation: a small queue, repeated corpus, more offered load than
    # capacity -- sustained 200-throughput plus the shed count.
    harness = _Harness(
        ServerConfig(port=0, jobs=jobs, max_queue=8, cache=False)
    )
    try:
        offered = corpus * rounds
        latencies, shed, wall = _drive(
            harness.port, offered, max(clients, 2)
        )
        row = _phase_row("saturation", latencies, wall)
        row["serve.saturation.offered"] = len(offered)
        row["serve.saturation.shed"] = shed
        report.update(row)
    finally:
        harness.stop()

    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    width = max(len(key) for key in report)
    for key in sorted(report):
        print(f"{key:<{width}}  {report[key]}")
    print(f"\nwrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
