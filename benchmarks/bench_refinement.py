"""Extension experiment: cross-source refinement (paper Section 7).

The merger reports conflicts "for further client-side handling"; Section 7
proposes resolving them with knowledge from other same-domain sources.
The generated datasets parse conflict-free, so this experiment constructs
a batch of *confusing* airfare sources -- each contains the Figure-14
column block whose packed labels compete for two selects -- and measures
extraction precision before and after :class:`DomainRefiner` arbitration,
with domain knowledge harvested from clean airfare extractions.
"""

from __future__ import annotations

from benchmarks.conftest import record_table
from repro.datasets.repository import build_dataset
from repro.evaluation.metrics import overall_metrics, per_source_metrics
from repro.extractor import FormExtractor
from repro.refine import DomainKnowledge, DomainRefiner
from repro.semantics.condition import Condition, Domain

_TRIPLES = (
    ("Adults", "Children", "Seniors"),
    ("Adults", "Children", "Infants"),
    ("Rooms", "Guests", "Nights"),
)


def confusing_source(index: int) -> tuple[str, list[Condition]]:
    """One airfare form with a Figure-14-style column-confused block."""
    labels = _TRIPLES[index % len(_TRIPLES)]
    selects = "\n".join(
        f'<select name="n{i}"><option>Any number</option>'
        f"<option>{i}</option><option>{i + 1}</option></select>"
        for i in range(3)
    )
    html = f"""
    <html><body><form action="/flights">
    <table cellspacing="4" cellpadding="2">
    <tr><td>From:</td><td><input type="text" name="orig" size="16"></td></tr>
    <tr><td>To:</td><td><input type="text" name="dest" size="16"></td></tr>
    </table>
    <table cellspacing="2" cellpadding="0">
    <tr><td>Number of travellers</td></tr>
    <tr><td>{labels[0]} &nbsp; {labels[1]} &nbsp; {labels[2]}</td></tr>
    <tr><td>{selects}</td></tr>
    </table>
    <input type="submit" value="Go">
    </form></body></html>
    """
    truth = [
        Condition("From", ("contains",), Domain("text"), ("orig",)),
        Condition("To", ("contains",), Domain("text"), ("dest",)),
    ] + [
        Condition(
            labels[i], ("=",),
            Domain("enum", ("Any number", str(i), str(i + 1))),
            (f"n{i}",),
        )
        for i in range(3)
    ]
    return html, truth


def test_refinement_gain(benchmark):
    extractor = FormExtractor()

    def run():
        # Harvest domain knowledge from clean airfare extractions.
        knowledge = DomainKnowledge()
        clean = build_dataset("K", {"Airfares": 20}, base_seed=7_000)
        for source in clean:
            knowledge.observe_model(extractor.extract(source.html))
        refiner = DomainRefiner(knowledge)

        before, after = [], []
        conflicted = 0
        resolved = 0
        for index in range(12):
            html, truth = confusing_source(index)
            detail = extractor.extract_detailed(html)
            if detail.model.conflicts:
                conflicted += 1
            before.append(
                per_source_metrics(list(detail.model.conditions), truth)
            )
            refined, stats = refiner.refine(detail)
            resolved += stats.conflicts_resolved
            after.append(
                per_source_metrics(list(refined.conditions), truth)
            )
        return knowledge, conflicted, resolved, before, after

    knowledge, conflicted, resolved, before, after = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    overall_before = overall_metrics(before)
    overall_after = overall_metrics(after)
    record_table(
        "Extension: cross-source conflict refinement",
        f"knowledge: {knowledge.sources_seen} clean airfare sources, "
        f"{len(knowledge.attribute_counts)} known attributes\n"
        f"confusing sources: 12, conflicted extractions: {conflicted}, "
        f"conflicts arbitrated: {resolved}\n"
        f"precision before refinement: {overall_before.precision:.3f}\n"
        f"precision after refinement:  {overall_after.precision:.3f}\n"
        f"recall (unchanged by dropping conflicted duplicates): "
        f"{overall_before.recall:.3f} -> {overall_after.recall:.3f}",
    )
    benchmark.extra_info["precision_gain"] = round(
        overall_after.precision - overall_before.precision, 3
    )

    assert conflicted >= 8
    assert resolved >= conflicted
    assert overall_after.precision > overall_before.precision
    assert overall_after.recall >= overall_before.recall - 0.01
