"""Gate: every emitted metric/event name is documented, and vice versa.

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_metrics_catalog.py

Cross-checks the metric/event names emitted under ``src/repro/``
(``MetricsRegistry.inc``/``.observe``, the HTTP layer's ``_count`` hook,
and ``log_event`` call sites) against the catalogue in
``docs/OBSERVABILITY.md`` (see :mod:`repro.analysis.codelint`).  Exits 1
with one ``path:line`` finding per mismatch -- an undocumented name is a
dashboard nobody can find, an orphaned one a dashboard that flatlined
after a rename.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.codelint import check_metrics_catalog  # noqa: E402


def main() -> int:
    findings = check_metrics_catalog(
        REPO_ROOT / "src" / "repro",
        REPO_ROOT / "docs" / "OBSERVABILITY.md",
    )
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"metrics-catalog check: {len(findings)} mismatch(es) between "
            "src/repro and docs/OBSERVABILITY.md"
        )
        return 1
    print("metrics-catalog check: code and catalogue agree")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
