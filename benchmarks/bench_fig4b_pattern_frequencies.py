"""Figure 4(b): pattern frequencies over ranks (the Zipf distribution).

The paper ranks the 21 patterns by frequency per domain and overall and
observes "a characteristic Zipf-distribution": a small set of top-ranked
patterns dominates.
"""

from __future__ import annotations

from benchmarks.conftest import record_table
from repro.datasets.patterns import PATTERNS_BY_ID
from repro.evaluation.survey import pattern_frequencies, ranked_frequencies


def test_fig4b_pattern_frequencies(benchmark, datasets):
    basic = datasets["Basic"]

    def compute():
        return (
            ranked_frequencies(basic),
            pattern_frequencies(basic, by_domain=True),
        )

    ranked, per_domain = benchmark.pedantic(compute, rounds=3, iterations=1)

    lines = ["rank  pattern               total  " + "  ".join(
        f"{name[:5]:>5s}" for name in per_domain if name != "Total"
    )]
    domains = [name for name in per_domain if name != "Total"]
    for rank, (pattern_id, count) in enumerate(ranked, start=1):
        name = PATTERNS_BY_ID[pattern_id].name
        row = f"{rank:4d}  {name:20s} {count:6d}  "
        row += "  ".join(
            f"{per_domain[domain].get(pattern_id, 0):5d}" for domain in domains
        )
        lines.append(row)
    top3 = sum(count for _, count in ranked[:3])
    total = sum(count for _, count in ranked)
    lines.append(
        f"top-3 share: {100 * top3 / total:.0f}%  "
        "(paper: a few top-ranked patterns dominate, Zipf-like)"
    )
    record_table("Figure 4(b): frequencies over ranks", "\n".join(lines))

    benchmark.extra_info["top3_share"] = top3 / total

    # Zipf shape: strictly decreasing head, heavy concentration.
    counts = [count for _, count in ranked]
    assert counts[0] >= 2 * counts[min(5, len(counts) - 1)]
    assert top3 / total >= 0.35
