"""Section 4.2.1 ablation: just-in-time pruning vs brute-force parsing.

The paper quantifies ambiguity on the Figure 5 fragment (16 tokens, the
author and title rows of amazon.com): the single correct parse tree
contains 42 instances (26 nonterminals + 16 terminals), while the basic
exhaustive approach generates 25 parse trees and 773 instances, 645 of
them temporary.  This ablation runs both parsers over the fragment with
the paper's example grammar G, and additionally shows the (far larger)
blow-up under the full derived grammar.
"""

from __future__ import annotations

from benchmarks.conftest import record_table
from repro.datasets.fixtures import QAM_FRAGMENT_HTML
from repro.grammar.example_g import build_example_grammar
from repro.grammar.standard import build_standard_grammar
from repro.parser.parser import BestEffortParser, ExhaustiveParser, ParserConfig
from repro.tokens.tokenizer import tokenize_html


def test_ablation_best_effort_grammar_g(benchmark):
    tokens = tokenize_html(QAM_FRAGMENT_HTML)
    parser = BestEffortParser(build_example_grammar())

    result = benchmark(parser.parse, tokens)

    tree = result.trees[0]
    record_table(
        "Section 4.2.1: best-effort parse of the Figure 5 fragment (grammar G)",
        f"tokens: {len(tokens)} (paper: 16)\n"
        f"complete parse trees: {len(result.trees)} (paper: 1 correct)\n"
        f"correct tree size: {tree.size()} instances "
        f"(paper: 42 = 26 NT + 16 T)\n"
        f"instances created with pruning: {result.stats.instances_created}",
    )
    benchmark.extra_info["tree_size"] = tree.size()
    assert len(tokens) == 16
    assert result.is_complete
    assert tree.size() == 42


def test_ablation_exhaustive_grammar_g(benchmark):
    tokens = tokenize_html(QAM_FRAGMENT_HTML)
    parser = ExhaustiveParser(build_example_grammar())

    result = benchmark.pedantic(parser.parse, args=(tokens,), rounds=1,
                                iterations=1)

    temporary = len(result.temporary_instances())
    complete = len(result.complete_parses("QI"))
    pruned_created = BestEffortParser(build_example_grammar()).parse(
        tokens
    ).stats.instances_created
    record_table(
        "Section 4.2.1: brute-force blow-up (grammar G)",
        f"instances created: {result.stats.instances_created} "
        f"(paper: 773 with its 11-production grammar)\n"
        f"temporary instances: {temporary} (paper: 645)\n"
        f"alternative complete parse trees: {complete} (paper: 25)\n"
        f"blow-up factor vs just-in-time pruning: "
        f"{result.stats.instances_created / max(1, pruned_created):.1f}x",
    )
    benchmark.extra_info["instances"] = result.stats.instances_created
    benchmark.extra_info["complete_parses"] = complete

    # Shape: exhaustive ≫ pruned; most instances are temporary; global
    # ambiguity is plural.
    assert result.stats.instances_created > 5 * pruned_created
    assert temporary > result.stats.instances_created / 2
    assert complete > 1


def test_ablation_exhaustive_standard_grammar(benchmark):
    """The full derived grammar magnifies the ambiguity further; a budget
    keeps the brute-force run bounded (best-effort degradation)."""
    tokens = tokenize_html(QAM_FRAGMENT_HTML)
    config = ParserConfig(max_instances=20_000)
    parser = ExhaustiveParser(build_standard_grammar(), config)

    result = benchmark.pedantic(parser.parse, args=(tokens,), rounds=1,
                                iterations=1)
    best = BestEffortParser(build_standard_grammar()).parse(tokens)
    record_table(
        "Section 4.2.1 (extended): brute force under the full grammar",
        f"instances created (budget 20k): {result.stats.instances_created}"
        f"{' [truncated]' if result.stats.truncated else ''}\n"
        f"best-effort instances on the same input: "
        f"{best.stats.instances_created}\n"
        "the richer the grammar, the more the preference machinery matters",
    )
    assert result.stats.instances_created > 10 * best.stats.instances_created
