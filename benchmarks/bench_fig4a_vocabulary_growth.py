"""Figure 4(a): condition-pattern vocabulary growth over sources.

The paper surveys 150 Basic-dataset sources and finds the pattern
vocabulary small (21 more-than-once patterns) and rapidly converging, with
later domains (Automobiles, Airfares) mostly reusing Books' patterns.  This
benchmark regenerates the growth curve and the cross-domain reuse counts.
"""

from __future__ import annotations

from benchmarks.conftest import record_table
from repro.evaluation.survey import (
    cross_domain_reuse,
    pattern_occurrence_matrix,
    vocabulary_growth,
)


def test_fig4a_vocabulary_growth(benchmark, datasets):
    basic = datasets["Basic"]

    def compute():
        return (
            vocabulary_growth(basic),
            pattern_occurrence_matrix(basic),
            cross_domain_reuse(basic),
        )

    growth, marks, reuse = benchmark.pedantic(compute, rounds=3, iterations=1)

    # Sample the curve at paper-like x positions.
    positions = [0, 9, 24, 49, 74, 99, 124, len(basic.sources) - 1]
    lines = ["sources seen -> distinct patterns (curve must flatten)"]
    for position in positions:
        if position < len(growth):
            lines.append(f"  after {position + 1:3d} sources: {growth[position]:2d} patterns")
    lines.append(f"  total occurrence marks (the '+' points): {len(marks)}")
    lines.append("new patterns introduced per domain (reuse across domains):")
    for domain, introduced in reuse.items():
        lines.append(f"  {domain:12s} {introduced:2d}")
    lines.append(
        "paper: ~21 more-than-once patterns total; curve flattens; "
        "Automobiles/Airfares mostly reuse Books' patterns"
    )
    record_table("Figure 4(a): vocabulary growth over sources", "\n".join(lines))

    benchmark.extra_info["final_vocabulary"] = growth[-1]
    benchmark.extra_info["reuse"] = reuse

    # Shape assertions: converging vocabulary, dominated by the first domain.
    assert growth[-1] <= 25
    midpoint = growth[len(growth) // 2]
    assert midpoint >= 0.7 * growth[-1]
    first_domain = basic.sources[0].domain
    later = sum(v for k, v in reuse.items() if k != first_domain)
    assert reuse[first_domain] > later
