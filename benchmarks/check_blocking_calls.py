"""Gate: no blocking primitives inside async code in the serving tier.

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_blocking_calls.py

Flags ``time.sleep`` / ``open()`` / ``socket.*`` / ``subprocess.*``
calls inside ``async def`` bodies under ``src/repro/server/`` (see
:mod:`repro.analysis.codelint`): one such call stalls the event loop
for every connected client.  Deliberate exceptions carry a
``# blocking-ok`` comment on the offending line.  Exits 1 with one
``path:line`` finding per violation.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.codelint import check_blocking_calls  # noqa: E402


def main() -> int:
    findings = check_blocking_calls(REPO_ROOT / "src" / "repro" / "server")
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"blocking-call check: {len(findings)} blocking call(s) in "
            "async code under src/repro/server"
        )
        return 1
    print("blocking-call check: async code is clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
