"""Shared infrastructure for the experiment benchmarks.

Each benchmark regenerates one of the paper's tables or figures and
registers a formatted text table with :func:`record_table`; a terminal-
summary hook prints every registered table after the pytest-benchmark
timing output, so ``pytest benchmarks/ --benchmark-only`` always shows the
paper-versus-measured numbers without needing ``-s``.

Dataset scale: set ``REPRO_BENCH_SCALE`` (default ``1.0`` = the paper's
dataset sizes: 150/30/42/30 sources).
"""

from __future__ import annotations

import os

import pytest

from repro.datasets.repository import standard_datasets

_TABLES: list[tuple[str, str]] = []


def record_table(title: str, body: str) -> None:
    """Register a result table for the end-of-run summary."""
    _TABLES.append((title, body))


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def datasets():
    """The four evaluation datasets at benchmark scale."""
    return standard_datasets(scale=bench_scale())


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("REPRODUCED EXPERIMENTS (paper vs measured)")
    write("=" * 78)
    for title, body in _TABLES:
        write("")
        write(f"--- {title}")
        for line in body.splitlines():
            write(line)
    write("")
