"""Shared infrastructure for the experiment benchmarks.

Each benchmark regenerates one of the paper's tables or figures and
registers a formatted text table with :func:`record_table`; a terminal-
summary hook prints every registered table after the pytest-benchmark
timing output, so ``pytest benchmarks/ --benchmark-only`` always shows the
paper-versus-measured numbers without needing ``-s``.

Dataset scale: set ``REPRO_BENCH_SCALE`` (default ``1.0`` = the paper's
dataset sizes: 150/30/42/30 sources).  Batch size for the 120-interface
parse/throughput benchmarks: set ``REPRO_BENCH_BATCH`` (default ``120`` =
the paper's corpus; CI smoke runs use a reduced batch).  The recorded
``batch120.forms`` metric says which batch size produced the numbers, and
the regression gate (``check_bench_regression.py``) checks scale-free
quantities only.

Parse-performance benchmarks additionally call :func:`record_metric`;
the collected numbers are merged into ``BENCH_parse.json`` at the repo
root after the run, so the perf trajectory stays machine-readable across
PRs (override the path with ``REPRO_BENCH_JSON``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.datasets.repository import standard_datasets

_TABLES: list[tuple[str, str]] = []
_METRICS: dict[str, object] = {}
_DROPPED: set[str] = set()


def record_table(title: str, body: str) -> None:
    """Register a result table for the end-of-run summary."""
    _TABLES.append((title, body))


def record_metric(key: str, value: object) -> None:
    """Register one machine-readable number for ``BENCH_parse.json``."""
    _METRICS[key] = value
    _DROPPED.discard(key)


def drop_metric(key: str) -> None:
    """Remove *key* from the merged report.

    The JSON on disk is merged, not replaced, so a metric that this run
    deliberately does *not* record (e.g. ``parallel.speedup`` on a
    single-core box, where the number would be meaningless) must be
    actively dropped or a stale value from an earlier run would survive.
    """
    _METRICS.pop(key, None)
    _DROPPED.add(key)


def _bench_json_path() -> Path:
    override = os.environ.get("REPRO_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent.parent / "BENCH_parse.json"


def _flush_metrics() -> Path | None:
    """Merge this run's metrics into the JSON report on disk."""
    if not _METRICS and not _DROPPED:
        return None
    path = _bench_json_path()
    merged: dict[str, object] = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):  # unreadable/corrupt: start over
            merged = {}
    for key in _DROPPED:
        merged.pop(key, None)
    merged.update(_METRICS)
    path.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_batch_count() -> int:
    """Interfaces in the '120-interface' batch benchmarks (env-tunable)."""
    return max(1, int(os.environ.get("REPRO_BENCH_BATCH", "120")))


@pytest.fixture(scope="session")
def datasets():
    """The four evaluation datasets at benchmark scale."""
    return standard_datasets(scale=bench_scale())


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    json_path = _flush_metrics()
    if json_path is not None:
        terminalreporter.write_line(
            f"\nparse-performance metrics merged into {json_path}"
        )
    if not _TABLES:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("REPRODUCED EXPERIMENTS (paper vs measured)")
    write("=" * 78)
    for title, body in _TABLES:
        write("")
        write(f"--- {title}")
        for line in body.splitlines():
            write(line)
    write("")
