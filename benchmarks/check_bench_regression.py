"""Gate on the scale-free performance numbers in ``BENCH_parse.json``.

Run after the parse/batch benchmarks regenerate the JSON report::

    python benchmarks/check_bench_regression.py [path/to/BENCH_parse.json]

Exits non-zero when any checked quantity regresses past its tolerance.
Only *scale-free* quantities are checked -- ratios and per-form averages
that stay comparable whether the run used the full 120-interface corpus
or a reduced ``REPRO_BENCH_BATCH`` smoke batch:

* ``seminaive`` combos examined **per form** -- the semi-naive
  evaluator's enumeration work must not creep back up;
* ``combo_reduction`` -- semi-naive vs naive enumeration ratio;
* ``cache.hit_rate`` -- an identical second pass must be served from the
  extraction cache;
* ``cached.speedup`` -- a cache replay must stay far cheaper than a
  parse;
* ``parallel.speedup`` -- pooled extraction must beat serial where the
  machine has real parallelism.  The bar is chosen from the **recorded**
  core count (``parallel.usable_cores``), never from the machine running
  this script, so a report written on a 1-core box is never graded
  against a 4-core bar or vice versa.  A run that recorded
  ``parallel.skipped: true`` (single usable core) has no speedup key at
  all; the pool is instead held to its overhead allowance vs serial.

``--require-multicore`` checks the multicore gate *only* (its report
carries just the parallel metrics): it fails unless the report was
recorded on >= 4 usable cores with pooled speedup >= 2.5x -- the CI
``bench-multicore`` job's gate, proving the pool path actually scales
rather than silently certifying overhead on a small runner.

Every speedup comparison is keyed on the **recorded** build stamps
(``batch120.compiled``, ``batch120.kernel``,
``batch120.scale.compiled_available``), never on the environment running
this script: a compiled run is never gated against an interpreted
baseline or vice versa.  In-process ratios (``combo_reduction``,
``singleprocess_speedup``, ``cached.speedup``) measure both legs inside
one process and therefore one build; the cross-build ratio
(``scale.compiled_speedup``) is only graded when the report says both
builds actually ran, and compiled scale cells surviving in a report
stamped interpreted-only are flagged as a stale merge.

``--require-compiled`` checks the compiled gate *only*: it fails unless
the report was recorded with the mypyc build importable and the largest
pool tier shows >= 1.5x compiled-vs-interpreted speedup -- the CI
``compiled-build`` job's gate.

Absolute wall-clock numbers are reported for context but never gated --
they measure the machine, not the code.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Tolerances.  Current measured values: ~436 combos/form on the full
# 120-interface corpus (~504 on the 30-interface smoke batch, whose form
# mix skews larger), 7.5x combo reduction, 1.0 cache hit rate, >20x
# cached speedup.  A lost prefilter or band index blows combos/form up
# by an order of magnitude, so ~10% headroom over the smoke value still
# catches every real regression.
MAX_COMBOS_PER_FORM = 560.0
MIN_COMBO_REDUCTION = 3.0
MIN_CACHE_HIT_RATE = 0.95
MIN_CACHED_SPEEDUP = 5.0
# Speedup bars by the *recorded* core count (see module docstring): a
# 4-core measurement must show real scaling; a 2-3 core one must at
# least beat the pool overhead.
MIN_PARALLEL_SPEEDUP_4CORE = 2.0
MIN_PARALLEL_SPEEDUP_2CORE = 1.2
# The CI bench-multicore gate (``--require-multicore``).
MULTICORE_MIN_CORES = 4
MULTICORE_MIN_SPEEDUP = 2.5
# The CI compiled-build gate (``--require-compiled``): compiled vs
# interpreted core on the largest pool tier, best-of-3 both legs.
MIN_COMPILED_SPEEDUP = 1.5
# Single-core allowance, mirroring bench_batch_parallel.py.
SINGLE_CORE_SLACK = 1.35
SINGLE_CORE_STARTUP_SECONDS = 0.5


def _require(metrics: dict, key: str) -> float:
    if key not in metrics:
        raise SystemExit(f"FAIL: metric {key!r} missing from the report -- "
                         f"did the benchmarks run?")
    return metrics[key]


def _check_build_stamps(metrics: dict, problems: list[str], gate) -> None:
    """Stamp-keyed checks for the compiled-core scale sweep.

    The compiled-vs-interpreted ratio is only meaningful when the report
    itself says both builds ran (``scale.compiled_available``); compiled
    cells or a speedup surviving in an interpreted-only report mean a
    stale merge, which would grade one build against the other.
    """
    compiled_stamp = metrics.get("batch120.compiled")
    if compiled_stamp is not None:
        print(
            f"  build stamps: compiled={compiled_stamp}, "
            f"kernel={metrics.get('batch120.kernel', '?')}"
        )
    available = bool(metrics.get("batch120.scale.compiled_available", False))
    stale_cells = [
        key
        for key in metrics
        if key.startswith("batch120.scale.")
        and ".compiled." in key
        and not available
    ]
    for key in stale_cells:
        problems.append(
            f"{key} recorded but scale.compiled_available is false -- "
            f"stale merge: a compiled run's cells would be compared "
            f"against an interpreted run's"
        )
    if "batch120.scale.compiled_speedup" in metrics:
        if not available:
            problems.append(
                "scale.compiled_speedup recorded without a compiled "
                "build stamp -- refusing to grade a cross-build ratio "
                "whose legs may come from different runs"
            )
        else:
            speedup = metrics["batch120.scale.compiled_speedup"]
            gate(
                "compiled-core speedup (largest pool tier)", speedup,
                speedup >= MIN_COMPILED_SPEEDUP,
                f">= {MIN_COMPILED_SPEEDUP:g}",
            )


def check(
    metrics: dict,
    require_multicore: bool = False,
    require_compiled: bool = False,
) -> list[str]:
    """All regression findings for one metrics report (empty = pass)."""
    problems: list[str] = []

    def gate(label: str, value: float, ok: bool, bar: str) -> None:
        status = "ok  " if ok else "FAIL"
        print(f"  {status}  {label} = {value:g}  (bar: {bar})")
        if not ok:
            problems.append(f"{label} = {value:g} violates {bar}")

    if require_compiled:
        # The CI compiled-build job's gate: the report must have been
        # recorded with the mypyc build importable, and the largest pool
        # tier must show the compiled margin.
        available = bool(
            metrics.get("batch120.scale.compiled_available", False)
        )
        gate(
            "compiled build available", int(available), available,
            "compiled core importable in the bench run",
        )
        if "batch120.scale.compiled_speedup" in metrics:
            speedup = _require(metrics, "batch120.scale.compiled_speedup")
            gate(
                "compiled-core speedup (largest pool tier)", speedup,
                speedup >= MIN_COMPILED_SPEEDUP,
                f">= {MIN_COMPILED_SPEEDUP:g}",
            )
        else:
            problems.append(
                "no compiled-core speedup was measured -- the "
                "compiled-build job must run the scaling sweep with the "
                "mypyc build installed"
            )
        return problems

    if not require_multicore:
        forms = _require(metrics, "batch120.forms")
        combos = _require(metrics, "batch120.seminaive.combos_examined")
        per_form = combos / max(1, forms)
        print(f"report covers {forms} interfaces")
        gate(
            "seminaive combos per form", round(per_form, 1),
            per_form <= MAX_COMBOS_PER_FORM, f"<= {MAX_COMBOS_PER_FORM:g}",
        )
        reduction = _require(metrics, "batch120.combo_reduction")
        gate(
            "combo reduction (naive/seminaive)", reduction,
            reduction >= MIN_COMBO_REDUCTION, f">= {MIN_COMBO_REDUCTION:g}",
        )
        hit_rate = _require(metrics, "batch120.cache.hit_rate")
        gate(
            "cache hit rate (second pass)", hit_rate,
            hit_rate >= MIN_CACHE_HIT_RATE, f">= {MIN_CACHE_HIT_RATE:g}",
        )
        cached_speedup = _require(metrics, "batch120.cached.speedup")
        gate(
            "cached-pass speedup", cached_speedup,
            cached_speedup >= MIN_CACHED_SPEEDUP,
            f">= {MIN_CACHED_SPEEDUP:g}",
        )
        _check_build_stamps(metrics, problems, gate)
    cores = int(metrics.get("batch120.parallel.usable_cores", 1))
    skipped = bool(
        metrics.get("batch120.parallel.skipped")
        or metrics.get("batch120.parallel.single_core")
    )
    if require_multicore:
        gate(
            "multicore run usable cores", cores,
            not skipped and cores >= MULTICORE_MIN_CORES,
            f">= {MULTICORE_MIN_CORES} (bench-multicore job requirement)",
        )
        if not skipped and "batch120.parallel.speedup" in metrics:
            speedup = _require(metrics, "batch120.parallel.speedup")
            gate(
                "multicore pooled speedup", speedup,
                speedup >= MULTICORE_MIN_SPEEDUP,
                f">= {MULTICORE_MIN_SPEEDUP:g}",
            )
        else:
            problems.append(
                "no pooled speedup was measured -- the bench-multicore "
                "job needs a >= 4-core runner"
            )
    elif skipped:
        # Single-core run: no speedup was (or should have been)
        # recorded.  Hold the one-worker pool to its overhead allowance
        # instead of grading a meaningless ratio.
        serial = _require(metrics, "batch120.parallel.serial_wall_seconds")
        pooled = _require(metrics, "batch120.parallel.wall_seconds")
        allowance = serial * SINGLE_CORE_SLACK + SINGLE_CORE_STARTUP_SECONDS
        gate(
            "single-core pool wall seconds", pooled,
            pooled <= allowance,
            f"<= serial*{SINGLE_CORE_SLACK:g}+{SINGLE_CORE_STARTUP_SECONDS:g}"
            f" = {allowance:.3f}",
        )
        if "batch120.parallel.speedup" in metrics:
            problems.append(
                "parallel.speedup recorded on a single-core run -- the "
                "bench must record parallel.skipped instead"
            )
    else:
        # The bar matches the core count the report was recorded on --
        # never the machine running this script.
        speedup = _require(metrics, "batch120.parallel.speedup")
        if cores >= 4:
            bar = MIN_PARALLEL_SPEEDUP_4CORE
        else:
            bar = MIN_PARALLEL_SPEEDUP_2CORE
        gate(
            f"parallel speedup (recorded on {cores} cores)", speedup,
            speedup >= bar, f">= {bar:g}",
        )
    return problems


def main(argv: list[str]) -> int:
    default = Path(__file__).resolve().parent.parent / "BENCH_parse.json"
    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument("report", nargs="?", default=str(default),
                     help="path to BENCH_parse.json")
    cli.add_argument("--require-multicore", action="store_true",
                     help="fail unless the report was recorded on >= 4 "
                          "usable cores with pooled speedup >= 2.5x")
    cli.add_argument("--require-compiled", action="store_true",
                     help="fail unless the report was recorded with the "
                          "mypyc-compiled core importable and >= 1.5x "
                          "compiled speedup on the largest pool tier")
    args = cli.parse_args(argv[1:])
    path = Path(args.report)
    try:
        metrics = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        print(f"FAIL: cannot read {path}: {error}")
        return 1
    print(f"checking {path}")
    problems = check(
        metrics,
        require_multicore=args.require_multicore,
        require_compiled=args.require_compiled,
    )
    if problems:
        print(f"\n{len(problems)} regression(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nall performance gates pass")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
