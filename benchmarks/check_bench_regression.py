"""Gate on the scale-free performance numbers in ``BENCH_parse.json``.

Run after the parse/batch benchmarks regenerate the JSON report::

    python benchmarks/check_bench_regression.py [path/to/BENCH_parse.json]

Exits non-zero when any checked quantity regresses past its tolerance.
Only *scale-free* quantities are checked -- ratios and per-form averages
that stay comparable whether the run used the full 120-interface corpus
or a reduced ``REPRO_BENCH_BATCH`` smoke batch:

* ``seminaive`` combos examined **per form** -- the semi-naive
  evaluator's enumeration work must not creep back up;
* ``combo_reduction`` -- semi-naive vs naive enumeration ratio;
* ``cache.hit_rate`` -- an identical second pass must be served from the
  extraction cache;
* ``cached.speedup`` -- a cache replay must stay far cheaper than a
  parse;
* ``parallel.speedup`` -- pooled extraction must beat serial where the
  machine has real parallelism; on a recorded single-core run the pool
  must merely stay within its overhead allowance vs serial.

Absolute wall-clock numbers are reported for context but never gated --
they measure the machine, not the code.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

# Tolerances.  Current measured values: ~436 combos/form on the full
# 120-interface corpus (~504 on the 30-interface smoke batch, whose form
# mix skews larger), 7.5x combo reduction, 1.0 cache hit rate, >20x
# cached speedup.  A lost prefilter or band index blows combos/form up
# by an order of magnitude, so ~10% headroom over the smoke value still
# catches every real regression.
MAX_COMBOS_PER_FORM = 560.0
MIN_COMBO_REDUCTION = 3.0
MIN_CACHE_HIT_RATE = 0.95
MIN_CACHED_SPEEDUP = 5.0
MIN_PARALLEL_SPEEDUP = 1.2
# Single-core allowance, mirroring bench_batch_parallel.py.
SINGLE_CORE_SLACK = 1.35
SINGLE_CORE_STARTUP_SECONDS = 0.25


def _require(metrics: dict, key: str) -> float:
    if key not in metrics:
        raise SystemExit(f"FAIL: metric {key!r} missing from the report -- "
                         f"did the benchmarks run?")
    return metrics[key]


def check(metrics: dict) -> list[str]:
    """All regression findings for one metrics report (empty = pass)."""
    problems: list[str] = []

    def gate(label: str, value: float, ok: bool, bar: str) -> None:
        status = "ok  " if ok else "FAIL"
        print(f"  {status}  {label} = {value:g}  (bar: {bar})")
        if not ok:
            problems.append(f"{label} = {value:g} violates {bar}")

    forms = _require(metrics, "batch120.forms")
    combos = _require(metrics, "batch120.seminaive.combos_examined")
    per_form = combos / max(1, forms)
    print(f"report covers {forms} interfaces")
    gate(
        "seminaive combos per form", round(per_form, 1),
        per_form <= MAX_COMBOS_PER_FORM, f"<= {MAX_COMBOS_PER_FORM:g}",
    )
    reduction = _require(metrics, "batch120.combo_reduction")
    gate(
        "combo reduction (naive/seminaive)", reduction,
        reduction >= MIN_COMBO_REDUCTION, f">= {MIN_COMBO_REDUCTION:g}",
    )
    hit_rate = _require(metrics, "batch120.cache.hit_rate")
    gate(
        "cache hit rate (second pass)", hit_rate,
        hit_rate >= MIN_CACHE_HIT_RATE, f">= {MIN_CACHE_HIT_RATE:g}",
    )
    cached_speedup = _require(metrics, "batch120.cached.speedup")
    gate(
        "cached-pass speedup", cached_speedup,
        cached_speedup >= MIN_CACHED_SPEEDUP, f">= {MIN_CACHED_SPEEDUP:g}",
    )
    if metrics.get("batch120.parallel.single_core"):
        serial = _require(metrics, "batch120.parallel.serial_wall_seconds")
        pooled = _require(metrics, "batch120.parallel.wall_seconds")
        allowance = serial * SINGLE_CORE_SLACK + SINGLE_CORE_STARTUP_SECONDS
        gate(
            "single-core pool wall seconds", pooled,
            pooled <= allowance,
            f"<= serial*{SINGLE_CORE_SLACK:g}+{SINGLE_CORE_STARTUP_SECONDS:g}"
            f" = {allowance:.3f}",
        )
    else:
        speedup = _require(metrics, "batch120.parallel.speedup")
        gate(
            "parallel speedup", speedup,
            speedup >= MIN_PARALLEL_SPEEDUP, f">= {MIN_PARALLEL_SPEEDUP:g}",
        )
    return problems


def main(argv: list[str]) -> int:
    default = Path(__file__).resolve().parent.parent / "BENCH_parse.json"
    path = Path(argv[1]) if len(argv) > 1 else default
    try:
        metrics = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        print(f"FAIL: cannot read {path}: {error}")
        return 1
    print(f"checking {path}")
    problems = check(metrics)
    if problems:
        print(f"\n{len(problems)} regression(s):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("\nall performance gates pass")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
