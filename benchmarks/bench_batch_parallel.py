"""Batch extraction throughput: serial vs process-pool workers.

The 120-interface corpus of ``bench_parse_time`` rerun through
:class:`repro.batch.BatchExtractor` with ``jobs=1`` and ``jobs=4``.
Parsing is CPU-bound and forms are independent, so on a multi-core
machine the pool should approach linear scaling (minus IPC and the
per-worker grammar build).

Correctness is asserted unconditionally: the parallel run must return
the same models in the same order as the serial run.  The wall-clock
speedup assertion is gated on the machine actually having >= 4 usable
cores -- on a single-core container four workers merely time-share one
CPU and the measurement would test the scheduler, not this code.
"""

from __future__ import annotations

import os

from benchmarks.bench_parse_time import _token_sets
from benchmarks.conftest import record_metric, record_table
from repro.batch import BatchExtractor

PARALLEL_JOBS = 4


def _usable_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def test_batch_parallel_speedup(benchmark):
    token_sets = _token_sets(120, 14, 32, base_seed=61_000)
    cores = _usable_cores()

    serial = BatchExtractor(jobs=1).extract_tokens(token_sets)
    parallel = benchmark.pedantic(
        lambda: BatchExtractor(jobs=PARALLEL_JOBS).extract_tokens(token_sets),
        rounds=1,
        iterations=1,
    )

    # Parallelism must never change the answer.
    assert not serial.errors and not parallel.errors
    assert [str(m.conditions) for m in parallel.models] == [
        str(m.conditions) for m in serial.models
    ]
    assert parallel.stats.combos_examined == serial.stats.combos_examined

    speedup = serial.wall_seconds / max(1e-9, parallel.wall_seconds)
    overlap = parallel.cpu_seconds / max(1e-9, parallel.wall_seconds)
    record_metric("batch120.parallel.jobs", PARALLEL_JOBS)
    record_metric("batch120.parallel.usable_cores", cores)
    record_metric(
        "batch120.parallel.serial_wall_seconds",
        round(serial.wall_seconds, 4),
    )
    record_metric(
        "batch120.parallel.wall_seconds", round(parallel.wall_seconds, 4)
    )
    record_metric("batch120.parallel.speedup", round(speedup, 2))
    record_metric("batch120.parallel.worker_overlap", round(overlap, 2))
    record_table(
        f"Batch extraction: serial vs {PARALLEL_JOBS} worker processes "
        f"(120 interfaces)",
        f"serial:  {serial.describe()}\n"
        f"pool:    {parallel.describe()}\n"
        f"speedup: {speedup:.2f}x wall-clock on {cores} usable core(s)"
        + (
            ""
            if cores >= PARALLEL_JOBS
            else f"\nNOTE: fewer than {PARALLEL_JOBS} cores -- the >=2x "
            f"speedup bar is not asserted on this machine"
        ),
    )
    if cores >= PARALLEL_JOBS:
        assert speedup >= 2.0
    else:
        # Workers still ran and overlapped; the pool machinery is sound.
        assert overlap > 1.0
