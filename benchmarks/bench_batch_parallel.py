"""Batch extraction throughput: serial vs pool, cold vs cached.

The 120-interface corpus of ``bench_parse_time`` rerun through
:class:`repro.batch.BatchExtractor` three ways:

* ``jobs=1`` -- the serial baseline;
* ``jobs=4`` -- the process pool (clamped to the usable cores, so on a
  single-core container this is a one-worker pool and measures the pool
  machinery's overhead, not parallelism);
* ``jobs=1, cache=True`` twice -- the second pass is served entirely from
  the content-addressed extraction cache.

Correctness is asserted unconditionally: every variant must return the
same models (and the same aggregate combo counts) as the serial cold
run.  The wall-clock assertions are tiered on the machine's actual
parallelism: >= 4 usable cores demands a 2x speedup, >= 2 cores demands
1.2x, and a single core demands only that the pool does not *regress*
past its overhead allowance -- that case records
``batch120.parallel.skipped: true`` and suppresses the speedup key
entirely (a one-worker pool "speedup" is not a measurement), so the
regression gate never compares speedups across differing core counts.
"""

from __future__ import annotations

from benchmarks.bench_parse_time import _token_sets
from benchmarks.conftest import (
    bench_batch_count,
    drop_metric,
    record_metric,
    record_table,
)
from repro.batch import BatchExtractor, usable_cores
import os


def _parallel_jobs() -> int:
    """Pool width for the parallel leg (``REPRO_BENCH_JOBS``, default 4).

    ``auto`` sizes the pool to the usable cores -- what the CI
    ``bench-multicore`` job runs, so the speedup gate always measures the
    runner's actual parallelism.
    """
    raw = os.environ.get("REPRO_BENCH_JOBS", "4")
    if raw == "auto":
        return max(1, usable_cores())
    return max(1, int(raw))


PARALLEL_JOBS = _parallel_jobs()

#: Single-core allowance: a one-worker pool adds fork + IPC + chunk
#: bookkeeping on top of the serial loop.  Multiplicative slack for the
#: steady-state overhead plus a constant term for pool start-up, which
#: does not shrink with the batch -- and now that the vector kernel cut
#: the serial wall to well under a second, a cold pool spin-up (~0.3-0.5s
#: on a loaded 1-core container) dominates the allowance, hence the
#: constant carries most of it.
SINGLE_CORE_SLACK = 1.35
SINGLE_CORE_STARTUP_SECONDS = 0.5


def test_batch_parallel_speedup(benchmark):
    token_sets = _token_sets(bench_batch_count(), 14, 32, base_seed=61_000)
    cores = usable_cores()
    effective_jobs = min(PARALLEL_JOBS, cores)

    with BatchExtractor(jobs=1) as serial_batch:
        serial = serial_batch.extract_tokens(token_sets)
    with BatchExtractor(jobs=PARALLEL_JOBS) as parallel_batch:
        parallel = benchmark.pedantic(
            lambda: parallel_batch.extract_tokens(token_sets),
            rounds=1,
            iterations=1,
        )

    # Parallelism must never change the answer.
    assert not serial.errors and not parallel.errors
    assert [str(m.conditions) for m in parallel.models] == [
        str(m.conditions) for m in serial.models
    ]
    assert parallel.stats.combos_examined == serial.stats.combos_examined

    speedup = serial.wall_seconds / max(1e-9, parallel.wall_seconds)
    overlap = parallel.cpu_seconds / max(1e-9, parallel.wall_seconds)
    record_metric("batch120.forms", len(token_sets))
    record_metric("batch120.parallel.jobs", PARALLEL_JOBS)
    record_metric("batch120.parallel.effective_jobs", effective_jobs)
    record_metric("batch120.parallel.usable_cores", cores)
    record_metric("batch120.parallel.single_core", cores < 2)
    record_metric(
        "batch120.parallel.serial_wall_seconds",
        round(serial.wall_seconds, 4),
    )
    record_metric(
        "batch120.parallel.wall_seconds", round(parallel.wall_seconds, 4)
    )
    record_metric("batch120.parallel.worker_overlap", round(overlap, 2))
    if cores >= 2:
        # Only record a speedup where one was actually measured; a
        # one-worker pool "speedup" is pool overhead wearing a costume.
        record_metric("batch120.parallel.speedup", round(speedup, 2))
        drop_metric("batch120.parallel.skipped")
    else:
        record_metric("batch120.parallel.skipped", True)
        drop_metric("batch120.parallel.speedup")
    record_table(
        f"Batch extraction: serial vs {PARALLEL_JOBS}-job pool "
        f"({len(token_sets)} interfaces)",
        f"serial:  {serial.describe()}\n"
        f"pool:    {parallel.describe()}\n"
        f"speedup: {speedup:.2f}x wall-clock with {effective_jobs} "
        f"worker(s) on {cores} usable core(s)"
        + (
            ""
            if cores >= 2
            else "\nNOTE: single usable core -- the pool is clamped to one "
            "worker; asserting no regression vs serial instead of a speedup"
        ),
    )
    if cores >= PARALLEL_JOBS:
        assert speedup >= 2.0
    elif cores >= 2:
        assert speedup >= 1.2
    else:
        # One usable core: the clamped one-worker pool cannot beat the
        # serial loop; it must merely stay within its overhead allowance.
        assert parallel.wall_seconds <= (
            serial.wall_seconds * SINGLE_CORE_SLACK
            + SINGLE_CORE_STARTUP_SECONDS
        )


def test_batch_cached_second_pass(benchmark):
    """Second pass over an identical corpus served from the cache."""
    token_sets = _token_sets(bench_batch_count(), 14, 32, base_seed=61_000)

    with BatchExtractor(jobs=1, cache=True) as batch:
        cold = batch.extract_tokens(token_sets)
        cached = benchmark.pedantic(
            lambda: batch.extract_tokens(token_sets),
            rounds=1,
            iterations=1,
        )

    # The cache must never change the answer: replayed models and stats
    # are deep-equal to the cold extraction's.
    assert not cold.errors and not cached.errors
    assert [str(m.conditions) for m in cached.models] == [
        str(m.conditions) for m in cold.models
    ]
    assert cached.stats.combos_examined == cold.stats.combos_examined

    hit_rate = cached.cache_hit_rate
    speedup = cold.wall_seconds / max(1e-9, cached.wall_seconds)
    record_metric(
        "batch120.cold.wall_seconds", round(cold.wall_seconds, 4)
    )
    record_metric(
        "batch120.cached.wall_seconds", round(cached.wall_seconds, 4)
    )
    record_metric("batch120.cache.hit_rate", round(hit_rate, 4))
    record_metric("batch120.cached.speedup", round(speedup, 2))
    record_table(
        f"Batch extraction: cold vs cached pass "
        f"({len(token_sets)} interfaces)",
        f"cold:   {cold.describe()}\n"
        f"cached: {cached.describe()}\n"
        f"hit rate {hit_rate:.0%}, {speedup:.1f}x faster than the cold "
        f"pass (replay skips tokenize geometry, parse, and merge)",
    )
    assert hit_rate >= 0.95
    assert speedup >= 5.0
