"""Figure 15(a)-(d): precision and recall over the four datasets.

The paper's headline evaluation: per-source precision/recall distributions
(a, b), average per-source precision/recall (c), and overall precision/
recall (d).  Reported reference points: Basic has 69% of sources at
precision 1.0 and 72% at recall 1.0; the Random dataset reaches overall
precision 0.80 and recall 0.89 (accuracy 0.85); performance is "rather
even" across datasets with no cliff on unseen domains; NewSource scores
best because its forms are simpler.
"""

from __future__ import annotations

from benchmarks.conftest import record_table
from repro.evaluation.harness import EvaluationHarness


def test_fig15_precision_recall(benchmark, datasets):
    harness = EvaluationHarness()

    def evaluate_all():
        return {
            name: harness.evaluate(dataset)
            for name, dataset in datasets.items()
        }

    results = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    thresholds = (1.0, 0.9, 0.8, 0.7, 0.6, 0.0)
    lines_a = ["dataset      " + "".join(f"  >={t:<4}" for t in thresholds)]
    lines_b = list(lines_a)
    for name, result in results.items():
        dist_p = result.precision_distribution()
        dist_r = result.recall_distribution()
        lines_a.append(
            f"{name:12s}" + "".join(f"  {dist_p[t]:5.0f}%" for t in thresholds)
        )
        lines_b.append(
            f"{name:12s}" + "".join(f"  {dist_r[t]:5.0f}%" for t in thresholds)
        )
    lines_a.append("paper (Basic): 69% of sources at precision 1.0")
    lines_b.append("paper (Basic): 72% of sources at recall 1.0")
    record_table(
        "Figure 15(a): source distribution over precision", "\n".join(lines_a)
    )
    record_table(
        "Figure 15(b): source distribution over recall", "\n".join(lines_b)
    )

    lines_c = ["dataset       avg-Ps  avg-Rs"]
    lines_d = ["dataset           Pa      Ra    accuracy"]
    for name, result in results.items():
        overall = result.overall
        lines_c.append(
            f"{name:12s}  {result.average_precision:.3f}   {result.average_recall:.3f}"
        )
        lines_d.append(
            f"{name:12s}   {overall.precision:.3f}   {overall.recall:.3f}     "
            f"{result.accuracy:.3f}"
        )
    lines_c.append("paper: ~0.85-0.9 for all four datasets")
    lines_d.append(
        "paper: ~0.85 overall P/R for the first three datasets; "
        "Random: Pa=0.80, Ra=0.89, accuracy 0.85"
    )
    record_table("Figure 15(c): average precision and recall", "\n".join(lines_c))
    record_table("Figure 15(d): overall precision and recall", "\n".join(lines_d))

    for name, result in results.items():
        benchmark.extra_info[f"{name}_Pa"] = round(result.overall.precision, 3)
        benchmark.extra_info[f"{name}_Ra"] = round(result.overall.recall, 3)

    # Shape assertions from the paper's findings.
    for name, result in results.items():
        assert result.overall.precision >= 0.70, name
        assert result.overall.recall >= 0.80, name
        assert result.accuracy >= 0.78, name
    # No dramatic performance drop on heterogeneous sources.
    accuracies = [result.accuracy for result in results.values()]
    assert max(accuracies) - min(accuracies) <= 0.15
    # Per-source perfection rates in the paper's neighbourhood for Basic.
    basic = results["Basic"]
    assert basic.precision_distribution()[1.0] >= 50.0
    assert basic.recall_distribution()[1.0] >= 50.0
