"""Design-choice ablation: what each preference family contributes.

DESIGN.md calls out the preference set as the load-bearing design choice
of the derived grammar.  This ablation evaluates the extractor with
families of preferences removed:

* ``full``        -- the shipped grammar;
* ``no-binding``  -- drop the attribute/value/operator *binding* rules
  (R6a/R6b/R6c: horizontal beats vertical, closer beats farther);
* ``no-role``     -- drop the *role* rules (R1/R3/R8: a widget's label
  is not an attribute; a claimed text is not a note);
* ``no-subsume``  -- drop the *subsumption* rules (longer lists, bigger
  CPs/rows/interfaces win);
* ``none``        -- no preferences at all (brute force + maximization).

Accuracy must degrade monotonically toward ``none``, and the instance
budget pressure must rise as pruning is removed -- the quantitative form
of paper Section 4.2's argument that preferences are an *integral* half
of a derived grammar, not an optimization.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks.conftest import record_table
from repro.datasets.repository import build_basic
from repro.evaluation.harness import EvaluationHarness
from repro.extractor import FormExtractor
from repro.grammar.standard import build_standard_grammar
from repro.parser.parser import ParserConfig

_BINDING = {"R6a-attr-binds-horizontal", "R6b-val-binds-horizontal",
            "R6c-op-binds-closest"}
_ROLE = {"R1-rbu-over-attr", "R1b-cbu-over-attr", "R3-rbu-over-note",
         "R3b-cbu-over-note", "R7-cp-over-note", "R8-cp-over-attr"}


def _variant(drop_names: set[str] | None):
    grammar = build_standard_grammar()
    if drop_names is None:
        preferences = ()
    else:
        preferences = tuple(
            preference for preference in grammar.preferences
            if preference.name not in drop_names
        )
    return replace(grammar, preferences=preferences)


def _subsume_names():
    grammar = build_standard_grammar()
    return {
        preference.name for preference in grammar.preferences
        if preference.name not in _BINDING | _ROLE
    }


def test_ablation_preferences(benchmark):
    dataset = build_basic(sources_per_domain=8)
    config = ParserConfig(max_instances=12_000)
    variants = {
        "full": _variant(set()),
        "no-binding": _variant(_BINDING),
        "no-role": _variant(_ROLE),
        "no-subsume": _variant(_subsume_names()),
        "none": _variant(None),
    }

    def evaluate_all():
        rows = {}
        for name, grammar in variants.items():
            extractor = FormExtractor(grammar=grammar, parser_config=config)
            harness = EvaluationHarness(
                extract=lambda html, e=extractor: list(
                    e.extract(html).conditions
                )
            )
            result = harness.evaluate(dataset)
            rows[name] = result
        return rows

    rows = benchmark.pedantic(evaluate_all, rounds=1, iterations=1)

    lines = ["variant        Pa      Ra    accuracy   eval-time"]
    for name, result in rows.items():
        overall = result.overall
        lines.append(
            f"{name:12s} {overall.precision:.3f}   {overall.recall:.3f}   "
            f"{result.accuracy:.3f}      {result.total_elapsed:5.1f}s"
        )
    lines.append(
        "binding and role preferences buy ACCURACY (they resolve the "
        "paper's global ambiguities); subsumption preferences buy TIME "
        "(they prune the local ambiguities whose aggregation Section "
        "4.2.1 quantifies); with no preferences at all, both collapse"
    )
    record_table("Ablation: preference families (Basic, 24 sources)",
                 "\n".join(lines))

    full = rows["full"].accuracy
    for name, result in rows.items():
        benchmark.extra_info[name] = round(result.accuracy, 3)
        if name != "full":
            assert result.accuracy <= full + 0.01, name
    # Global-ambiguity resolvers: accuracy drops without them.  (The R6d/
    # R6e evidence rules recover some binding mistakes, so the no-binding
    # gap is a few points, not tens.)
    assert rows["none"].accuracy < full - 0.05
    assert rows["no-binding"].accuracy < full - 0.004
    # Local-ambiguity pruners: time explodes without them.
    assert rows["no-subsume"].total_elapsed > 3 * rows["full"].total_elapsed
    assert rows["none"].total_elapsed > 3 * rows["full"].total_elapsed
