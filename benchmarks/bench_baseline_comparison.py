"""Parsing paradigm vs pairwise-heuristic baseline (paper Sections 1-2).

The paper motivates the hidden-syntax paradigm by arguing that pairwise
proximity/alignment heuristics (as in prior hidden-Web crawling work,
reference [21]) cannot capture complex compositions -- operator lists,
from/to ranges, composite dates.  This benchmark evaluates both extractors
over all four datasets and reports the gap; the parser must win on every
dataset, with the widest margins on operator/range/date-rich domains.
"""

from __future__ import annotations

from benchmarks.conftest import record_table
from repro.baseline.heuristic import HeuristicExtractor
from repro.evaluation.harness import EvaluationHarness


def test_baseline_comparison(benchmark, datasets):
    parser_harness = EvaluationHarness()
    baseline_extractor = HeuristicExtractor()
    baseline_harness = EvaluationHarness(
        extract=lambda html: list(baseline_extractor.extract(html).conditions)
    )

    def evaluate_both():
        parser_results = {
            name: parser_harness.evaluate(dataset)
            for name, dataset in datasets.items()
        }
        baseline_results = {
            name: baseline_harness.evaluate(dataset)
            for name, dataset in datasets.items()
        }
        return parser_results, baseline_results

    parser_results, baseline_results = benchmark.pedantic(
        evaluate_both, rounds=1, iterations=1
    )

    lines = [
        "dataset       parser Pa/Ra       baseline Pa/Ra     accuracy gap"
    ]
    for name in datasets:
        p = parser_results[name].overall
        b = baseline_results[name].overall
        gap = parser_results[name].accuracy - baseline_results[name].accuracy
        lines.append(
            f"{name:12s}  {p.precision:.3f} / {p.recall:.3f}      "
            f"{b.precision:.3f} / {b.recall:.3f}      +{gap:.3f}"
        )
    lines.append(
        "paper: global parsing 'can generally capture not only complex "
        "compositions but also sophisticated features other than proximity "
        "or alignment' (Section 2)"
    )
    record_table(
        "Baseline comparison: 2P parsing vs pairwise heuristics",
        "\n".join(lines),
    )

    for name in datasets:
        benchmark.extra_info[f"{name}_gap"] = round(
            parser_results[name].accuracy - baseline_results[name].accuracy, 3
        )
        # The parser wins on every dataset...
        assert (
            parser_results[name].accuracy > baseline_results[name].accuracy
        ), name
    # ... and by a clear margin overall.
    mean_gap = sum(
        parser_results[name].accuracy - baseline_results[name].accuracy
        for name in datasets
    ) / len(datasets)
    assert mean_gap >= 0.08
