"""Build hook for the optional mypyc-compiled parser core.

The default build (``pip install .``) is pure Python.  Setting
``REPRO_COMPILE=1`` at build time compiles :mod:`repro.parser.core` --
the fix-point inner loop -- ahead of time with mypyc:

    pip install 'repro[compiled]'          # pulls mypy (ships mypyc)
    REPRO_COMPILE=1 pip install --no-build-isolation .

The compiled extension shadows ``core.py`` but the source stays
installed next to it, so the interpreted twin remains importable
(``repro.parser.parser.load_interpreted_core``) for differential
testing, and a wheel built without mypyc behaves identically minus the
speed.  When ``REPRO_COMPILE=1`` is set but mypyc is missing, the build
fails loudly rather than silently producing an interpreted wheel.
"""

import os

from setuptools import setup

ext_modules = []
if os.environ.get("REPRO_COMPILE") == "1":
    from mypyc.build import mypycify

    ext_modules = mypycify(
        ["src/repro/parser/core.py"],
        opt_level="3",
        strip_asserts=False,
    )

setup(ext_modules=ext_modules)
