#!/usr/bin/env python3
"""The motivating survey (paper Section 3.1, Figure 4).

Regenerates the observation that launched the hidden-syntax hypothesis:
across 150 autonomous sources in three dissimilar domains, the vocabulary
of condition patterns is small, converges quickly, spans domains, and is
Zipf-distributed.  Renders ASCII versions of Figures 4(a) and 4(b).

Run with::

    python examples/survey_vocabulary.py
"""

from repro.datasets.patterns import PATTERNS_BY_ID
from repro.datasets.repository import build_basic
from repro.evaluation.survey import (
    cross_domain_reuse,
    pattern_frequencies,
    ranked_frequencies,
    vocabulary_growth,
)


def ascii_curve(values, width=60, height=12):
    """Plot a monotone curve as ASCII art."""
    top = max(values)
    columns = []
    step = max(1, len(values) // width)
    for index in range(0, len(values), step):
        columns.append(values[index])
    lines = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        row = "".join("#" if v >= threshold else " " for v in columns)
        label = f"{threshold:4.0f} |" if level in (height, 1) else "     |"
        lines.append(label + row)
    lines.append("     +" + "-" * len(columns))
    lines.append(f"      1 source {' ' * (len(columns) - 22)} {len(values)} sources")
    return "\n".join(lines)


def ascii_bars(ranked, width=50):
    top = ranked[0][1]
    lines = []
    for rank, (pattern_id, count) in enumerate(ranked, start=1):
        bar = "#" * max(1, round(width * count / top))
        name = PATTERNS_BY_ID[pattern_id].name
        lines.append(f"{rank:3d} {name:20s} {count:4d} {bar}")
    return "\n".join(lines)


def main() -> None:
    basic = build_basic()  # 150 sources, 50 per domain
    print(f"Basic dataset: {len(basic)} sources across {basic.domains()}\n")

    growth = vocabulary_growth(basic)
    print("Figure 4(a): vocabulary growth over sources")
    print(ascii_curve(growth))
    print(f"\nfinal vocabulary: {growth[-1]} condition patterns "
          "(paper: 21 more-than-once patterns)")

    reuse = cross_domain_reuse(basic)
    print("\nnew patterns introduced per domain:")
    for domain, count in reuse.items():
        print(f"  {domain:14s} {count}")
    print("-> later domains mostly REUSE earlier patterns: the conventions "
          "are generic,\n   not domain-specific.  This is the concerted "
          "structure that motivates the\n   hidden-syntax hypothesis.")

    print("\nFigure 4(b): frequencies over ranks (Zipf)")
    ranked = ranked_frequencies(basic)
    print(ascii_bars(ranked))

    per_domain = pattern_frequencies(basic, by_domain=True)
    top_id = ranked[0][0]
    print(f"\nthe top pattern ({PATTERNS_BY_ID[top_id].name}) per domain: "
          + ", ".join(
            f"{name}={counter.get(top_id, 0)}"
            for name, counter in per_domain.items() if name != "Total"
        ))
    print("-> a few frequent patterns pay off across every domain, so even "
          "a partial\n   grammar captures most forms (paper Section 3.1).")


if __name__ == "__main__":
    main()
