#!/usr/bin/env python3
"""Quickstart: extract the query capabilities of an HTML query form.

This is the paper's running example -- the amazon.com advanced book search
(Figure 3(a)).  The extractor tokenizes the rendered form, parses the
tokens against the derived 2P grammar with the best-effort parser, and
merges the parse trees into the semantic model: one condition
``[attribute; operators; domain]`` per queryable field.

Run with::

    python examples/quickstart.py
"""

from repro import FormExtractor
from repro.datasets.fixtures import QAM_HTML


def main() -> None:
    extractor = FormExtractor()

    # One-call API: HTML in, semantic model out.
    model = extractor.extract(QAM_HTML)
    print("Query capabilities of the book-search form:")
    for condition in model:
        print(f"  {condition}")

    # The detailed API exposes the whole pipeline trace.
    detail = extractor.extract_detailed(QAM_HTML)
    print(f"\ntokens: {len(detail.tokens)}")
    print(f"parse trees: {len(detail.parse.trees)} "
          f"(complete: {detail.parse.is_complete})")
    print(f"instances created: {detail.parse.stats.instances_created}, "
          f"pruned just-in-time: {detail.parse.stats.instances_pruned}")

    # Each condition knows the HTML fields a client must fill to pose a
    # query -- e.g. [author = "tom clancy"] with the "exact name" operator.
    author = next(c for c in model if c.attribute == "Author")
    print(f"\nto query {author.attribute!r}:")
    print(f"  fill field(s) {sorted(set(author.fields))}")
    print(f"  choosing among operators {list(author.operators)}")

    # And the parse tree itself is available for inspection.
    print("\nparse tree (first 12 lines):")
    for line in detail.parse.trees[0].pretty().splitlines()[:12]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
