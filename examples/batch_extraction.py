#!/usr/bin/env python3
"""Batch evaluation over the four datasets (paper Section 6, Figure 15).

Runs the full form extractor and the pairwise-heuristic baseline over the
Basic, NewSource, NewDomain, and Random datasets, printing the per-source
precision/recall distributions, the averages, and the overall metrics --
the reproduction of the paper's headline "above 85% accuracy across
random sources" result.

Run with::

    python examples/batch_extraction.py            # paper-scale datasets
    python examples/batch_extraction.py --quick    # 5x smaller, faster
    python examples/batch_extraction.py --jobs 4   # 4 worker processes
"""

import argparse

from repro.baseline.heuristic import HeuristicExtractor
from repro.datasets.repository import standard_datasets
from repro.evaluation.harness import EvaluationHarness


def _job_count(value: str) -> int:
    jobs = int(value)
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {jobs}")
    return jobs


def main() -> None:
    args = argparse.ArgumentParser(description=__doc__)
    args.add_argument("--quick", action="store_true",
                      help="5x smaller datasets")
    args.add_argument("--jobs", type=_job_count, default=1,
                      help="worker processes for extraction "
                           "(default 1 = serial)")
    options = args.parse_args()
    scale = 0.2 if options.quick else 1.0
    datasets = standard_datasets(scale=scale)
    print("datasets: " + ", ".join(
        f"{name} ({len(ds)} sources)" for name, ds in datasets.items()
    ))
    if options.jobs > 1:
        print(f"extraction: {options.jobs} worker processes")

    parser_harness = EvaluationHarness(jobs=options.jobs)
    baseline = HeuristicExtractor()
    baseline_harness = EvaluationHarness(
        extract=lambda html: list(baseline.extract(html).conditions)
    )

    print("\n== form extractor (2P grammar + best-effort parser) ==")
    thresholds = (1.0, 0.9, 0.8, 0.7, 0.6, 0.0)
    header = "dataset      " + "".join(f" >={t:<4}" for t in thresholds)
    parser_results = {}
    for name, dataset in datasets.items():
        result = parser_harness.evaluate(dataset)
        parser_results[name] = result

    print("\nFigure 15(a): % of sources per precision bucket")
    print(header)
    for name, result in parser_results.items():
        dist = result.precision_distribution()
        print(f"{name:12s}" + "".join(f"  {dist[t]:4.0f}%" for t in thresholds))

    print("\nFigure 15(b): % of sources per recall bucket")
    print(header)
    for name, result in parser_results.items():
        dist = result.recall_distribution()
        print(f"{name:12s}" + "".join(f"  {dist[t]:4.0f}%" for t in thresholds))

    print("\nFigure 15(c)+(d): averages and overall")
    print("dataset       avg-Ps  avg-Rs  |    Pa      Ra   accuracy")
    for name, result in parser_results.items():
        overall = result.overall
        print(
            f"{name:12s}  {result.average_precision:.3f}   "
            f"{result.average_recall:.3f}  |  {overall.precision:.3f}   "
            f"{overall.recall:.3f}   {result.accuracy:.3f}"
        )

    print("\n== baseline: pairwise proximity/alignment heuristics ==")
    print("dataset           Pa      Ra   accuracy   (vs parser)")
    for name, dataset in datasets.items():
        result = baseline_harness.evaluate(dataset)
        overall = result.overall
        gap = parser_results[name].accuracy - result.accuracy
        print(
            f"{name:12s}   {overall.precision:.3f}   {overall.recall:.3f}   "
            f"{result.accuracy:.3f}      (+{gap:.3f} for the parser)"
        )

    print(
        "\npaper reference: ~0.85 overall precision/recall on the first "
        "three datasets,\nover 0.80 on randomly sampled sources, with no "
        "cliff on unseen domains."
    )


if __name__ == "__main__":
    main()
