#!/usr/bin/env python3
"""A miniature MetaQuerier: mediating across extracted deep-Web sources.

The paper's vision (and the MetaQuerier project it belongs to): onboard
Web databases *automatically* by extracting their query capabilities, then
route user queries to the sources that can answer them.  This demo builds
six simulated book/movie sources, onboards them from their HTML alone, and
mediates two queries -- showing capability-based source selection, per-
source planning, provenance-tagged answers, and the reasons incapable
sources were skipped.

Run with::

    python examples/mediator_demo.py
"""

from repro.mediator import Mediator
from repro.query import Constraint
from repro.webdb import SimulatedSource


def main() -> None:
    mediator = Mediator()
    for domain, seeds in (("Books", (81_001, 81_002, 81_003)),
                          ("Movies", (82_005, 82_013, 82_021))):
        for seed in seeds:
            source = SimulatedSource.create(domain, seed=seed,
                                            record_count=80)
            model = mediator.add_source(source)
            print(f"onboarded {source.generated.name}: "
                  f"{len(model.conditions)} conditions extracted from HTML")

    for query in (
        [Constraint("Format", "Hardcover")],
        [Constraint("Genre", "Comedy")],
    ):
        print("\n" + "=" * 60)
        print("user query:", "; ".join(str(c) for c in query))
        answer = mediator.query(query)
        print(f"capable sources: {answer.sources_queried}")
        for source_answer in answer.answers:
            if source_answer.queried:
                print(f"  {source_answer.source_name}: "
                      f"{len(source_answer.records)} records "
                      f"(params {source_answer.plan.params})")
            else:
                print(f"  {source_answer.source_name}: skipped -- "
                      f"{source_answer.skipped_reason}")
        merged = answer.records
        print(f"merged answer: {len(merged)} records; first two:")
        for name, record in merged[:2]:
            preview = {key: record[key] for key in list(record)[:3]}
            print(f"  [{name}] {preview}")

    print(
        "\nEvery source description above was built by the form extractor "
        "from the page\nHTML -- the hand-written descriptions the paper "
        "calls 'a major obstacle to\nscale up integration' are gone."
    )


if __name__ == "__main__":
    main()
