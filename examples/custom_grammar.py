#!/usr/bin/env python3
"""Extending the grammar: teach the extractor a new condition pattern.

The 2P grammar is declarative and extensible (paper Section 3.2): "we
simply augment the grammar to add new patterns, leaving parsing
untouched."  This example demonstrates exactly that workflow on the
*label-right* convention -- "Travelling with [box] children" -- which the
standard grammar deliberately does not cover (it is pattern #24, one of
the rare out-of-grammar conventions in the dataset generator).

We (1) show the stock extractor mis-reading the form, (2) append one
production and one preference to the standard grammar builder, and
(3) show the extended extractor reading it correctly.  No parser code
changes.

Run with::

    python examples/custom_grammar.py
"""

from repro import FormExtractor
from repro.grammar.standard import standard_builder
from repro.grammar.text_heuristics import clean_label, is_attribute_like
from repro.semantics.condition import Condition, Domain
from repro.spatial import SpatialConfig, left_of

HTML = """
<html><body><form action="/hotels">
<table cellspacing="4" cellpadding="2">
<tr><td>City:</td><td><input type="text" name="city" size="20"></td></tr>
<tr><td colspan="2">Travelling with <input type="text" name="children" size="4"> children</td></tr>
</table>
<input type="submit" value="Search">
</form></body></html>
"""

#: The trailing label hugs its field -- much tighter than the label-to-
#: field gap a table column produces.
_TIGHT = SpatialConfig(max_horizontal_gap=24.0)


def build_extended_grammar():
    """The standard grammar plus a label-right condition pattern."""
    g = standard_builder()

    def label_right(val, label):
        return (
            left_of(val.bbox, label.bbox, _TIGHT)
            and is_attribute_like(label.payload.get("sval", ""))
        )

    g.production(
        "CP", ["Val", "text"],
        constraint=label_right,
        constructor=lambda val, label: {
            "condition": Condition(
                attribute=clean_label(label.payload.get("sval", "")),
                operators=("contains",),
                domain=Domain("text"),
                fields=tuple(val.payload.get("fields", ())),
            ),
            "arrangement": "right",
            "val_uid": val.uid,
        },
        name="P-cp-label-right",
    )
    # Precedence is part of the derived syntax too: when a field has text
    # on both sides, this convention says the trailing noun names the
    # attribute ("Travelling with [box] children").  A production-grade
    # grammar would gate this lexically; the demo keeps it simple.
    g.prefer(
        "CP", over="CP",
        when=lambda v1, v2: (
            v1.payload.get("val_uid") is not None
            and v1.payload.get("val_uid") == v2.payload.get("val_uid")
        ),
        criteria=lambda v1, v2: (
            v1.payload.get("arrangement") == "right"
            and v2.payload.get("arrangement") == "left"
        ),
        name="R-trailing-label-wins",
    )
    return g.build()


def main() -> None:
    print("Form: 'Travelling with [box] children' -- the label is RIGHT "
          "of the box.\n")

    stock = FormExtractor()
    print("Stock grammar extraction:")
    for condition in stock.extract(HTML):
        print(f"  {condition}")
    print("  -> the box is mis-labelled ('Travelling with').\n")

    extended = FormExtractor(grammar=build_extended_grammar())
    print("Extended grammar extraction (one production + one preference):")
    for condition in extended.extract(HTML):
        print(f"  {condition}")
    print("\nThe parser, scheduler, pruner, and merger were untouched.")

    stats = extended.grammar.stats()
    print(f"grammar now has {stats['productions']} productions and "
          f"{stats['preferences']} preferences")


if __name__ == "__main__":
    main()
