#!/usr/bin/env python3
"""Airfare forms: composite dates, bare enumerations, and merger errors.

Two scenarios from the paper:

1. ``Qaa`` (Figure 3(b)): a flight-search form whose conditions include a
   bare radio pair (trip type), composite month/day date selects, and a
   flag checkbox -- all recovered as single conditions.

2. The Figure 14 variation: the passenger block is arranged column-by-
   column with misaligned labels, so the parser ends with *multiple
   overlapping partial trees*; the merger unions their conditions and
   reports the contested tokens as conflicts for client-side handling.

Run with::

    python examples/airfare_form.py
"""

from repro import FormExtractor
from repro.datasets.fixtures import QAA_HTML, QAA_VARIANT_HTML


def main() -> None:
    extractor = FormExtractor()

    print("=" * 60)
    print("Qaa: the aa.com-style flight search (Figure 3(b))")
    print("=" * 60)
    detail = extractor.extract_detailed(QAA_HTML)
    print(detail.model.describe())
    dates = [c for c in detail.model if c.domain.kind == "datetime"]
    print(f"\ncomposite date conditions: {len(dates)} "
          f"(each folds several <select>s into one condition)")
    for condition in dates:
        print(f"  {condition.attribute}: fields {list(condition.fields)}")

    print()
    print("=" * 60)
    print("Figure 14 variation: column-wise layout defeats row patterns")
    print("=" * 60)
    detail = extractor.extract_detailed(QAA_VARIANT_HTML)
    print(f"maximal partial parse trees: {len(detail.parse.trees)}")
    for index, tree in enumerate(detail.parse.trees, start=1):
        print(f"  tree {index}: covers {len(tree.coverage)} of "
              f"{len(detail.tokens)} tokens")
    print("\nmerged semantic model (union of the partial parses):")
    print(detail.model.describe())
    if detail.model.conflicts:
        print("\nThe merger reports a conflict: as in the paper's example, "
              "two conditions compete for the same selection list, and the "
              "client of the extractor gets to arbitrate.")


if __name__ == "__main__":
    main()
