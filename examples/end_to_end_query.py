#!/usr/bin/env python3
"""End-to-end deep-Web integration: extract → plan → submit → records.

The paper's motivation is large-scale integration of Web databases.  This
example closes the whole loop against a simulated deep-Web source (a
record database behind a generated query form):

1. the extractor reads the source's HTML -- nothing else -- and produces
   its semantic model with actionable bindings;
2. the query planner translates user constraints into form parameters
   through that model;
3. the source executes the submission over its records;
4. we verify the answer against querying via the source's own ground
   truth.

Run with::

    python examples/end_to_end_query.py
"""

from repro import FormExtractor
from repro.query import Constraint, QueryPlanner
from repro.semantics.condition import SemanticModel
from repro.webdb import SimulatedSource


def main() -> None:
    source = SimulatedSource.create("Automobiles", seed=424_242,
                                    record_count=200)
    print(f"simulated source: {source.generated.name} "
          f"({len(source.records)} records behind the form)\n")

    # Step 1: extraction sees only the HTML.
    model = FormExtractor().extract(source.html)
    print("extracted capabilities:")
    for condition in model:
        print(f"  {condition}")

    # Step 2: plan a user query through the extracted model.
    planner = QueryPlanner(model)
    constraints = []
    enum_condition = next(
        (c for c in model if c.domain.kind == "enum" and c.attribute), None
    )
    if enum_condition is not None:
        value = next(
            v for v in enum_condition.domain.values
            if not v.lower().startswith(("all", "any"))
        )
        constraints.append(Constraint(enum_condition.attribute, value))
    range_condition = next(
        (c for c in model if c.domain.kind == "range"), None
    )
    if range_condition is not None:
        constraints.append(Constraint(range_condition.attribute, (None, 20000)))
    if not constraints:
        text_condition = next(c for c in model if c.domain.kind == "text")
        constraints.append(Constraint(text_condition.attribute, "a"))

    print("\nuser query:")
    for constraint in constraints:
        print(f"  {constraint}")
    plan = planner.plan(constraints)
    print(f"\nplanned form submission: {plan.params}")
    if plan.unplanned:
        for constraint, reason in plan.unplanned:
            print(f"  ! could not plan {constraint}: {reason}")

    # Step 3: the source answers.
    records = source.submit(plan.params)
    print(f"\nthe source returns {len(records)} of {len(source.records)} "
          "records; first three:")
    for record in records[:3]:
        preview = {key: record[key] for key in list(record)[:4]}
        print(f"  {preview}")

    # Step 4: cross-check against the ground-truth model.
    truth_planner = QueryPlanner(
        SemanticModel(conditions=list(source.generated.truth))
    )
    truth_plan = truth_planner.plan(constraints)
    expected = source.submit(truth_plan.params)
    verdict = "MATCH" if records == expected else "MISMATCH"
    print(f"\nvs querying through the source's own ground truth: {verdict} "
          f"({len(expected)} records expected)")


if __name__ == "__main__":
    main()
