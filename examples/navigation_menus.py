#!/usr/bin/env python3
"""Best-effort parsing beyond query forms: navigation-menu extraction.

Paper Section 7 conjectures that the framework generalizes to other Web
design artifacts with concerted structure -- e.g. "the navigational menus
listing available services ... regularly arranged at the top or left hand
side of entry pages in E-commerce Web sites."

This example swaps in a *navigation-menu grammar* (menu items are short
hyperlinks; vertical menus stack left-aligned; a heading may title a
group) while reusing the tokenizer, scheduler, fix-point parser, pruner,
and maximizer unchanged, and extracts the services of a synthetic
e-commerce entry page.

Run with::

    python examples/navigation_menus.py
"""

from repro.apps.navmenu import NavMenuExtractor, generate_entry_page


def main() -> None:
    html, truth = generate_entry_page(seed=7)
    print("ground-truth navigation sections:")
    for title, items in truth.items():
        print(f"  {title}: {', '.join(items)}")

    extractor = NavMenuExtractor()
    print(f"\nmenu grammar: {extractor.grammar.stats()}")

    result = extractor.extract(html)
    print("\nextracted from the rendered page:")
    for menu in result.menus:
        title = menu["title"] or "(untitled)"
        print(f"  {title}: {', '.join(menu['items'])}")

    extracted = {menu["title"]: tuple(menu["items"]) for menu in result.menus}
    correct = sum(
        1 for title, items in truth.items() if extracted.get(title) == items
    )
    print(f"\nsections recovered exactly: {correct}/{len(truth)}")
    print("\nall services, flattened:")
    print("  " + ", ".join(result.services))
    print(
        "\nSame parsing machinery, different hidden syntax -- the grammar "
        "is the only thing that changed."
    )


if __name__ == "__main__":
    main()
