"""End-to-end tests for the form extractor on the paper's fixtures."""

import pytest

from repro.datasets.fixtures import (
    QAA_HTML,
    QAM_FRAGMENT_HTML,
    QAM_HTML,
    qaa_ground_truth,
    qam_fragment_ground_truth,
    qam_ground_truth,
)
from repro.evaluation.metrics import per_source_metrics
from repro.extractor import (
    FormExtractor,
    FormNotFoundError,
    extract_capabilities,
)
from repro.semantics.condition import Domain


@pytest.fixture(scope="module")
def extractor():
    return FormExtractor()


class TestQam:
    """Figure 3(a): the amazon.com books form."""

    def test_perfect_extraction(self, extractor):
        model = extractor.extract(QAM_HTML)
        metrics = per_source_metrics(list(model.conditions), qam_ground_truth())
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0

    def test_author_condition_shape(self, extractor):
        model = extractor.extract(QAM_HTML)
        author = next(c for c in model if c.attribute == "Author")
        assert author.domain == Domain("text")
        assert author.operators == (
            "first name/initials and last name",
            "start(s) of last name",
            "exact name",
        )
        assert "author" in author.fields

    def test_subject_enumeration(self, extractor):
        model = extractor.extract(QAM_HTML)
        subject = next(c for c in model if c.attribute == "Subject")
        assert subject.domain.kind == "enum"
        assert "Fiction" in subject.domain.values

    def test_single_complete_parse(self, extractor):
        detail = extractor.extract_detailed(QAM_HTML)
        assert detail.parse.is_complete


class TestQaa:
    """Figure 3(b): the aa.com airfare form."""

    def test_perfect_extraction(self, extractor):
        model = extractor.extract(QAA_HTML)
        metrics = per_source_metrics(list(model.conditions), qaa_ground_truth())
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0

    def test_trip_type_is_bare_enum(self, extractor):
        model = extractor.extract(QAA_HTML)
        trip = next(c for c in model if "Round trip" in c.domain.values)
        assert trip.attribute == ""

    def test_dates_are_composite(self, extractor):
        model = extractor.extract(QAA_HTML)
        dates = [c for c in model if c.domain.kind == "datetime"]
        assert {c.attribute for c in dates} == {
            "Departure date", "Return date",
        }
        departure = next(c for c in dates if c.attribute == "Departure date")
        assert set(departure.fields) == {"dep_m", "dep_d"}

    def test_checkbox_flag(self, extractor):
        model = extractor.extract(QAA_HTML)
        flag = next(
            c for c in model if "Nonstop flights only" in c.domain.values
        )
        assert flag.operators == ("in",)


class TestFragment:
    def test_fragment_extraction(self, extractor):
        model = extractor.extract(QAM_FRAGMENT_HTML)
        metrics = per_source_metrics(
            list(model.conditions), qam_fragment_ground_truth()
        )
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0


class TestApiSurface:
    def test_one_shot_helper(self):
        model = extract_capabilities(QAM_HTML)
        assert len(model) == 5

    def test_out_of_range_form_index_raises(self, extractor):
        with pytest.raises(FormNotFoundError) as excinfo:
            extractor.extract(QAM_HTML, form_index=5)
        assert excinfo.value.form_index == 5
        assert excinfo.value.form_count == 1
        assert "5" in str(excinfo.value) and "1 form" in str(excinfo.value)

    def test_negative_form_index_raises(self, extractor):
        with pytest.raises(FormNotFoundError):
            extractor.extract(QAM_HTML, form_index=-1)

    def test_form_index_on_formless_page_raises(self, extractor):
        with pytest.raises(FormNotFoundError) as excinfo:
            extractor.extract("<html><body>nothing</body></html>", form_index=2)
        assert excinfo.value.form_count == 0

    def test_no_form_page(self, extractor):
        model = extractor.extract("<html><body>No form here</body></html>")
        assert list(model.conditions) == []

    def test_no_form_fallback_is_recorded(self, extractor):
        detail = extractor.extract_detailed(
            "<html><body>Query: <input name=q></body></html>"
        )
        assert any("no <form> element" in warning for warning in detail.warnings)
        assert detail.trace.tags.get("form_fallback") is True

    def test_empty_page(self, extractor):
        model = extractor.extract("")
        assert list(model.conditions) == []

    def test_extract_detailed_carries_trace(self, extractor):
        detail = extractor.extract_detailed(QAM_HTML)
        assert detail.tokens
        assert detail.parse.stats.instances_created > 0
        assert detail.report.model is detail.model

    def test_trace_spans_cover_the_pipeline(self, extractor):
        detail = extractor.extract_detailed(QAM_HTML)
        assert [span.name for span in detail.trace.spans] == [
            "html-parse", "tokenize", "parse.construct",
            "parse.maximize", "merge",
        ]
        construct = detail.trace.span_named("parse.construct")
        assert construct.counters == detail.parse.stats.counters()
        merge = detail.trace.span_named("merge")
        assert merge.counters["conditions"] == len(detail.model.conditions)
        assert detail.trace.outcome == "ok"
        assert not detail.warnings
        stats = detail.parse.stats
        assert stats.elapsed_seconds == pytest.approx(
            stats.construction_seconds + stats.maximization_seconds, abs=1e-3
        )

    def test_extractions_feed_metrics_registry(self):
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        extractor = FormExtractor(metrics=registry)
        extractor.extract(QAM_HTML)
        extractor.extract(QAM_HTML)
        assert registry.counter("extract.ok") == 2
        histogram = registry.histogram("span.parse.construct.seconds")
        assert histogram is not None and histogram.count == 2
        assert registry.counter(
            "span.parse.construct.instances_created"
        ) == 2 * extractor.extract_detailed(
            QAM_HTML
        ).parse.stats.instances_created

    def test_deterministic_output(self, extractor):
        first = extractor.extract(QAM_HTML)
        second = extractor.extract(QAM_HTML)
        assert list(first.conditions) == list(second.conditions)

    def test_custom_grammar_accepted(self, example_grammar):
        custom = FormExtractor(grammar=example_grammar)
        model = custom.extract(QAM_FRAGMENT_HTML)
        # Grammar G has no condition constructors, so no conditions come
        # out -- but extraction must run cleanly.
        assert model.conditions == []


class TestRobustness:
    @pytest.mark.parametrize("html", [
        "<form></form>",
        "<form><input></form>",
        "<form>" + "<input name=q>" * 20 + "</form>",
        "<form><table><tr></tr></table></form>",
        "<form>text only, no controls</form>",
    ])
    def test_never_raises(self, extractor, html):
        extractor.extract(html)


class TestWarmup:
    """`warmup()` pays first-call costs without observable side effects
    (the serve tier calls it in every worker initializer)."""

    def test_warmup_is_silent(self):
        from repro.cache import ExtractionCache
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        cache = ExtractionCache(capacity=8)
        extractor = FormExtractor(metrics=registry, cache=cache)
        extractor.warmup()
        assert registry.to_dict()["counters"] == {}
        assert len(cache) == 0

    def test_warmup_is_idempotent_and_extraction_unchanged(self):
        warmed = FormExtractor()
        warmed.warmup()
        warmed.warmup()
        cold = FormExtractor()
        assert list(warmed.extract(QAM_HTML).conditions) == list(
            cold.extract(QAM_HTML).conditions
        )

    def test_service_warm_reaches_the_serial_extractor(self):
        from repro.server.config import ServerConfig
        from repro.server.service import ExtractionService

        service = ExtractionService(ServerConfig(jobs=1, cache=False))
        calls = []
        assert service._serial is not None
        service._serial.warmup = lambda: calls.append(True)  # type: ignore[method-assign]
        assert service.warm() == 1
        assert calls == [True]
