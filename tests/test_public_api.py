"""Public-API surface tests.

The README and examples promise a stable import surface; these tests pin
it.  Every ``__all__`` name must resolve, every public package must import
cleanly, and the headline one-liner must work as documented.
"""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.apps",
    "repro.apps.navmenu",
    "repro.baseline",
    "repro.batch",
    "repro.cache",
    "repro.cli",
    "repro.datasets",
    "repro.debug",
    "repro.evaluation",
    "repro.extractor",
    "repro.grammar",
    "repro.grammar.example_g",
    "repro.grammar.standard",
    "repro.html",
    "repro.layout",
    "repro.learning",
    "repro.mediator",
    "repro.merger",
    "repro.observability",
    "repro.parser",
    "repro.query",
    "repro.refine",
    "repro.resilience",
    "repro.semantics",
    "repro.semantics.serialize",
    "repro.spatial",
    "repro.tokens",
    "repro.webdb",
]


class TestImports:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_package_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", sorted(repro.__all__))
    def test_top_level_all_resolves(self, name):
        assert getattr(repro, name) is not None

    def test_subpackage_all_resolves(self):
        for package_name in PACKAGES:
            module = importlib.import_module(package_name)
            for name in getattr(module, "__all__", ()):
                assert getattr(module, name, None) is not None, (
                    package_name, name,
                )

    def test_version(self):
        assert repro.__version__


class TestHeadlineUsage:
    def test_readme_one_liner(self):
        model = repro.FormExtractor().extract(
            "<form>Author: <input name=a></form>"
        )
        assert [c.attribute for c in model] == ["Author"]

    def test_condition_str_is_paper_notation(self):
        model = repro.FormExtractor().extract(
            "<form>Author: <input name=a></form>"
        )
        assert str(list(model)[0]) == "[Author; {contains}; text]"


class TestDocstrings:
    @pytest.mark.parametrize("name", PACKAGES)
    def test_every_public_module_documented(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40, name

    def test_public_classes_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj):
                assert getattr(obj, "__doc__", None), name
