"""The chaos harness: injected faults must never wedge the service.

The invariants under test, per the survival contract:

* every response on the wire is well-formed HTTP with a known status --
  an injected fault never surfaces as a protocol violation or an
  unhandled exception;
* a worker-crash storm trips the circuit breaker into fast 503s (with
  ``Retry-After``) instead of a restart loop, and the half-open probe
  recovers the service once the storm passes;
* disk-full cache writes degrade the cache to memory-only while requests
  keep succeeding;
* slowloris / half-open clients cost one 408 (or a silent close), and
  no connection leaks: ``open_connections`` returns to zero.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.server import ChaosConfig, ChaosMonkey
from repro.server.chaos import drip_request, half_open_request
from tests.server.conftest import FORM_HTML


def _wait_until(predicate, timeout: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


def _distinct_form(index: int) -> str:
    return FORM_HTML.replace("/search", f"/chaos{index}")


class TestChaosConfig:
    def test_bad_schedules_are_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(crash_every=0)
        with pytest.raises(ValueError):
            ChaosConfig(disk_full_every=0)
        with pytest.raises(ValueError):
            ChaosConfig(delay_seconds=-1)

    def test_install_is_exclusive_and_uninstall_restores(self, live_server):
        live = live_server(cache=False)
        monkey = ChaosMonkey(ChaosConfig(crash_every=1))
        real_submit = live.service._submit
        monkey.install(live.service)
        with pytest.raises(RuntimeError):
            monkey.install(live.service)
        monkey.uninstall()
        assert live.service._submit == real_submit
        monkey.uninstall()  # idempotent


class TestCrashInjection:
    def test_every_nth_dispatch_dies_and_recovers_via_restart(
        self, live_server
    ):
        live = live_server(cache=False, breaker_threshold=100)
        monkey = ChaosMonkey(ChaosConfig(crash_every=2))
        monkey.install(live.service)
        try:
            statuses = [
                live.post_json(
                    "/extract", {"html": _distinct_form(index)}, timeout=120
                )[0]
                for index in range(6)
            ]
        finally:
            monkey.uninstall()
        # Every second submission dies; the retry-on-fresh-pool path
        # absorbs each crash, so the client still sees all 200s.
        assert statuses == [200] * 6
        assert monkey.counters.crashes_injected >= 2
        counters = live.metrics.to_dict()["counters"]
        assert counters["serve.pool_restarts"] == (
            monkey.counters.crashes_injected
        )

    def test_crash_storm_trips_the_breaker_then_recovers(self, live_server):
        live = live_server(
            cache=False, breaker_threshold=2, breaker_reset_seconds=0.5
        )
        monkey = ChaosMonkey(ChaosConfig(crash_every=1))
        monkey.install(live.service)
        try:
            # Every dispatch dies twice (submit + retry): one request is
            # enough to land 2 failures and trip the breaker.
            status, headers, _ = live.post_json(
                "/extract", {"html": _distinct_form(0)}, timeout=120
            )
            assert status == 503
            assert live.service.breaker.state == "open"
            # While open: fast 503 + Retry-After, the pool never touched.
            submissions = monkey.counters.submissions
            status, headers, _ = live.post_json(
                "/extract", {"html": _distinct_form(1)}
            )
            assert status == 503
            assert int(headers["Retry-After"]) >= 1
            assert monkey.counters.submissions == submissions
        finally:
            monkey.uninstall()
        # Storm over: after the cooldown the half-open probe succeeds and
        # the service is healthy again.
        assert _wait_until(
            lambda: live.service.breaker.state == "half-open", timeout=10
        )
        status, _, _ = live.post_json(
            "/extract", {"html": _distinct_form(2)}, timeout=120
        )
        assert status == 200
        assert live.service.breaker.state == "closed"
        assert live.get_json("/healthz")[0] == 200


class TestDiskFullInjection:
    def test_cache_degrades_to_memory_and_requests_succeed(
        self, live_server, tmp_path
    ):
        live = live_server(cache_dir=str(tmp_path))
        monkey = ChaosMonkey(ChaosConfig(disk_full_every=1))
        monkey.install(live.service)
        try:
            first = live.post_json(
                "/extract", {"html": FORM_HTML}, timeout=120
            )
            assert first[0] == 200
            assert monkey.counters.disk_errors_injected == 1
            # The memory tier still took the entry: a repeat is a hit.
            again = live.post_json("/extract", {"html": FORM_HTML})
            assert again[0] == 200
            assert again[2]["cached"] is True
        finally:
            monkey.uninstall()
        # Every disk write failed: the backing file never materialized.
        assert not (tmp_path / "extraction-cache.jsonl").exists()


class TestInvariantMatrix:
    """Crashes + disk-full + hostile clients at once: never a wedge."""

    @pytest.mark.parametrize(
        "crash_every,disk_full_every", [(2, None), (None, 2), (3, 2)]
    )
    def test_mixed_faults_yield_only_well_formed_responses(
        self, live_server, tmp_path, crash_every, disk_full_every
    ):
        live = live_server(
            cache_dir=str(tmp_path / f"c{crash_every}-{disk_full_every}"),
            breaker_threshold=100,  # this matrix is about the fault paths
            header_timeout_seconds=0.5,
            idle_timeout_seconds=0.5,
        )
        monkey = ChaosMonkey(
            ChaosConfig(
                crash_every=crash_every, disk_full_every=disk_full_every
            )
        )
        monkey.install(live.service)
        statuses: list[int] = []
        lock = threading.Lock()

        def post(index: int) -> None:
            status, _, payload = live.post_json(
                "/extract", {"html": _distinct_form(index)}, timeout=120
            )
            with lock:
                statuses.append(status)
            assert "request_id" in payload

        attacks: list = []

        def attack() -> None:
            report = half_open_request(
                "127.0.0.1", live.port, b"GET /healthz HTTP/1.1\r\nX-",
                timeout=30,
            )
            with lock:
                attacks.append(report)

        threads = [
            threading.Thread(target=post, args=(index,)) for index in range(8)
        ] + [threading.Thread(target=attack) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        monkey.uninstall()
        # Traffic under chaos: every answer well-formed, statuses known.
        assert len(statuses) == 8
        assert set(statuses) <= {200, 503}
        # The hostile clients cost one 408 each and were closed out.
        assert len(attacks) == 2
        for report in attacks:
            assert report.status == 408
            assert report.closed
        # The service is healthy afterwards: answers, and leaks nothing.
        assert live.get_json("/healthz")[0] == 200
        assert _wait_until(
            lambda: live.server._http.open_connections == 0, timeout=10
        )

    def test_slowloris_is_cut_off_while_normal_traffic_flows(
        self, live_server
    ):
        live = live_server(
            cache=False,
            header_timeout_seconds=0.5,
            idle_timeout_seconds=0.5,
        )
        outcome: dict = {}

        def attack() -> None:
            outcome["attack"] = drip_request(
                "127.0.0.1",
                live.port,
                b"GET /healthz HTTP/1.1\r\nX-Drip: "
                + b"a" * 4096
                + b"\r\n\r\n",
                # Big enough chunks that the request line lands inside the
                # idle budget -- the *headers* are what trickles, so the
                # defense under test is the header-read deadline (408),
                # not the silent idle close.
                chunk_size=24,
                pause_seconds=0.05,
                timeout=30,
            )

        thread = threading.Thread(target=attack)
        thread.start()
        # Normal clients are served while the attacker trickles.
        for _ in range(3):
            assert live.get_json("/healthz")[0] == 200
        thread.join(timeout=120)
        report = outcome["attack"]
        # The trickle never finished its head: one 408, then the close.
        assert report.status == 408
        assert report.closed
        counters = live.metrics.to_dict()["counters"]
        assert counters["serve.timeout.header"] >= 1
        assert _wait_until(
            lambda: live.server._http.open_connections == 0, timeout=10
        )

    def test_injected_latency_builds_queue_pressure(self, live_server):
        live = live_server(cache=False, max_queue=1)
        monkey = ChaosMonkey(ChaosConfig(delay_seconds=0.5))
        monkey.install(live.service)
        try:
            result: dict = {}

            def post() -> None:
                result["first"] = live.post_json(
                    "/extract", {"html": _distinct_form(0)}, timeout=120
                )[0]

            thread = threading.Thread(target=post)
            thread.start()
            assert _wait_until(lambda: live.service.queue_depth == 1)
            status, _, _ = live.post_json(
                "/extract", {"html": _distinct_form(1)}
            )
            assert status == 429  # the delayed request holds the queue
            thread.join(timeout=120)
            assert result["first"] == 200
        finally:
            monkey.uninstall()
