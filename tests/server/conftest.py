"""Fixtures for the serving tier: a live server on a background loop.

The e2e tests exercise the real stack -- sockets, HTTP framing, the
admission gate, the extraction pipeline -- with the server's event loop
running on a dedicated thread and plain :mod:`http.client` clients
calling in from the test thread (and from extra threads for the
concurrency tests).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading

import pytest

from repro.server import ExtractionServer, ServerConfig

#: A small but non-trivial query form (several condition patterns).
FORM_HTML = """<html><body><form action="/search" method="get">
<b>Title</b> <select name="title_kind"><option>any words</option>
<option>exact phrase</option></select>
<input type="text" name="title">
<b>Author</b> <input type="text" name="author">
<b>Format</b>
<input type="checkbox" name="fmt" value="hardcover">Hardcover
<input type="checkbox" name="fmt" value="paperback">Paperback
<b>Price</b> from <input type="text" name="lo"> to <input type="text" name="hi">
<input type="submit" value="Search">
</form></body></html>"""


def heavy_form_html(fields: int = 80) -> str:
    """A form big enough that extraction cannot finish in ~a millisecond."""
    rows = []
    for index in range(fields):
        rows.append(
            f"<b>Field {index}</b> "
            f"<select name='kind{index}'><option>any</option>"
            f"<option>all</option><option>exact</option></select> "
            f"<input type='text' name='value{index}'><br>"
        )
    return (
        "<html><body><form action='/q'>"
        + "".join(rows)
        + "<input type='submit' value='go'></form></body></html>"
    )


class LiveServer:
    """An :class:`ExtractionServer` running on its own event-loop thread."""

    def __init__(self, config: ServerConfig):
        self.config = config
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="live-server", daemon=True
        )
        self._thread.start()
        self.server = ExtractionServer(config)
        self.port: int = self.submit(self.server.start()).result(timeout=60)
        self._stopped = False

    def submit(self, coro):
        """Schedule a coroutine on the server loop; returns its future."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    @property
    def service(self):
        return self.server.service

    @property
    def metrics(self):
        return self.server.metrics

    def stop(self) -> bool:
        if self._stopped:
            return True
        self._stopped = True
        drained = self.submit(self.server.stop()).result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()
        return drained

    # -- plain-HTTP client helpers -------------------------------------------------

    def connection(self, timeout: float = 60.0) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=timeout
        )

    def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
        timeout: float = 60.0,
    ):
        """One request on a fresh connection -> (status, headers, body)."""
        conn = self.connection(timeout=timeout)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = response.read()
            return response.status, dict(response.getheaders()), payload
        finally:
            conn.close()

    def post_json(self, path: str, payload: object, timeout: float = 60.0):
        """POST JSON -> (status, headers, decoded JSON body)."""
        status, headers, body = self.request(
            "POST",
            path,
            body=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            timeout=timeout,
        )
        return status, headers, json.loads(body)

    def get_json(self, path: str, timeout: float = 60.0):
        status, headers, body = self.request("GET", path, timeout=timeout)
        return status, headers, json.loads(body)


@pytest.fixture()
def live_server():
    """Factory fixture: start servers with overrides, stop them at teardown."""
    servers: list[LiveServer] = []

    def _start(**overrides) -> LiveServer:
        settings = {"port": 0, "jobs": 1}
        settings.update(overrides)
        server = LiveServer(ServerConfig(**settings))
        servers.append(server)
        return server

    yield _start
    for server in servers:
        server.stop()
