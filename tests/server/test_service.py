"""Admission control, dispatch recovery, and accounting in the service.

These tests poke :class:`ExtractionService` directly on a local event
loop; the dispatch stage is stubbed where a test is about queueing
rather than extraction, and real (serial-mode) extraction is used where
the contract under test is the cache/ladder interplay.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.batch.extractor import BatchRecord
from repro.server import ServerConfig
from repro.server.service import (
    ExtractionService,
    ServiceSaturated,
    ServiceUnavailable,
)
from tests.server.conftest import FORM_HTML, heavy_form_html


def make_service(**overrides) -> ExtractionService:
    settings = {"port": 0, "jobs": 1}
    settings.update(overrides)
    return ExtractionService(ServerConfig(**settings))


class TestDeadlineClamp:
    def test_missing_deadline_takes_default(self):
        service = make_service(default_deadline_seconds=7.0)
        assert service._clamp_deadline(None) == 7.0

    def test_requested_deadline_is_capped(self):
        service = make_service(max_deadline_seconds=30.0)
        assert service._clamp_deadline(500.0) == 30.0

    def test_nonpositive_deadline_takes_default(self):
        service = make_service(default_deadline_seconds=7.0)
        assert service._clamp_deadline(-1.0) == 7.0


class TestAdmission:
    def test_depth_overflow_sheds(self):
        async def scenario():
            service = make_service(max_queue=1, cache=False)
            release = asyncio.Event()

            async def parked(html, form_index, deadline):
                await release.wait()
                return BatchRecord(index=0)

            service._dispatch = parked  # type: ignore[method-assign]
            first = asyncio.create_task(service.extract("<form></form>"))
            await asyncio.sleep(0.01)
            assert service.queue_depth == 1
            with pytest.raises(ServiceSaturated) as excinfo:
                await service.extract("<form><input></form>")
            assert excinfo.value.retry_after >= 1.0
            release.set()
            result = await first
            assert result.ok
            assert service.queue_depth == 0

        asyncio.run(scenario())

    def test_deadline_projection_sheds_doomed_requests(self):
        async def scenario():
            service = make_service(max_queue=100, cache=False)
            service._ewma_seconds = 10.0
            service._inflight = service.workers  # one full wave queued
            with pytest.raises(ServiceSaturated) as excinfo:
                service._admit(deadline=1.0)
            assert "projected queue wait" in excinfo.value.detail
            # The same queue is fine for a patient request.
            service._admit(deadline=60.0)
            assert service._inflight == service.workers + 1

        asyncio.run(scenario())

    def test_draining_service_is_unavailable(self):
        async def scenario():
            service = make_service(cache=False)
            assert await service.drain() is True
            with pytest.raises(ServiceUnavailable):
                await service.extract(FORM_HTML)

        asyncio.run(scenario())

    def test_drain_times_out_on_stuck_work(self):
        async def scenario():
            service = make_service(cache=False, drain_seconds=0.05)
            release = asyncio.Event()

            async def parked(html, form_index, deadline):
                await release.wait()
                return BatchRecord(index=0)

            service._dispatch = parked  # type: ignore[method-assign]
            stuck = asyncio.create_task(service.extract("<form></form>"))
            await asyncio.sleep(0.01)
            assert await service.drain() is False
            release.set()
            await stuck

        asyncio.run(scenario())

    def test_cache_hit_bypasses_admission(self):
        async def scenario():
            service = make_service(max_queue=2)
            primed = await service.extract(FORM_HTML)
            assert primed.cached is False
            service._inflight = service.config.max_queue  # saturate
            hit = await service.extract(FORM_HTML)
            assert hit.cached is True
            service._inflight = 0

        asyncio.run(scenario())

    def test_batch_is_shed_atomically(self):
        async def scenario():
            service = make_service(max_queue=2, cache=False)
            with pytest.raises(ServiceSaturated):
                await service.extract_batch(["<form></form>"] * 3)
            assert service.queue_depth == 0

        asyncio.run(scenario())

    def test_batch_cache_hits_release_their_slots(self):
        async def scenario():
            service = make_service(max_queue=1)
            await service.extract(FORM_HTML)
            results = await service.extract_batch([FORM_HTML])
            assert results[0].cached is True
            assert service.queue_depth == 0

        asyncio.run(scenario())

    def test_request_ids_are_unique_and_sessioned(self):
        service = make_service()
        first, second = service.next_request_id(), service.next_request_id()
        assert first != second
        assert first.split("-")[0] == second.split("-")[0]


class TestAccounting:
    def test_request_id_is_threaded_into_the_trace(self):
        async def scenario():
            service = make_service(cache=False)
            result = await service.extract(FORM_HTML, request_id="riq-1")
            assert result.record.trace["tags"]["request_id"] == "riq-1"
            counters = service.metrics.to_dict()["counters"]
            assert counters["serve.requests"] == 1
            histograms = service.metrics.to_dict()["histograms"]
            assert histograms["serve.latency.seconds"]["count"] == 1

        asyncio.run(scenario())

    def test_full_level_results_are_cached(self):
        async def scenario():
            service = make_service()
            result = await service.extract(FORM_HTML)
            assert result.degrade_level == "full"
            signature = service._signature(FORM_HTML, 0)
            assert service.cache.get(signature) is not None

        asyncio.run(scenario())

    def test_degraded_results_are_never_cached(self):
        async def scenario():
            service = make_service()
            html = heavy_form_html()
            result = await service.extract(html, deadline_seconds=0.005)
            assert result.degrade_level != "full"
            signature = service._signature(html, 0)
            assert service.cache.get(signature) is None
            counters = service.metrics.to_dict()["counters"]
            assert counters["serve.degraded"] == 1
            assert counters[f"degrade.{result.degrade_level}"] == 1

        asyncio.run(scenario())

    def test_form_index_is_part_of_the_cache_key(self):
        service = make_service()
        base = service._signature(FORM_HTML, 0)
        other = service._signature(FORM_HTML, 1)
        assert base != other
        assert other.endswith("|form=1")


class _CrashingPool:
    """A stand-in pool whose futures always die of BrokenProcessPool."""

    def __init__(self, recover_after: int | None = None):
        self.calls = 0
        self.closes = 0
        self.recover_after = recover_after

    def submit_custom(self, job_fn, item, timeout=None) -> Future:
        self.calls += 1
        future: Future = Future()
        if self.recover_after is not None and self.calls > self.recover_after:
            future.set_result(BatchRecord(index=0))
        else:
            future.set_exception(BrokenProcessPool("worker died"))
        return future

    def close(self) -> None:
        self.closes += 1


class TestPoolRecovery:
    def test_one_crash_restarts_the_pool_and_retries(self):
        async def scenario():
            service = make_service(cache=False)
            service._batch = _CrashingPool(recover_after=1)
            record = await service._dispatch("<form></form>", 0, 1.0)
            assert record.ok
            assert service._batch.calls == 2
            assert service._batch.closes == 1
            counters = service.metrics.to_dict()["counters"]
            assert counters["serve.pool_restarts"] == 1

        asyncio.run(scenario())

    def test_two_crashes_pin_the_payload_as_unavailable(self):
        async def scenario():
            service = make_service(cache=False)
            service._batch = _CrashingPool()
            with pytest.raises(ServiceUnavailable):
                await service._dispatch("<form></form>", 0, 1.0)
            assert service._batch.calls == 2
            counters = service.metrics.to_dict()["counters"]
            assert counters["serve.worker_crashes"] == 1

        asyncio.run(scenario())


class TestCacheGenerations:
    def test_signature_carries_the_generation_prefix(self):
        service = make_service()
        signature = service._signature(FORM_HTML, 0)
        assert signature.startswith(service.cache_generation + "|")

    def test_default_generation_is_the_grammar_fingerprint(self):
        service = make_service()
        assert service.cache_generation.startswith("g2p:")
        # Deterministic: two services agree, so a shared disk cache works.
        assert make_service().cache_generation == service.cache_generation

    def test_explicit_generation_overrides_the_fingerprint(self):
        service = make_service(cache_generation="v42")
        assert service.cache_generation == "v42"
        assert service._signature(FORM_HTML, 0).startswith("v42|")

    def test_bump_rekeys_every_cached_signature(self):
        async def scenario():
            service = make_service()
            first = await service.extract(FORM_HTML)
            assert not first.cached
            assert (await service.extract(FORM_HTML)).cached
            old, new = service.bump_cache_generation()
            assert old != new
            assert service._signature(FORM_HTML, 0).startswith(new + "|")
            miss = await service.extract(FORM_HTML)
            assert not miss.cached  # the old entry is unreachable
            counters = service.metrics.to_dict()["counters"]
            assert counters["serve.cache.invalidations"] == 1

        asyncio.run(scenario())

    def test_bump_leaves_the_disk_file_untouched(self, tmp_path):
        async def scenario():
            service = make_service(cache_dir=str(tmp_path))
            await service.extract(FORM_HTML)
            cache_file = tmp_path / "extraction-cache.jsonl"
            before = cache_file.read_bytes()
            service.bump_cache_generation()
            assert (await service.extract(FORM_HTML)).cached is False
            # Logical invalidation: old lines still on disk, just unreachable.
            assert before in cache_file.read_bytes()

        asyncio.run(scenario())


class TestBreakerIntegration:
    def test_crash_storm_trips_the_breaker_to_fast_503(self):
        async def scenario():
            service = make_service(
                cache=False, breaker_threshold=2, breaker_reset_seconds=60.0
            )
            service._batch = _CrashingPool()
            # One doomed request = 2 failures (restart + give-up): trips.
            with pytest.raises(ServiceUnavailable):
                await service.extract(FORM_HTML)
            assert service.breaker.state == "open"
            calls_before = service._batch.calls
            with pytest.raises(ServiceUnavailable) as excinfo:
                await service.extract(FORM_HTML)
            assert service._batch.calls == calls_before  # pool untouched
            assert excinfo.value.retry_after is not None
            counters = service.metrics.to_dict()["counters"]
            assert counters["serve.breaker.fast_fail"] == 1
            assert counters["serve.breaker.open"] == 1

        asyncio.run(scenario())

    def test_cache_hits_answer_while_the_breaker_is_open(self):
        async def scenario():
            service = make_service(breaker_threshold=1)
            await service.extract(FORM_HTML)  # fills the cache
            service.breaker.record_failure()
            assert service.breaker.state == "open"
            hit = await service.extract(FORM_HTML)
            assert hit.cached

        asyncio.run(scenario())


class TestFairnessIntegration:
    def test_greedy_client_sheds_while_others_are_admitted(self):
        async def scenario():
            service = make_service(
                cache=False, max_queue=10, client_max_inflight=1
            )
            release = asyncio.Event()

            async def parked(html, form_index, deadline):
                await release.wait()
                return BatchRecord(index=0)

            service._dispatch = parked  # type: ignore[method-assign]
            first = asyncio.create_task(
                service.extract("<form></form>", client="greedy")
            )
            await asyncio.sleep(0.01)
            with pytest.raises(ServiceSaturated):
                await service.extract("<form></form>", client="greedy")
            # The queue has room: another client is admitted immediately.
            other = asyncio.create_task(
                service.extract("<form></form>", client="polite")
            )
            await asyncio.sleep(0.01)
            assert service.queue_depth == 2
            release.set()
            assert (await first).ok and (await other).ok
            counters = service.metrics.to_dict()["counters"]
            assert counters["serve.fairness.shed"] == 1
            assert counters["serve.fairness.shed.slots"] == 1

        asyncio.run(scenario())

    def test_shed_requests_release_their_fairness_slots(self):
        async def scenario():
            service = make_service(
                cache=False, max_queue=1, client_max_inflight=5
            )
            release = asyncio.Event()

            async def parked(html, form_index, deadline):
                await release.wait()
                return BatchRecord(index=0)

            service._dispatch = parked  # type: ignore[method-assign]
            first = asyncio.create_task(
                service.extract("<form></form>", client="a")
            )
            await asyncio.sleep(0.01)
            # Shed by the *global* queue: the client slot must roll back.
            with pytest.raises(ServiceSaturated):
                await service.extract("<form></form>", client="b")
            assert service.fairness.snapshot().inflight == 1
            release.set()
            await first
            assert service.fairness.snapshot().inflight == 0

        asyncio.run(scenario())

    def test_anonymous_requests_bypass_the_gate(self):
        async def scenario():
            service = make_service(cache=False, client_max_inflight=1)

            async def instant(html, form_index, deadline):
                return BatchRecord(index=0)

            service._dispatch = instant  # type: ignore[method-assign]
            for _ in range(5):
                await service.extract("<form></form>", client=None)

        asyncio.run(scenario())

    def test_batch_counts_against_the_client_share(self):
        async def scenario():
            service = make_service(
                cache=False, max_queue=50, client_max_inflight=3
            )
            with pytest.raises(ServiceSaturated) as excinfo:
                await service.extract_batch(
                    ["<form></form>"] * 4, client="bulk"
                )
            assert "slots" in excinfo.value.detail or "concurrent" in (
                excinfo.value.detail
            )
            assert service.fairness.snapshot().inflight == 0

        asyncio.run(scenario())
