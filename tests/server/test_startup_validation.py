"""Startup grammar validation: fail fast before the service comes up.

``repro serve`` lints the serving grammar during
:class:`ExtractionService` construction -- before the worker pool forks
and before any port binds -- so a defective grammar is a one-line
refusal at boot, not a 500 on the first request.  ``--no-grammar-check``
(``validate_grammar=False``) opts out.
"""

from __future__ import annotations

import logging

import pytest

import repro.grammar.standard as standard_module
from repro.analysis import GrammarDiagnosticsError
from repro.grammar.dsl import GrammarBuilder
from repro.server import ServerConfig
from repro.server.service import ExtractionService


def _broken_grammar_builder(*_args, **_kwargs):
    # "Missing" is not declared anywhere: a G001 error.
    builder = GrammarBuilder("QI", name="broken")
    builder.terminals("text")
    builder.production("QI", ("Missing",))
    return builder


class TestStartupValidation:
    def test_default_config_validates(self):
        assert ServerConfig(port=0, jobs=1).validate_grammar is True

    def test_clean_grammar_boots_and_logs(self, caplog):
        with caplog.at_level(logging.INFO):
            ExtractionService(ServerConfig(port=0, jobs=1))
        assert "serve.grammar.validated" in caplog.text

    def test_defective_grammar_refuses_to_boot(self, monkeypatch):
        monkeypatch.setattr(
            standard_module,
            "build_standard_grammar",
            _broken_grammar_builder,
        )
        with pytest.raises(GrammarDiagnosticsError) as excinfo:
            ExtractionService(ServerConfig(port=0, jobs=1))
        assert "G001" in str(excinfo.value)
        assert "failed static analysis" in str(excinfo.value)

    def test_validation_runs_before_pool_construction(self, monkeypatch):
        # The fast-fail contract: with a defective grammar, construction
        # must stop before any pool/thread machinery spins up.
        from repro.server import service as service_module

        def unexpected_pool(*args, **kwargs):  # pragma: no cover
            raise AssertionError(
                "pool constructed despite a defective grammar"
            )

        monkeypatch.setattr(
            standard_module,
            "build_standard_grammar",
            _broken_grammar_builder,
        )
        monkeypatch.setattr(
            service_module, "WarmPool", unexpected_pool, raising=False
        )
        with pytest.raises(GrammarDiagnosticsError):
            ExtractionService(ServerConfig(port=0, jobs=1))

    def test_opt_out_skips_validation(self, monkeypatch):
        monkeypatch.setattr(
            standard_module,
            "build_standard_grammar",
            _broken_grammar_builder,
        )
        service = ExtractionService(
            ServerConfig(port=0, jobs=1, validate_grammar=False)
        )
        assert service is not None

    def test_opt_out_emits_no_validation_event(self, caplog):
        with caplog.at_level(logging.INFO):
            ExtractionService(
                ServerConfig(port=0, jobs=1, validate_grammar=False)
            )
        assert "serve.grammar.validated" not in caplog.text
