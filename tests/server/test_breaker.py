"""Unit tests of the worker-pool circuit breaker (injectable clock)."""

from __future__ import annotations

import pytest

from repro.server.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)


class _Clock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(clock, threshold=3, window=30.0, reset=5.0, transitions=None):
    return CircuitBreaker(
        threshold=threshold,
        window_seconds=window,
        reset_seconds=reset,
        clock=clock,
        on_transition=(
            (lambda old, new: transitions.append((old, new)))
            if transitions is not None
            else None
        ),
    )


class TestConfiguration:
    def test_bad_knobs_are_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(window_seconds=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_seconds=0)


class TestTrip:
    def test_trips_at_threshold(self):
        clock = _Clock()
        breaker = make_breaker(clock)
        for _ in range(2):
            breaker.record_failure()
            assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert not breaker.allow()

    def test_failures_outside_the_window_do_not_count(self):
        clock = _Clock()
        breaker = make_breaker(clock, threshold=3, window=10.0)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(11.0)  # both age out
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED

    def test_retry_after_tracks_the_cooldown(self):
        clock = _Clock()
        breaker = make_breaker(clock, threshold=1, reset=5.0)
        breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(5.0)
        clock.advance(3.0)
        assert breaker.retry_after() == pytest.approx(2.0)


class TestHalfOpen:
    def test_cooldown_admits_exactly_one_probe(self):
        clock = _Clock()
        breaker = make_breaker(clock, threshold=1, reset=5.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == STATE_HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # everyone else keeps fast-failing

    def test_probe_success_closes(self):
        clock = _Clock()
        transitions = []
        breaker = make_breaker(
            clock, threshold=1, reset=5.0, transitions=transitions
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()
        assert transitions == [
            (STATE_CLOSED, STATE_OPEN),
            (STATE_OPEN, STATE_HALF_OPEN),
            (STATE_HALF_OPEN, STATE_CLOSED),
        ]

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = _Clock()
        breaker = make_breaker(clock, threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        clock.advance(4.9)
        assert breaker.state == STATE_OPEN  # the cooldown restarted
        clock.advance(0.1)
        assert breaker.state == STATE_HALF_OPEN

    def test_abort_probe_frees_the_slot(self):
        clock = _Clock()
        breaker = make_breaker(clock, threshold=1, reset=5.0)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        # The probe request got shed before dispatch: without the
        # rollback the breaker would wait forever on it.
        breaker.abort_probe()
        assert breaker.allow()

    def test_success_after_close_prunes_history(self):
        clock = _Clock()
        breaker = make_breaker(clock, threshold=3, window=10.0)
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(11.0)
        breaker.record_success()  # prunes the aged-out failures
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED
