"""Unit tests of the per-client fairness gate (injectable clock)."""

from __future__ import annotations

import pytest

from repro.server.fairness import FairnessGate, FairnessLimited


class _Clock:
    """A hand-cranked monotonic clock."""

    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestConfiguration:
    def test_disabled_gate_admits_everything(self):
        gate = FairnessGate()
        assert not gate.enabled
        for _ in range(1000):
            gate.acquire("greedy")
        assert gate.snapshot().clients == 0

    def test_bad_knobs_are_rejected(self):
        with pytest.raises(ValueError):
            FairnessGate(max_inflight=0)
        with pytest.raises(ValueError):
            FairnessGate(rate=0)
        with pytest.raises(ValueError):
            FairnessGate(rate=1.0, burst=0)
        with pytest.raises(ValueError):
            FairnessGate(max_clients=0)


class TestConcurrentSlots:
    def test_cap_sheds_the_surplus_only(self):
        gate = FairnessGate(max_inflight=2)
        gate.acquire("a")
        gate.acquire("a")
        with pytest.raises(FairnessLimited) as excinfo:
            gate.acquire("a")
        assert excinfo.value.reason == "slots"
        # Another client is unaffected by a's saturation.
        gate.acquire("b")

    def test_release_frees_the_slot(self):
        gate = FairnessGate(max_inflight=1)
        gate.acquire("a")
        gate.release("a")
        gate.acquire("a")  # no raise

    def test_release_never_goes_negative(self):
        gate = FairnessGate(max_inflight=1)
        gate.release("ghost")
        gate.release("ghost")
        gate.acquire("ghost")
        with pytest.raises(FairnessLimited):
            gate.acquire("ghost")

    def test_batch_acquire_is_all_or_nothing(self):
        gate = FairnessGate(max_inflight=3)
        gate.acquire("a", count=2)
        with pytest.raises(FairnessLimited):
            gate.acquire("a", count=2)  # 2 held + 2 > 3
        # The failed batch consumed nothing: one more still fits.
        gate.acquire("a", count=1)


class TestTokenBucket:
    def test_burst_passes_then_rate_sheds(self):
        clock = _Clock()
        gate = FairnessGate(rate=1.0, burst=3.0, clock=clock)
        for _ in range(3):
            gate.acquire("a")
            gate.release("a")
        with pytest.raises(FairnessLimited) as excinfo:
            gate.acquire("a")
        assert excinfo.value.reason == "rate"

    def test_retry_after_is_the_token_shortfall(self):
        clock = _Clock()
        gate = FairnessGate(rate=2.0, burst=1.0, clock=clock)
        gate.acquire("a")
        gate.release("a")
        with pytest.raises(FairnessLimited) as excinfo:
            gate.acquire("a")
        # 1 token short at 2 tokens/s -> 0.5 s.
        assert excinfo.value.retry_after == pytest.approx(0.5)

    def test_tokens_refill_with_time(self):
        clock = _Clock()
        gate = FairnessGate(rate=1.0, burst=1.0, clock=clock)
        gate.acquire("a")
        gate.release("a")
        with pytest.raises(FairnessLimited):
            gate.acquire("a")
        clock.advance(1.0)
        gate.acquire("a")  # refilled

    def test_refill_caps_at_burst(self):
        clock = _Clock()
        gate = FairnessGate(rate=10.0, burst=2.0, clock=clock)
        clock.advance(3600.0)  # an hour idle does not bank 36k tokens
        gate.acquire("a", count=2)
        gate.release("a", count=2)
        with pytest.raises(FairnessLimited):
            gate.acquire("a")

    def test_rate_shed_does_not_consume_slots(self):
        clock = _Clock()
        gate = FairnessGate(max_inflight=5, rate=1.0, burst=1.0, clock=clock)
        gate.acquire("a")
        with pytest.raises(FairnessLimited):
            gate.acquire("a")
        assert gate.snapshot().inflight == 1


class TestEviction:
    def test_idle_clients_are_evicted_past_the_bound(self):
        clock = _Clock()
        gate = FairnessGate(max_inflight=2, max_clients=4, clock=clock)
        for index in range(4):
            gate.acquire(f"c{index}")
            gate.release(f"c{index}")
            clock.advance(1.0)
        assert gate.snapshot().clients == 4
        gate.acquire("c4")  # 5th client forces an eviction sweep
        assert gate.snapshot().clients <= 4

    def test_clients_holding_slots_are_never_evicted(self):
        clock = _Clock()
        gate = FairnessGate(max_inflight=2, max_clients=2, clock=clock)
        gate.acquire("busy")
        clock.advance(10.0)
        gate.acquire("other")
        gate.release("other")
        clock.advance(10.0)
        gate.acquire("third")
        # "busy" still holds its slot: its state must have survived.
        with pytest.raises(FairnessLimited):
            gate.acquire("busy", count=2)


class TestSnapshot:
    def test_snapshot_counts_sheds_by_kind(self):
        clock = _Clock()
        gate = FairnessGate(max_inflight=1, rate=1.0, burst=1.0, clock=clock)
        gate.acquire("a")
        with pytest.raises(FairnessLimited):
            gate.acquire("a")  # slots
        gate.release("a")
        with pytest.raises(FairnessLimited):
            gate.acquire("a")  # rate (bucket drained by the first acquire)
        snap = gate.snapshot().as_dict()
        assert snap["shed_slots"] == 1
        assert snap["shed_rate"] == 1
        assert snap["clients"] == 1
