"""End-to-end tests of the serving stack over real sockets.

Every test here talks to a live :class:`ExtractionServer` through plain
``http.client`` -- the request crosses HTTP framing, routing, admission
control, and the extraction pipeline exactly as production traffic
would.
"""

from __future__ import annotations

import json
import re
import threading
import time

import pytest

from repro.observability.prometheus import (
    PROMETHEUS_CONTENT_TYPE,
    parse_prometheus,
)
from tests.server.conftest import FORM_HTML, heavy_form_html

_REQUEST_ID = re.compile(r"^[0-9a-f]{6}-[0-9a-f]{6}(\.\d+)?$")


def _wait_until(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestHealthz:
    def test_reports_pool_and_queue_state(self, live_server):
        live = live_server()
        status, _, payload = live.get_json("/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["workers"] == 1
        assert payload["queue_depth"] == 0
        assert payload["max_queue"] == live.config.max_queue
        assert payload["cache"] is True


class TestExtract:
    def test_json_body_returns_model_and_request_id(self, live_server):
        live = live_server()
        status, _, payload = live.post_json("/extract", {"html": FORM_HTML})
        assert status == 200
        assert _REQUEST_ID.match(payload["request_id"])
        assert payload["error"] is None
        assert payload["degrade"]["level"] == "full"
        assert payload["cached"] is False
        assert payload["model"] is not None
        assert payload["elapsed_seconds"] > 0

    def test_raw_html_body_with_query_knobs(self, live_server):
        live = live_server()
        status, _, body = live.request(
            "POST",
            "/extract?form_index=0",
            body=FORM_HTML.encode("utf-8"),
            headers={"Content-Type": "text/html"},
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["model"] is not None
        assert payload["degrade"]["level"] == "full"

    def test_cache_hit_replays_without_reextracting(self, live_server):
        live = live_server()
        status, _, first = live.post_json("/extract", {"html": FORM_HTML})
        assert status == 200 and first["cached"] is False
        status, _, second = live.post_json("/extract", {"html": FORM_HTML})
        assert status == 200 and second["cached"] is True
        assert second["model"] == first["model"]
        counters = live.metrics.to_dict()["counters"]
        assert counters["serve.cache.hits"] == 1
        # A hit never touches the extraction pipeline again: exactly one
        # html-parse span was ever recorded.
        assert counters["serve.requests"] == 2

    def test_concurrent_extracts_all_succeed(self, live_server):
        live = live_server()
        outcomes: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def post(index: int) -> None:
            html = FORM_HTML.replace("name=\"author\"", f'name="author{index}"')
            status, _, payload = live.post_json("/extract", {"html": html})
            with lock:
                outcomes.append((status, payload))

        threads = [
            threading.Thread(target=post, args=(index,)) for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert len(outcomes) == 8
        assert all(status == 200 for status, _ in outcomes)
        ids = {payload["request_id"] for _, payload in outcomes}
        assert len(ids) == 8  # every request got its own id
        counters = live.metrics.to_dict()["counters"]
        assert counters["serve.requests"] == 8

    def test_tight_deadline_degrades_but_still_200(self, live_server):
        live = live_server()
        status, _, payload = live.post_json(
            "/extract",
            {"html": heavy_form_html(), "deadline_seconds": 0.005},
        )
        assert status == 200
        assert payload["error"] is None
        assert payload["degrade"]["level"] != "full"
        assert payload["model"] is not None  # best-effort, never empty-handed
        counters = live.metrics.to_dict()["counters"]
        assert counters["serve.degraded"] >= 1
        # Degraded results are never cached: the same payload re-runs.
        status, _, again = live.post_json(
            "/extract",
            {"html": heavy_form_html(), "deadline_seconds": 0.005},
        )
        assert status == 200 and again["cached"] is False

    def test_form_index_out_of_range_is_client_error(self, live_server):
        live = live_server()
        status, _, payload = live.post_json(
            "/extract", {"html": FORM_HTML, "form_index": 5}
        )
        assert status == 404
        assert "FormNotFoundError" in payload["error"]


class TestSaturation:
    def test_queue_overflow_sheds_with_429_and_retry_after(self, live_server):
        live = live_server(max_queue=2, cache=False)
        # Park the single worker thread so admitted requests stay queued.
        blocker = live.service._thread.submit(time.sleep, 1.5)
        results: list[int] = []
        lock = threading.Lock()

        def post(index: int) -> None:
            html = FORM_HTML.replace("/search", f"/search{index}")
            status, _, _ = live.post_json("/extract", {"html": html})
            with lock:
                results.append(status)

        threads = [
            threading.Thread(target=post, args=(index,)) for index in range(2)
        ]
        for thread in threads:
            thread.start()
        assert _wait_until(lambda: live.service.queue_depth == 2)
        status, headers, payload = live.post_json(
            "/extract", {"html": FORM_HTML}
        )
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert "request_id" in payload
        blocker.result(timeout=10)
        for thread in threads:
            thread.join(timeout=120)
        assert results == [200, 200]
        samples = parse_prometheus(
            live.request("GET", "/metrics")[2].decode()
        )
        assert samples["repro_serve_shed_total"] >= 1
        assert samples["repro_serve_http_429_total"] >= 1

    def test_batch_is_admitted_or_shed_atomically(self, live_server):
        live = live_server(max_queue=2, cache=False)
        status, _, payload = live.post_json(
            "/batch", {"items": [FORM_HTML] * 3}
        )
        assert status == 429
        assert live.service.queue_depth == 0  # nothing half-admitted
        assert "max_queue" in payload["error"]

    def test_batch_size_ceiling(self, live_server):
        live = live_server(max_batch_items=2, max_queue=64)
        status, _, payload = live.post_json(
            "/batch", {"items": ["<form></form>"] * 3}
        )
        assert status == 429
        assert "max_batch_items" in payload["error"]


class TestBatch:
    def test_records_come_back_in_input_order(self, live_server):
        live = live_server(cache=False)
        items = [FORM_HTML, "<html><body><p>no form here</p></body></html>"]
        status, _, payload = live.post_json("/batch", {"items": items})
        assert status == 200
        assert payload["count"] == 2
        assert [record["index"] for record in payload["records"]] == [0, 1]
        assert payload["records"][0]["model"] is not None
        # The no-form page goes through the whole-page fallback: still a
        # record, not an HTTP error.
        assert payload["records"][1]["error"] is None

    def test_batch_shares_the_cache_with_singles(self, live_server):
        live = live_server()
        live.post_json("/extract", {"html": FORM_HTML})
        status, _, payload = live.post_json(
            "/batch", {"items": [FORM_HTML]}
        )
        assert status == 200
        assert payload["records"][0]["cached"] is True


class TestMetricsEndpoint:
    def test_prometheus_text_parses_and_counts_requests(self, live_server):
        live = live_server()
        live.post_json("/extract", {"html": FORM_HTML})
        status, headers, body = live.request("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        samples = parse_prometheus(body.decode("utf-8"))
        assert samples["repro_serve_requests_total"] == 1
        assert samples["repro_serve_latency_seconds_count"] == 1
        assert samples["repro_serve_http_200_total"] >= 1


class TestProtocolEdges:
    def test_unknown_route_is_404(self, live_server):
        live = live_server()
        status, _, payload = live.get_json("/nope")
        assert status == 404 and "request_id" in payload

    def test_wrong_method_is_405(self, live_server):
        live = live_server()
        status, _, _ = live.request("GET", "/extract")
        assert status == 405

    def test_malformed_json_is_400(self, live_server):
        live = live_server()
        status, _, body = live.request(
            "POST",
            "/extract",
            body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert "JSON" in json.loads(body)["error"]

    def test_oversized_body_is_413(self, live_server):
        live = live_server(max_body_bytes=512)
        status, _, _ = live.request(
            "POST",
            "/extract",
            body=b"x" * 2048,
            headers={"Content-Type": "text/html"},
        )
        assert status == 413


class TestGracefulShutdown:
    def test_inflight_request_completes_before_close(self, live_server):
        live = live_server(cache=False)
        outcome: dict = {}

        def post() -> None:
            status, _, payload = live.post_json(
                "/extract", {"html": heavy_form_html()}, timeout=120
            )
            outcome["status"] = status
            outcome["payload"] = payload

        thread = threading.Thread(target=post)
        thread.start()
        assert _wait_until(lambda: live.service.queue_depth == 1)
        drained = live.stop()
        thread.join(timeout=120)
        assert drained is True
        assert outcome["status"] == 200
        assert outcome["payload"]["model"] is not None
        with pytest.raises(OSError):
            live.request("GET", "/healthz", timeout=2)


class TestPooledMode:
    def test_extract_and_batch_on_the_fork_warmed_pool(self, live_server):
        live = live_server(jobs=2, cache=False)
        assert live.service.workers == 2
        status, _, payload = live.post_json(
            "/extract", {"html": FORM_HTML}, timeout=120
        )
        assert status == 200
        assert payload["degrade"]["level"] == "full"
        status, _, payload = live.post_json(
            "/batch", {"items": [FORM_HTML, FORM_HTML]}, timeout=120
        )
        assert status == 200
        assert all(
            record["error"] is None for record in payload["records"]
        )


class TestHealthEndpoints:
    def test_livez_is_alive_and_readyz_is_ok(self, live_server):
        live = live_server()
        status, _, payload = live.get_json("/livez")
        assert status == 200
        assert payload["status"] == "alive"
        status, _, payload = live.get_json("/readyz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["breaker"] == "closed"
        assert payload["draining"] is False
        assert payload["cache_generation"].startswith("g2p:")
        assert payload["fairness"]["clients"] == 0

    def test_readyz_is_503_while_draining_but_livez_stays_200(
        self, live_server
    ):
        live = live_server()

        async def set_draining(value: bool) -> None:
            live.service._draining = value

        live.submit(set_draining(True)).result(timeout=10)
        try:
            status, _, payload = live.get_json("/readyz")
            assert status == 503
            assert payload["status"] == "draining"
            status, _, payload = live.get_json("/livez")
            assert status == 200
            assert payload["status"] == "alive"
        finally:
            live.submit(set_draining(False)).result(timeout=10)

    def test_readyz_is_503_with_the_breaker_open(self, live_server):
        live = live_server(breaker_threshold=1, breaker_reset_seconds=60.0)

        async def trip() -> None:
            live.service.breaker.record_failure()

        live.submit(trip()).result(timeout=10)
        status, _, payload = live.get_json("/readyz")
        assert status == 503
        assert payload["status"] == "breaker-open"
        assert payload["breaker"] == "open"
        # Liveness is not the breaker's business.
        assert live.get_json("/livez")[0] == 200


class TestCacheInvalidation:
    def test_delete_cache_makes_cached_signatures_miss(self, live_server):
        live = live_server()
        assert live.post_json("/extract", {"html": FORM_HTML})[2][
            "cached"
        ] is False
        assert live.post_json("/extract", {"html": FORM_HTML})[2][
            "cached"
        ] is True
        status, _, payload = live.request("DELETE", "/cache")
        body = json.loads(payload)
        assert status == 200
        assert body["invalidated"] is True
        assert body["generation"] != body["previous_generation"]
        # The very same document misses now: its old key is unreachable.
        assert live.post_json("/extract", {"html": FORM_HTML})[2][
            "cached"
        ] is False
        status, _, payload = live.get_json("/healthz")
        assert payload["cache_generation"] == body["generation"]

    def test_delete_cache_leaves_the_disk_file_untouched(
        self, live_server, tmp_path
    ):
        live = live_server(cache_dir=str(tmp_path))
        live.post_json("/extract", {"html": FORM_HTML})
        cache_file = tmp_path / "extraction-cache.jsonl"
        before = cache_file.read_bytes()
        assert live.request("DELETE", "/cache")[0] == 200
        assert cache_file.read_bytes() == before

    def test_delete_cache_is_404_when_caching_is_off(self, live_server):
        live = live_server(cache=False)
        status, _, _ = live.request("DELETE", "/cache")
        assert status == 404


class TestFairnessE2E:
    def test_greedy_client_sheds_while_the_polite_one_completes(
        self, live_server
    ):
        live = live_server(client_max_inflight=2, max_queue=8, cache=False)
        # Park the single worker so admitted requests stay in the queue:
        # admission decisions are then fully deterministic.
        blocker = live.service._thread.submit(time.sleep, 1.5)
        results: list[int] = []
        lock = threading.Lock()

        def greedy_post(index: int) -> None:
            html = FORM_HTML.replace("/search", f"/greedy{index}")
            status, _, _ = live.request(
                "POST",
                "/extract",
                body=json.dumps({"html": html}).encode(),
                headers={
                    "Content-Type": "application/json",
                    "X-Client-Id": "greedy",
                },
            )
            with lock:
                results.append(status)

        threads = [
            threading.Thread(target=greedy_post, args=(index,))
            for index in range(8)
        ]
        for thread in threads:
            thread.start()
        # All 8 decisions resolve immediately: 2 slots admit, 6 shed 429.
        assert _wait_until(
            lambda: len([s for s in results if s == 429]) == 6, timeout=10
        )
        assert live.service.queue_depth == 2
        # The polite client is untouched by greedy's saturation and its
        # request completes well inside the deadline.
        started = time.perf_counter()
        status, _, payload = live.request(
            "POST",
            "/extract",
            body=json.dumps({"html": FORM_HTML}).encode(),
            headers={
                "Content-Type": "application/json",
                "X-Client-Id": "polite",
            },
            timeout=120,
        )
        assert status == 200
        assert time.perf_counter() - started < 60
        blocker.result(timeout=10)
        for thread in threads:
            thread.join(timeout=120)
        assert sorted(results) == [200, 200, 429, 429, 429, 429, 429, 429]
        samples = parse_prometheus(
            live.request("GET", "/metrics")[2].decode()
        )
        assert samples["repro_serve_fairness_shed_total"] == 6
        assert samples["repro_serve_fairness_shed_slots_total"] == 6

    def test_rate_limited_client_gets_retry_after(self, live_server):
        live = live_server(client_rate=0.001, client_burst=1.0)
        headers = {
            "Content-Type": "application/json",
            "X-Client-Id": "chatty",
        }
        body = json.dumps({"html": FORM_HTML}).encode()
        assert live.request("POST", "/extract", body=body, headers=headers)[
            0
        ] == 200
        # Token spent; at 0.001/s the refill is far away: shed with the
        # real shortfall as Retry-After.
        html2 = FORM_HTML.replace("/search", "/other")
        status, response_headers, _ = live.request(
            "POST",
            "/extract",
            body=json.dumps({"html": html2}).encode(),
            headers=headers,
        )
        assert status == 429
        assert int(response_headers["Retry-After"]) >= 60


class TestDrainWithParkedConnections:
    def test_drain_completes_with_an_idle_keep_alive_connection(
        self, live_server
    ):
        import socket

        live = live_server()
        sock = socket.create_connection(("127.0.0.1", live.port), timeout=10)
        try:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            first = sock.recv(65536)
            assert first.startswith(b"HTTP/1.1 200")
            # The connection now sits idle in keep-alive, parked on the
            # server's request-line read.  Drain must not wait for it.
            started = time.perf_counter()
            assert live.stop() is True
            assert time.perf_counter() - started < live.config.drain_seconds
            # The parked connection is closed out, not leaked.
            sock.settimeout(10)
            rest = sock.recv(65536)
            assert rest == b""
        finally:
            sock.close()

    def test_drain_completes_with_a_half_sent_request_in_flight(
        self, live_server
    ):
        import socket

        live = live_server()
        sock = socket.create_connection(("127.0.0.1", live.port), timeout=10)
        try:
            # Half a request head, then silence: the server is mid-read.
            sock.sendall(b"POST /extract HTTP/1.1\r\nContent-Le")
            time.sleep(0.1)
            started = time.perf_counter()
            assert live.stop() is True
            assert time.perf_counter() - started < live.config.drain_seconds
            sock.settimeout(10)
            # Whatever arrives (nothing or an error response), the
            # connection must reach EOF -- no wedge, no leak.
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
        finally:
            sock.close()
