"""Unit tests of the asyncio HTTP/1.1 transport layer."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.server.http import (
    HttpProtocolError,
    HttpServer,
    Request,
    Response,
    encode_response,
)


async def _echo_handler(request: Request) -> Response:
    return Response.json(
        {
            "method": request.method,
            "path": request.path,
            "query": request.query,
            "body": request.text(),
        }
    )


async def _read_one_response(reader: asyncio.StreamReader) -> tuple[int, dict, bytes]:
    """Parse one framed response off the stream."""
    head = await asyncio.wait_for(reader.readuntil(b"\r\n\r\n"), timeout=5)
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        if ":" in line:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
    body = await asyncio.wait_for(
        reader.readexactly(int(headers.get("content-length", 0))), timeout=5
    )
    return status, headers, body


class _Client:
    """A raw-socket client against a transient HttpServer."""

    def __init__(
        self, handler=_echo_handler, max_body_bytes: int = 4096, **server_kwargs
    ):
        self.server = HttpServer(
            handler, port=0, max_body_bytes=max_body_bytes, **server_kwargs
        )

    async def __aenter__(self):
        port = await self.server.start()
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", port
        )
        return self

    async def __aexit__(self, *exc):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        await self.server.stop()

    async def send(self, raw: bytes) -> tuple[int, dict, bytes]:
        self.writer.write(raw)
        await self.writer.drain()
        return await _read_one_response(self.reader)

    async def at_eof(self) -> bool:
        extra = await asyncio.wait_for(self.reader.read(1), timeout=5)
        return extra == b""


class TestRequestParsing:
    def test_get_with_query_reaches_handler(self):
        async def scenario():
            async with _Client() as client:
                status, _, body = await client.send(
                    b"GET /extract?form_index=2 HTTP/1.1\r\n"
                    b"Host: x\r\nConnection: close\r\n\r\n"
                )
                payload = json.loads(body)
                assert status == 200
                assert payload["method"] == "GET"
                assert payload["path"] == "/extract"
                assert payload["query"] == {"form_index": "2"}

        asyncio.run(scenario())

    def test_post_body_delivered_by_content_length(self):
        async def scenario():
            async with _Client() as client:
                status, _, body = await client.send(
                    b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n"
                    b"Connection: close\r\n\r\nhello"
                )
                assert status == 200
                assert json.loads(body)["body"] == "hello"

        asyncio.run(scenario())

    def test_keep_alive_serves_multiple_requests(self):
        async def scenario():
            async with _Client() as client:
                for _ in range(3):
                    status, headers, _ = await client.send(
                        b"GET /ping HTTP/1.1\r\nHost: x\r\n\r\n"
                    )
                    assert status == 200
                    assert headers["connection"] == "keep-alive"

        asyncio.run(scenario())

    def test_connection_close_is_honoured(self):
        async def scenario():
            async with _Client() as client:
                _, headers, _ = await client.send(
                    b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
                assert headers["connection"] == "close"
                assert await client.at_eof()

        asyncio.run(scenario())


class TestProtocolErrors:
    def test_malformed_request_line_is_400(self):
        async def scenario():
            async with _Client() as client:
                status, _, _ = await client.send(b"NONSENSE\r\n\r\n")
                assert status == 400
                assert await client.at_eof()

        asyncio.run(scenario())

    def test_transfer_encoding_is_501(self):
        async def scenario():
            async with _Client() as client:
                status, _, body = await client.send(
                    b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                )
                assert status == 501
                assert "transfer-encoding" in json.loads(body)["error"]

        asyncio.run(scenario())

    def test_oversized_content_length_is_413_before_reading(self):
        async def scenario():
            async with _Client(max_body_bytes=64) as client:
                status, _, _ = await client.send(
                    b"POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"
                )
                assert status == 413

        asyncio.run(scenario())

    def test_negative_content_length_is_400(self):
        async def scenario():
            async with _Client() as client:
                status, _, _ = await client.send(
                    b"POST /x HTTP/1.1\r\nContent-Length: -4\r\n\r\n"
                )
                assert status == 400

        asyncio.run(scenario())


class TestOversizedHead:
    def test_oversized_header_line_is_431_not_a_crash(self):
        """Regression: a single huge header line must get a handled 431."""
        async def scenario():
            async with _Client() as client:
                # Past the 64 KiB stream buffer (-> LimitOverrunError)
                # but below the reader's pause threshold, so the server
                # ingests it all and its close is a clean FIN, not an RST.
                status, _, body = await client.send(
                    b"GET / HTTP/1.1\r\nX-Bloat: " + b"a" * 70_000 + b"\r\n\r\n"
                )
                assert status == 431
                assert "header line" in json.loads(body)["error"]
                assert await client.at_eof()

        asyncio.run(scenario())

    def test_many_header_bytes_is_431(self):
        async def scenario():
            async with _Client() as client:
                bloat = b"".join(
                    b"X-Pad-%d: %s\r\n" % (index, b"v" * 1000)
                    for index in range(40)
                )
                status, _, body = await client.send(
                    b"GET / HTTP/1.1\r\n" + bloat + b"\r\n"
                )
                assert status == 431
                assert "headers too large" in json.loads(body)["error"]

        asyncio.run(scenario())

    def test_oversized_request_line_is_414(self):
        async def scenario():
            async with _Client() as client:
                status, _, _ = await client.send(
                    b"GET /" + b"q" * 70_000 + b" HTTP/1.1\r\n\r\n"
                )
                assert status == 414
                assert await client.at_eof()

        asyncio.run(scenario())


class TestSlowClientDefenses:
    def test_idle_keep_alive_is_closed_silently(self):
        """An idle peer is cut off with no response bytes at all."""
        async def scenario():
            async with _Client(idle_timeout_seconds=0.2) as client:
                # Never send anything: the idle timer must close us.
                data = await asyncio.wait_for(client.reader.read(), timeout=5)
                assert data == b""
                assert client.server.open_connections == 0

        asyncio.run(scenario())

    def test_trickled_header_times_out_with_408(self):
        async def scenario():
            async with _Client(header_timeout_seconds=0.2) as client:
                client.writer.write(b"GET / HTTP/1.1\r\nX-Slow: dri")
                await client.writer.drain()
                # ... and go silent mid-head: the header budget expires.
                status, _, body = await _read_one_response(client.reader)
                assert status == 408
                assert "header" in json.loads(body)["error"]
                assert await client.at_eof()

        asyncio.run(scenario())

    def test_stalled_body_times_out_with_408(self):
        async def scenario():
            async with _Client(body_timeout_seconds=0.2) as client:
                client.writer.write(
                    b"POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\npart"
                )
                await client.writer.drain()
                status, _, body = await _read_one_response(client.reader)
                assert status == 408
                assert "body" in json.loads(body)["error"]

        asyncio.run(scenario())

    def test_timeout_metrics_are_counted(self):
        counts: dict[str, float] = {}

        async def scenario():
            async with _Client(header_timeout_seconds=0.2) as client:
                client.server.metric_hook = (
                    lambda name, amount: counts.__setitem__(
                        name, counts.get(name, 0) + amount
                    )
                )
                client.writer.write(b"GET / HTTP/1.1\r\nX-")
                await client.writer.drain()
                await _read_one_response(client.reader)

        asyncio.run(scenario())
        assert counts.get("serve.timeout.header") == 1

    def test_connection_ceiling_sheds_with_503(self):
        async def scenario():
            async with _Client(max_connections=1) as client:
                # The _Client connection holds the single slot; the next
                # socket must get a fast 503 and a close.
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", client.server.port
                )
                try:
                    status, headers, body = await _read_one_response(reader)
                    assert status == 503
                    assert headers["connection"] == "close"
                    assert "connection limit" in json.loads(body)["error"]
                    assert await asyncio.wait_for(reader.read(1), timeout=5) == b""
                finally:
                    writer.close()
                # The surviving connection still works.
                status, _, _ = await client.send(
                    b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
                assert status == 200

        asyncio.run(scenario())

    def test_fast_clients_are_untouched_by_timeouts(self):
        async def scenario():
            async with _Client(
                idle_timeout_seconds=5.0,
                header_timeout_seconds=5.0,
                body_timeout_seconds=5.0,
            ) as client:
                for _ in range(3):
                    status, _, _ = await client.send(
                        b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nok"
                    )
                    assert status == 200

        asyncio.run(scenario())


class TestHandlerFailure:
    def test_handler_exception_becomes_500_and_closes(self):
        async def boom(_request: Request) -> Response:
            raise ValueError("kaput")

        async def scenario():
            async with _Client(handler=boom) as client:
                status, headers, body = await client.send(
                    b"GET / HTTP/1.1\r\n\r\n"
                )
                assert status == 500
                assert headers["connection"] == "close"
                assert "kaput" in json.loads(body)["error"]

        asyncio.run(scenario())

    def test_handler_protocol_error_uses_its_status(self):
        async def refuse(_request: Request) -> Response:
            raise HttpProtocolError(405, "not here")

        async def scenario():
            async with _Client(handler=refuse) as client:
                status, _, _ = await client.send(b"GET / HTTP/1.1\r\n\r\n")
                assert status == 405

        asyncio.run(scenario())


class TestMessageObjects:
    def test_request_json_raises_protocol_error_on_rot(self):
        request = Request(method="POST", path="/x", body=b"{nope")
        with pytest.raises(HttpProtocolError) as excinfo:
            request.json()
        assert excinfo.value.status == 400

    def test_encode_response_frames_body(self):
        raw = encode_response(Response.json({"a": 1}), keep_alive=True)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: " + str(len(body)).encode() in head
        assert json.loads(body) == {"a": 1}
