"""Tests and properties for the spatial relations."""

from hypothesis import given
from hypothesis import strategies as st

from repro.layout.box import BBox
from repro.spatial.relations import (
    SpatialConfig,
    above,
    below,
    bottom_aligned,
    horizontally_adjacent,
    left_aligned,
    left_of,
    right_of,
    same_column,
    same_row,
    top_aligned,
    vertically_adjacent,
)

# A text-like box and a field-like box on one row.
LABEL = BBox(10, 60, 10, 29)
FIELD = BBox(70, 220, 10, 32)
FIELD_BELOW = BBox(10, 160, 35, 57)
FAR_RIGHT = BBox(600, 700, 10, 29)
FAR_DOWN = BBox(10, 60, 300, 319)


class TestRowColumn:
    def test_same_row_true(self):
        assert same_row(LABEL, FIELD)

    def test_same_row_false_for_stacked(self):
        assert not same_row(LABEL, FAR_DOWN)

    def test_same_row_partial_overlap(self):
        a = BBox(0, 10, 0, 20)
        b = BBox(20, 30, 12, 32)  # overlap 8 < 0.5 * 20
        assert not same_row(a, b)

    def test_same_column_true(self):
        assert same_column(LABEL, FIELD_BELOW)

    def test_same_column_false(self):
        assert not same_column(LABEL, BBox(500, 600, 35, 57))

    def test_zero_height_boxes(self):
        flat = BBox(0, 10, 5, 5)
        assert same_row(flat, BBox(12, 20, 5, 5))


class TestLeftRight:
    def test_left_of_adjacent(self):
        assert left_of(LABEL, FIELD)

    def test_right_of_mirror(self):
        assert right_of(FIELD, LABEL)

    def test_left_of_requires_order(self):
        assert not left_of(FIELD, LABEL)

    def test_left_of_rejects_distant(self):
        assert not left_of(LABEL, FAR_RIGHT)

    def test_left_of_rejects_different_rows(self):
        assert not left_of(LABEL, BBox(70, 220, 100, 122))

    def test_slight_overlap_tolerated(self):
        overlapping = BBox(10, 72, 10, 29)  # 2px into the field
        assert left_of(overlapping, FIELD)

    def test_custom_config_tightens(self):
        tight = SpatialConfig(max_horizontal_gap=5.0)
        assert not left_of(LABEL, FIELD, tight)  # gap is 10


class TestAboveBelow:
    def test_above_adjacent(self):
        assert above(LABEL, FIELD_BELOW)

    def test_below_mirror(self):
        assert below(FIELD_BELOW, LABEL)

    def test_above_rejects_distant(self):
        assert not above(LABEL, FAR_DOWN)

    def test_above_requires_column(self):
        shifted = BBox(500, 600, 35, 57)
        assert not above(LABEL, shifted)

    def test_custom_vertical_gap(self):
        tight = SpatialConfig(max_vertical_gap=2.0)
        assert not above(LABEL, FIELD_BELOW, tight)  # gap is 6


class TestAlignment:
    def test_left_aligned(self):
        assert left_aligned(LABEL, FIELD_BELOW)
        assert not left_aligned(LABEL, FIELD)

    def test_top_aligned(self):
        assert top_aligned(LABEL, FIELD)

    def test_bottom_aligned(self):
        a = BBox(0, 10, 0, 20)
        b = BBox(20, 30, 5, 21)
        assert bottom_aligned(a, b)

    def test_adjacency_helpers(self):
        assert horizontally_adjacent(FIELD, LABEL)
        assert vertically_adjacent(FIELD_BELOW, LABEL)


def reasonable_boxes():
    coord = st.floats(min_value=0, max_value=800, allow_nan=False)
    size = st.floats(min_value=1, max_value=200, allow_nan=False)
    return st.builds(
        lambda x, y, w, h: BBox(x, x + w, y, y + h), coord, coord, size, size
    )


class TestProperties:
    @given(reasonable_boxes(), reasonable_boxes())
    def test_left_of_antisymmetric(self, a, b):
        if left_of(a, b):
            assert not left_of(b, a)

    @given(reasonable_boxes(), reasonable_boxes())
    def test_above_antisymmetric(self, a, b):
        if above(a, b):
            assert not above(b, a)

    @given(reasonable_boxes(), reasonable_boxes())
    def test_below_is_above_swapped(self, a, b):
        assert below(a, b) == above(b, a)

    @given(reasonable_boxes(), reasonable_boxes())
    def test_same_row_symmetric(self, a, b):
        assert same_row(a, b) == same_row(b, a)

    @given(reasonable_boxes(), reasonable_boxes())
    def test_same_column_symmetric(self, a, b):
        assert same_column(a, b) == same_column(b, a)

    @given(reasonable_boxes())
    def test_box_same_row_with_itself(self, box):
        assert same_row(box, box)
        assert same_column(box, box)

    @given(reasonable_boxes())
    def test_box_not_beside_itself(self, box):
        assert not left_of(box, box)
        assert not above(box, box)

    @given(reasonable_boxes(), reasonable_boxes())
    def test_left_of_implies_row_overlap(self, a, b):
        if left_of(a, b):
            assert same_row(a, b)

    @given(
        reasonable_boxes(),
        st.floats(min_value=0, max_value=100, allow_nan=False),
    )
    def test_translation_invariance(self, box, dx):
        partner = box.translate(box.width + 5, 0)
        assert left_of(box, partner) == left_of(
            box.translate(dx, dx), partner.translate(dx, dx)
        )
