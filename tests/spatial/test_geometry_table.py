"""GeometryTable vs the scalar predicates: one oracle, two kernels.

The columnar :class:`GeometryTable` is the vector kernel's only geometry
primitive, so its contract is checked directly here, independent of any
grammar: ``select`` must equal a plain pool scan through ``h_allows`` /
``v_allows`` (same IEEE comparisons, same pool order), and the batched
``select_rows`` must equal ``select`` called once per anchor.  The same
oracle is pointed at :class:`BandIndex.near`, and the kernel-resolution
rules (``auto``/``vector``/``scalar`` with and without numpy) are pinned
down by forcing the module's numpy probe.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar.instance import Instance
from repro.layout.box import BBox
from repro.parser import spatial_index
from repro.parser.spatial_index import (
    BandIndex,
    GeometryTable,
    h_allows,
    numpy_available,
    resolve_kernel,
    v_allows,
)

requires_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="GeometryTable needs numpy (pip install 'repro[fast]')",
)

# Coordinates drawn from a small grid so boundary-equality cases (gap or
# displacement exactly equal to a spec edge) occur often instead of never.
_COORDS = st.integers(min_value=0, max_value=12).map(lambda n: n * 8.0)
_EDGES = st.sampled_from(
    (None, -24.0, -8.0, -4.0, 0.0, 4.0, 8.0, 24.0, 64.0)
)


@st.composite
def boxes(draw):
    left = draw(_COORDS)
    top = draw(_COORDS)
    width = draw(st.sampled_from((8.0, 24.0, 96.0)))
    height = draw(st.sampled_from((8.0, 16.0, 24.0)))
    return BBox(left, left + width, top, top + height)


@st.composite
def axis_specs(draw):
    """None, a signed (lo, hi) displacement band, or a proximity radius."""
    kind = draw(st.sampled_from(("none", "band", "proximity")))
    if kind == "none":
        return None
    if kind == "proximity":
        return draw(st.sampled_from((0.0, 4.0, 16.0, 48.0)))
    return (draw(_EDGES), draw(_EDGES))


@st.composite
def pools(draw):
    count = draw(st.integers(min_value=0, max_value=12))
    return [Instance("Sym", draw(boxes())) for _ in range(count)]


def _oracle(pool, checks, combo):
    """The scalar definition of ``select``: a filtered pool scan."""
    selected = []
    for instance in pool:
        ok = True
        for anchor_position, h_spec, v_spec in checks:
            anchor = combo[anchor_position].bbox
            if not (
                h_allows(h_spec, anchor, instance.bbox)
                and v_allows(v_spec, anchor, instance.bbox)
            ):
                ok = False
                break
        if ok:
            selected.append(instance)
    return selected


@requires_numpy
class TestGeometryTable:
    @given(pools(), boxes(), axis_specs(), axis_specs())
    @settings(max_examples=120, deadline=None)
    def test_select_matches_scalar_oracle(self, pool, anchor_box, h, v):
        table = GeometryTable(pool)
        anchor = Instance("Anchor", anchor_box)
        checks = ((0, h, v),)
        assert table.select(checks, (anchor,)) == _oracle(
            pool, checks, (anchor,)
        )

    @given(pools(), boxes(), boxes(), axis_specs(), axis_specs(),
           axis_specs())
    @settings(max_examples=80, deadline=None)
    def test_select_conjoins_multiple_checks(
        self, pool, box_a, box_b, h1, v1, h2
    ):
        """Two checks against two different anchors AND together."""
        table = GeometryTable(pool)
        combo = (Instance("A", box_a), Instance("B", box_b))
        checks = ((0, h1, v1), (1, h2, None))
        assert table.select(checks, combo) == _oracle(pool, checks, combo)

    @given(pools(), st.lists(boxes(), min_size=0, max_size=6),
           axis_specs(), axis_specs())
    @settings(max_examples=80, deadline=None)
    def test_select_rows_matches_per_anchor_select(
        self, pool, anchor_boxes, h, v
    ):
        """``select_rows`` is exactly ``select`` mapped over the anchors."""
        table = GeometryTable(pool)
        anchors = [Instance("Anchor", box) for box in anchor_boxes]
        checks = ((0, h, v),)
        batched = table.select_rows(checks, anchors)
        assert len(batched) == len(anchors)
        for anchor, selected in zip(anchors, batched):
            assert selected == table.select(checks, (anchor,))

    @given(pools())
    @settings(max_examples=20, deadline=None)
    def test_unconstrained_select_returns_whole_pool(self, pool):
        table = GeometryTable(pool)
        anchor = Instance("Anchor", BBox(0.0, 10.0, 0.0, 10.0))
        assert table.select(((0, None, None),), (anchor,)) == pool
        assert len(table) == len(pool)


@given(pools(), boxes(), axis_specs(), axis_specs())
@settings(max_examples=120, deadline=None)
def test_band_index_near_matches_oracle(pool, box, h, v):
    """The scalar kernel's windowed scan equals the unwindowed scan."""
    index = BandIndex(pool)
    expected = [
        instance
        for instance in pool
        if h_allows(h, box, instance.bbox) and v_allows(v, box, instance.bbox)
    ]
    assert index.near(box, h, v) == expected


class TestKernelResolution:
    def test_known_modes(self):
        assert resolve_kernel("scalar") == "scalar"
        expected = "vector" if numpy_available() else "scalar"
        assert resolve_kernel("auto") == expected

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("simd")

    def test_without_numpy(self, monkeypatch):
        """Force the probe to 'numpy absent' and pin the fallback rules."""
        monkeypatch.setattr(spatial_index, "_NUMPY", None)
        monkeypatch.setattr(spatial_index, "_NUMPY_PROBED", True)
        assert not numpy_available()
        assert resolve_kernel("auto") == "scalar"
        assert resolve_kernel("scalar") == "scalar"
        with pytest.raises(RuntimeError, match=r"repro\[fast\]"):
            resolve_kernel("vector")
        with pytest.raises(RuntimeError, match=r"repro\[fast\]"):
            GeometryTable([])

    def test_parser_construction_without_numpy(self, monkeypatch):
        """``kernel='vector'`` fails fast at construction, not mid-parse."""
        from repro.grammar.standard import build_standard_grammar
        from repro.parser.parser import BestEffortParser, ParserConfig

        monkeypatch.setattr(spatial_index, "_NUMPY", None)
        monkeypatch.setattr(spatial_index, "_NUMPY_PROBED", True)
        grammar = build_standard_grammar()
        with pytest.raises(RuntimeError, match="numpy"):
            BestEffortParser(grammar, ParserConfig(kernel="vector"))
        parser = BestEffortParser(grammar, ParserConfig(kernel="auto"))
        assert parser.kernel == "scalar"
        assert parser.parse([]).stats.kernel == "scalar"
