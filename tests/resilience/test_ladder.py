"""Unit and integration tests for the degradation ladder."""

import pickle

from repro.datasets.fixtures import QAM_HTML
from repro.extractor import FormExtractor
from repro.observability.metrics import MetricsRegistry
from repro.resilience.guard import ResourceLimits
from repro.resilience.ladder import (
    LEVEL_CAPPED,
    LEVEL_FULL,
    LEVEL_HEURISTIC,
    LEVEL_MINIMAL,
    DegradationReport,
    ResilienceConfig,
    token_dump_model,
)
from repro.semantics.serialize import model_to_dict
from repro.tokens.tokenizer import FormTokenizer


def _deep_form(depth: int = 5_000) -> str:
    return (
        "<form>" + "<div>" * depth + 'Title <input name="title">'
        + "</div>" * depth + "</form>"
    )


class TestTokenDumpModel:
    def test_empty_tokens_empty_model(self):
        assert token_dump_model(None).conditions == []
        assert token_dump_model([]).conditions == []

    def test_one_condition_per_text_input(self):
        html = '<form><input name="a"><input name="b"></form>'
        from repro.html.parser import parse_html

        tokens = FormTokenizer(parse_html(html)).tokenize()
        model = token_dump_model(tokens)
        assert sorted(c.attribute for c in model.conditions) == ["a", "b"]
        assert all(c.operators == ("contains",) for c in model.conditions)

    def test_radio_groups_collapse(self):
        html = (
            '<form><input type=radio name=fmt value=hard>'
            '<input type=radio name=fmt value=soft></form>'
        )
        from repro.html.parser import parse_html

        tokens = FormTokenizer(parse_html(html)).tokenize()
        model = token_dump_model(tokens)
        assert len(model.conditions) == 1
        assert model.conditions[0].domain.values == ("hard", "soft")


class TestConfig:
    def test_picklable_for_pool_workers(self):
        config = ResilienceConfig(
            limits=ResourceLimits(deadline_seconds=1.5),
            heuristic_fallback=False,
        )
        assert pickle.loads(pickle.dumps(config)) == config

    def test_report_describe(self):
        report = DegradationReport(
            LEVEL_CAPPED, "parse", "budget hit", resource="deadline"
        )
        assert report.describe() == "degraded to capped at parse: budget hit"


class TestLadderLevels:
    def test_clean_form_stays_full_and_identical(self):
        plain = FormExtractor().extract_detailed(QAM_HTML)
        resilient = FormExtractor(resilience=True).extract_detailed(QAM_HTML)
        assert resilient.level == LEVEL_FULL
        assert resilient.degradation == []
        assert model_to_dict(resilient.model) == model_to_dict(plain.model)

    def test_deep_nesting_degrades_to_capped(self):
        result = FormExtractor(resilience=True).extract_resilient(_deep_form())
        assert result.level == LEVEL_CAPPED
        assert any(
            entry.resource == "depth" for entry in result.degradation
        )
        # The input control still surfaces despite the flattening.
        assert any(
            "title" in condition.fields
            for condition in result.model.conditions
        )

    def test_zero_deadline_yields_capped_empty_model(self):
        # With no time at all even tokenization is capped to nothing;
        # there is nothing for lower rungs to chew on, so the ladder
        # reports capped with an empty (but structured) model.
        config = ResilienceConfig(
            limits=ResourceLimits(deadline_seconds=0.0)
        )
        result = FormExtractor().extract_resilient(QAM_HTML, config=config)
        assert result.level == LEVEL_CAPPED
        assert all(
            entry.resource == "deadline" for entry in result.degradation
        )

    def test_capped_empty_parse_steps_down_to_heuristic(self):
        # Tokens exist but the parse budget leaves zero conditions: an
        # empty "capped" model is a failure in disguise, so the ladder
        # steps down to the heuristic, which still finds the inputs.
        tokens = FormExtractor().extract_detailed(QAM_HTML).tokens
        config = ResilienceConfig(
            limits=ResourceLimits(deadline_seconds=0.0)
        )
        result = FormExtractor(resilience=config).extract_from_tokens(tokens)
        assert result.level == LEVEL_HEURISTIC
        assert result.model.conditions  # best-effort, never empty-handed
        levels = {entry.level for entry in result.degradation}
        assert LEVEL_HEURISTIC in levels

    def test_parser_crash_steps_down_to_heuristic(self, monkeypatch):
        extractor = FormExtractor(resilience=True)
        monkeypatch.setattr(
            extractor.parser, "parse",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        result = extractor.extract_resilient(QAM_HTML)
        assert result.level == LEVEL_HEURISTIC
        assert result.model.conditions
        assert any("boom" in entry.reason for entry in result.degradation)

    def test_minimal_when_heuristic_disabled(self, monkeypatch):
        extractor = FormExtractor(
            resilience=ResilienceConfig(heuristic_fallback=False)
        )
        monkeypatch.setattr(
            extractor.parser, "parse",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        result = extractor.extract_resilient(QAM_HTML)
        assert result.level == LEVEL_MINIMAL
        assert result.model.conditions  # the token dump still lists inputs
        assert result.level == max(
            (entry.level for entry in result.degradation),
            key=[LEVEL_FULL, LEVEL_CAPPED, LEVEL_HEURISTIC,
                 LEVEL_MINIMAL].index,
        )


class TestObservability:
    def test_downgrades_are_warned_tagged_and_counted(self):
        registry = MetricsRegistry()
        extractor = FormExtractor(metrics=registry)
        result = extractor.extract_resilient(
            QAM_HTML,
            config=ResilienceConfig(
                limits=ResourceLimits(deadline_seconds=0.0)
            ),
        )
        for entry in result.degradation:
            assert entry.describe() in result.warnings
        assert result.trace.tags["degrade.level"] == result.level
        counters = registry.to_dict()["counters"]
        assert counters[f"degrade.{result.level}"] == 1

    def test_full_level_leaves_no_degrade_signal(self):
        registry = MetricsRegistry()
        extractor = FormExtractor(metrics=registry, resilience=True)
        result = extractor.extract_detailed(QAM_HTML)
        assert result.level == LEVEL_FULL
        assert "degrade.level" not in result.trace.tags
        counters = registry.to_dict()["counters"]
        assert not any(name.startswith("degrade.") for name in counters)
