"""Unit tests for the cooperative resource guard."""

import time

import pytest

from repro.resilience.guard import (
    BudgetExceeded,
    GuardEvent,
    ResourceGuard,
    ResourceLimits,
)


def _unlimited(**overrides):
    base = dict(
        deadline_seconds=None,
        max_input_bytes=None,
        max_nodes=None,
        max_depth=None,
        max_tokens=None,
        max_combos=None,
    )
    base.update(overrides)
    return ResourceLimits(**base)


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown guard mode"):
            ResourceGuard(mode="panic")

    def test_raise_mode_raises_typed_error(self):
        guard = ResourceGuard(limits=_unlimited(max_nodes=10), mode="raise")
        with pytest.raises(BudgetExceeded) as excinfo:
            guard.admit_nodes(11, "html-parse")
        error = excinfo.value
        assert error.resource == "nodes"
        assert error.stage == "html-parse"
        assert error.limit == 10
        assert error.observed == 11
        assert "nodes budget exceeded in html-parse" in str(error)

    def test_degrade_mode_records_instead(self):
        guard = ResourceGuard(limits=_unlimited(max_nodes=10))
        assert guard.admit_nodes(11, "html-parse") is False
        assert guard.breached
        assert guard.events == [GuardEvent("nodes", "html-parse", 10, 11)]


class TestNoteOnce:
    def test_one_event_per_resource_and_stage(self):
        guard = ResourceGuard(limits=_unlimited(max_nodes=5))
        guard.admit_nodes(6, "html-parse")
        guard.admit_nodes(1, "html-parse")
        guard.admit_nodes(1, "layout")
        assert [(e.resource, e.stage) for e in guard.events] == [
            ("nodes", "html-parse"),
            ("nodes", "layout"),
        ]


class TestDeadline:
    def test_unarmed_guard_never_breaches(self):
        guard = ResourceGuard(limits=_unlimited())
        guard.start()
        assert guard.over_deadline("parse") is False
        assert guard.remaining_seconds() is None

    def test_expired_deadline_breaches(self):
        guard = ResourceGuard(
            limits=_unlimited(deadline_seconds=0.0)
        ).start()
        time.sleep(0.001)
        assert guard.over_deadline("parse") is True
        assert guard.events[0].resource == "deadline"
        assert guard.remaining_seconds() == 0.0

    def test_tick_is_strided(self):
        guard = ResourceGuard(
            limits=_unlimited(deadline_seconds=0.0)
        ).start()
        time.sleep(0.001)
        # Clock only read every `stride` calls: the first stride-1 ticks
        # cannot observe the breach.
        assert [guard.tick("parse", stride=4) for _ in range(4)] == [
            False, False, False, True,
        ]

    def test_tick_noop_when_unarmed(self):
        guard = ResourceGuard(limits=_unlimited()).start()
        assert all(not guard.tick("parse", stride=1) for _ in range(10))


class TestCountableBudgets:
    def test_nodes_accumulate_across_calls(self):
        guard = ResourceGuard(limits=_unlimited(max_nodes=10))
        assert guard.admit_nodes(6, "html-parse")
        assert guard.admit_nodes(4, "html-parse")
        assert not guard.admit_nodes(1, "html-parse")

    def test_depth_ceiling(self):
        guard = ResourceGuard(limits=_unlimited(max_depth=3))
        assert guard.admit_depth(3, "html-parse")
        assert not guard.admit_depth(4, "html-parse")
        unlimited = ResourceGuard(limits=_unlimited())
        assert unlimited.admit_depth(10_000, "html-parse")

    def test_cap_count_truncates(self):
        guard = ResourceGuard(limits=_unlimited(max_tokens=100))
        assert guard.cap_count("tokens", 50, "tokenize") == 50
        assert guard.cap_count("tokens", 500, "tokenize") == 100
        assert guard.events[0].resource == "tokens"

    def test_cap_input_truncates(self):
        guard = ResourceGuard(limits=_unlimited(max_input_bytes=1_000))
        assert guard.cap_input(999) == 999
        assert guard.cap_input(5_000) == 1_000
        assert guard.events[0].resource == "input-bytes"

    def test_defaults_are_generous(self):
        # The stock limits must not interfere with ordinary documents.
        guard = ResourceGuard().start()
        assert guard.admit_nodes(2_000, "html-parse")
        assert guard.cap_count("tokens", 500, "tokenize") == 500
        assert guard.cap_input(100_000) == 100_000
        assert not guard.breached
