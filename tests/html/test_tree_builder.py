"""Tests for the forgiving HTML tree builder."""

from repro.html.dom import Comment, Text
from repro.html.parser import parse_html


def tags(node):
    return [e.tag for e in node.iter_elements()]


class TestBasicTrees:
    def test_nesting(self):
        document = parse_html("<html><body><form></form></body></html>")
        assert tags(document) == ["html", "body", "form"]

    def test_text_nodes(self):
        document = parse_html("<b>Author</b>")
        b = document.find("b")
        assert isinstance(b.children[0], Text)
        assert b.children[0].data == "Author"

    def test_adjacent_text_merged(self):
        document = parse_html("a&amp;b")
        assert len(document.children) == 1
        assert document.children[0].data == "a&b"

    def test_comment_preserved(self):
        document = parse_html("<!-- hi -->")
        assert isinstance(document.children[0], Comment)

    def test_doctype_recorded(self):
        document = parse_html("<!DOCTYPE html><html></html>")
        assert document.doctype == "html"

    def test_attributes_preserved(self):
        document = parse_html('<input type="text" name="q" size=30>')
        element = document.find("input")
        assert element.get("size") == "30"


class TestVoidElements:
    def test_input_takes_no_children(self):
        document = parse_html("<input>text after")
        element = document.find("input")
        assert element.children == []
        assert document.text_content() == "text after"

    def test_br_hr_img(self):
        document = parse_html("a<br>b<hr>c<img src=x>d")
        assert document.text_content() == "abcd"

    def test_stray_end_br_ignored(self):
        document = parse_html("a</br>b")
        assert document.text_content() == "ab"


class TestImplicitClosing:
    def test_sibling_p_closes_p(self):
        document = parse_html("<p>one<p>two")
        paragraphs = list(document.find_all("p"))
        assert len(paragraphs) == 2
        assert paragraphs[0].text_content() == "one"

    def test_sibling_li_closes_li(self):
        document = parse_html("<ul><li>a<li>b</ul>")
        items = list(document.find_all("li"))
        assert [i.text_content() for i in items] == ["a", "b"]

    def test_nested_list_is_barrier(self):
        document = parse_html("<ul><li>a<ul><li>a1</ul><li>b</ul>")
        outer = document.find("ul")
        outer_items = [
            e for e in outer.child_elements() if e.tag == "li"
        ]
        assert len(outer_items) == 2

    def test_option_closes_option(self):
        document = parse_html(
            "<select><option>x<option>y<option>z</select>"
        )
        options = list(document.find_all("option"))
        assert [o.text_content() for o in options] == ["x", "y", "z"]

    def test_td_closes_td(self):
        document = parse_html("<table><tr><td>a<td>b</tr></table>")
        cells = list(document.find_all("td"))
        assert [c.text_content() for c in cells] == ["a", "b"]

    def test_tr_closes_tr(self):
        document = parse_html("<table><tr><td>a<tr><td>b</table>")
        rows = list(document.find_all("tr"))
        assert len(rows) == 2

    def test_tr_stays_inside_table(self):
        document = parse_html(
            "<table><tr><td>a</td></tr><tr><td>b</td></tr></table>"
        )
        table = document.find("table")
        assert all(
            row.parent is table for row in document.find_all("tr")
        )

    def test_dt_dd_siblings(self):
        document = parse_html("<dl><dt>t<dd>d<dt>t2</dl>")
        assert len(list(document.find_all("dt"))) == 2
        assert len(list(document.find_all("dd"))) == 1


class TestErrorRecovery:
    def test_unmatched_end_tag_ignored(self):
        document = parse_html("a</div>b")
        assert document.text_content() == "ab"

    def test_end_tag_pops_intermediates(self):
        document = parse_html("<div><b>bold</div>after")
        div = document.find("div")
        assert div.text_content() == "bold"
        # "after" must be outside the div.
        assert document.text_content() == "boldafter"

    def test_unclosed_everything(self):
        document = parse_html("<form><table><tr><td><input name=q")
        assert document.find("input") is not None

    def test_never_raises_on_garbage(self):
        for garbage in (
            "", "<", "<<>><", "</////>", "<table></form></html><td>",
            "\x00\x01", "<a" * 50,
        ):
            parse_html(garbage)  # must not raise

    def test_self_closing_nonvoid(self):
        document = parse_html("<div/>text")
        div = document.find("div")
        assert div.children == []


class TestRealisticForm:
    HTML = """
    <html><body>
    <form action="/search" method="get">
      <table>
        <tr><td><b>Author</b>:</td>
            <td><input type="text" name="author" size="30"></td></tr>
        <tr><td>Subject:</td>
            <td><select name="subject">
                  <option value="">All</option>
                  <option>Fiction</option>
                </select></td></tr>
      </table>
      <input type="submit" value="Search">
    </form>
    </body></html>
    """

    def test_structure(self):
        document = parse_html(self.HTML)
        form = document.find("form")
        assert form.get("action") == "/search"
        assert len(list(form.find_all("tr"))) == 2
        assert len(list(form.find_all("input"))) == 2
        select = form.find("select")
        options = list(select.find_all("option"))
        assert [o.text_content().strip() for o in options] == [
            "All", "Fiction",
        ]
