"""Tests for HTML entity decoding."""

import pytest

from repro.html.entities import decode_entities, encode_entities


class TestNamedEntities:
    def test_amp(self):
        assert decode_entities("Books &amp; Music") == "Books & Music"

    def test_lt_gt(self):
        assert decode_entities("&lt;form&gt;") == "<form>"

    def test_quot_apos(self):
        assert decode_entities("&quot;x&apos;") == "\"x'"

    def test_nbsp_becomes_space(self):
        assert decode_entities("a&nbsp;b") == "a b"

    def test_missing_semicolon_tolerated(self):
        assert decode_entities("Books &amp Music") == "Books & Music"

    def test_unknown_named_entity_passes_through(self):
        assert decode_entities("&bogusentity;") == "&bogusentity;"

    def test_case_insensitive_fallback(self):
        assert decode_entities("&AMP;") == "&"

    def test_accented_letters(self):
        assert decode_entities("caf&eacute;") == "café"

    def test_currency(self):
        assert decode_entities("&pound;10 &euro;20") == "£10 €20"

    def test_punctuation_dashes(self):
        assert decode_entities("a&ndash;b&mdash;c") == "a–b—c"


class TestNumericEntities:
    def test_decimal(self):
        assert decode_entities("&#65;") == "A"

    def test_hexadecimal(self):
        assert decode_entities("&#x41;") == "A"

    def test_hex_uppercase_marker(self):
        assert decode_entities("&#X42;") == "B"

    def test_decimal_without_semicolon(self):
        assert decode_entities("&#65 x") == "A x"

    def test_cp1252_apostrophe(self):
        # Forms in the wild use &#146; for a right single quote.
        assert decode_entities("it&#146;s") == "it’s"

    def test_null_replaced(self):
        assert decode_entities("&#0;") == "�"

    def test_surrogate_replaced(self):
        assert decode_entities("&#xD800;") == "�"

    def test_out_of_range_replaced(self):
        assert decode_entities("&#1114112;") == "�"

    def test_euro_via_cp1252(self):
        assert decode_entities("&#128;") == "€"


class TestEdgeCases:
    def test_no_ampersand_fast_path(self):
        text = "plain text"
        assert decode_entities(text) is text

    def test_lone_ampersand(self):
        assert decode_entities("AT&T") == "AT&T"

    def test_consecutive_entities(self):
        assert decode_entities("&lt;&gt;&amp;") == "<>&"

    def test_empty_string(self):
        assert decode_entities("") == ""


class TestEncode:
    def test_round_trip_specials(self):
        original = '<a href="x">&'
        assert decode_entities(encode_entities(original)) == original

    @pytest.mark.parametrize("ch,expected", [
        ("&", "&amp;"), ("<", "&lt;"), (">", "&gt;"), ('"', "&quot;"),
    ])
    def test_each_special(self, ch, expected):
        assert encode_entities(ch) == expected
