"""Tests for the DOM node model."""

from repro.html.dom import Comment, Document, Element, Text


def small_tree():
    document = Document()
    html = document.append_child(Element("html"))
    body = html.append_child(Element("body"))
    form = body.append_child(Element("form", {"action": "/search"}))
    label = form.append_child(Element("b"))
    label.append_child(Text("Author"))
    form.append_child(Element("input", {"type": "text", "name": "author"}))
    return document, form


class TestTreeManipulation:
    def test_append_sets_parent(self):
        parent = Element("div")
        child = Element("span")
        parent.append_child(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_append_reparents(self):
        first = Element("div")
        second = Element("div")
        child = Element("span")
        first.append_child(child)
        second.append_child(child)
        assert child.parent is second
        assert first.children == []

    def test_remove_child(self):
        parent = Element("div")
        child = parent.append_child(Element("span"))
        parent.remove_child(child)
        assert child.parent is None
        assert parent.children == []


class TestTraversal:
    def test_iter_document_order(self):
        document, _ = small_tree()
        tags = [n.tag for n in document.iter_elements()]
        assert tags == ["html", "body", "form", "b", "input"]

    def test_ancestors(self):
        document, form = small_tree()
        label = form.children[0]
        tags = [
            n.tag for n in label.ancestors() if isinstance(n, Element)
        ]
        assert tags == ["form", "body", "html"]

    def test_find(self):
        document, form = small_tree()
        assert document.find("form") is form
        assert document.find("table") is None

    def test_find_all_with_predicate(self):
        document, _ = small_tree()
        inputs = list(
            document.find_all("input", lambda e: e.get("type") == "text")
        )
        assert len(inputs) == 1

    def test_find_excludes_self(self):
        _, form = small_tree()
        assert form.find("form") is None

    def test_text_content(self):
        document, _ = small_tree()
        assert document.text_content() == "Author"


class TestElement:
    def test_tag_lowercased(self):
        assert Element("DIV").tag == "div"

    def test_get_case_insensitive(self):
        element = Element("input", {"name": "q"})
        assert element.get("NAME") == "q"
        assert element.get("missing") is None
        assert element.get("missing", "d") == "d"

    def test_has_attribute(self):
        element = Element("input", {"checked": ""})
        assert element.has_attribute("checked")
        assert not element.has_attribute("selected")

    def test_id_and_name_properties(self):
        element = Element("input", {"id": "x", "name": "y"})
        assert element.id == "x"
        assert element.name == "y"

    def test_child_elements_skips_text(self):
        parent = Element("div")
        parent.append_child(Text("a"))
        span = parent.append_child(Element("span"))
        assert parent.child_elements() == [span]

    def test_own_text(self):
        parent = Element("td")
        parent.append_child(Text("Price"))
        child = parent.append_child(Element("b"))
        child.append_child(Text("hidden"))
        assert parent.own_text() == "Price"


class TestDocument:
    def test_body_property(self):
        document, _ = small_tree()
        assert document.body.tag == "body"

    def test_forms_property(self):
        document, form = small_tree()
        assert document.forms == [form]

    def test_comment_repr(self):
        assert "note" in repr(Comment("note"))

    def test_text_repr_truncates(self):
        assert "..." in repr(Text("x" * 100))
