"""Tests for the HTML lexer."""

from repro.html.tokenizer import (
    CommentToken,
    DoctypeToken,
    EndTagToken,
    StartTagToken,
    TextToken,
    lex_html,
)


def kinds(tokens):
    return [type(token).__name__ for token in tokens]


class TestBasicLexing:
    def test_text_only(self):
        tokens = lex_html("hello world")
        assert kinds(tokens) == ["TextToken"]
        assert tokens[0].data == "hello world"

    def test_simple_element(self):
        tokens = lex_html("<b>hi</b>")
        assert kinds(tokens) == ["StartTagToken", "TextToken", "EndTagToken"]
        assert tokens[0].name == "b"
        assert tokens[2].name == "b"

    def test_tag_names_lowercased(self):
        tokens = lex_html("<INPUT TYPE=TEXT>")
        assert tokens[0].name == "input"
        assert tokens[0].attributes == {"type": "TEXT"}

    def test_self_closing(self):
        (token,) = lex_html("<br/>")
        assert isinstance(token, StartTagToken)
        assert token.self_closing

    def test_positions_recorded(self):
        tokens = lex_html("ab<i>")
        assert tokens[0].position == 0
        assert tokens[1].position == 2


class TestAttributes:
    def test_double_quoted(self):
        (token,) = lex_html('<input name="query">')
        assert token.attributes == {"name": "query"}

    def test_single_quoted(self):
        (token,) = lex_html("<input name='q'>")
        assert token.attributes == {"name": "q"}

    def test_unquoted(self):
        (token,) = lex_html("<input size=30>")
        assert token.attributes == {"size": "30"}

    def test_valueless(self):
        (token,) = lex_html("<input checked>")
        assert token.attributes == {"checked": ""}

    def test_mixed(self):
        (token,) = lex_html('<input type=radio name="m" checked value=\'1\'>')
        assert token.attributes == {
            "type": "radio", "name": "m", "checked": "", "value": "1",
        }

    def test_attribute_names_lowercased(self):
        (token,) = lex_html("<input NAME=q>")
        assert "name" in token.attributes

    def test_first_duplicate_wins(self):
        (token,) = lex_html("<input name=a name=b>")
        assert token.attributes["name"] == "a"

    def test_entities_in_attribute_values(self):
        (token,) = lex_html('<input value="a&amp;b">')
        assert token.attributes["value"] == "a&b"

    def test_attributes_across_newlines(self):
        (token,) = lex_html('<input\n  type="text"\n  name="q"\n>')
        assert token.attributes == {"type": "text", "name": "q"}


class TestMarkupDeclarations:
    def test_comment(self):
        (token,) = lex_html("<!-- note -->")
        assert isinstance(token, CommentToken)
        assert token.data == " note "

    def test_unterminated_comment(self):
        (token,) = lex_html("<!-- never ends")
        assert isinstance(token, CommentToken)

    def test_doctype(self):
        (token,) = lex_html("<!DOCTYPE html>")
        assert isinstance(token, DoctypeToken)
        assert token.data == "html"

    def test_bogus_declaration_is_comment(self):
        (token,) = lex_html("<!whatever>")
        assert isinstance(token, CommentToken)

    def test_processing_instruction_is_comment(self):
        (token,) = lex_html("<?php echo 1 ?>")
        assert isinstance(token, CommentToken)


class TestRawText:
    def test_script_content_not_parsed(self):
        tokens = lex_html("<script>if (a<b) {}</script>after")
        assert kinds(tokens) == ["StartTagToken", "TextToken", "TextToken"]
        assert tokens[1].data == "if (a<b) {}"
        assert tokens[2].data == "after"

    def test_style_content(self):
        tokens = lex_html("<style>a > b {color: red}</style>")
        assert tokens[1].data == "a > b {color: red}"

    def test_textarea_decodes_entities(self):
        tokens = lex_html("<textarea>a&amp;b</textarea>")
        assert tokens[1].data == "a&b"

    def test_script_entities_not_decoded(self):
        tokens = lex_html("<script>a&amp;b</script>")
        assert tokens[1].data == "a&amp;b"

    def test_case_insensitive_close(self):
        tokens = lex_html("<script>x</SCRIPT>done")
        assert tokens[-1].data == "done"

    def test_unterminated_rawtext(self):
        tokens = lex_html("<script>x = 1;")
        assert tokens[-1].data == "x = 1;"


class TestMalformedInput:
    def test_stray_lt_is_text(self):
        tokens = lex_html("a < b")
        merged = "".join(t.data for t in tokens if isinstance(t, TextToken))
        assert merged == "a < b"

    def test_unclosed_tag_at_eof(self):
        tokens = lex_html("<input type=text")
        assert isinstance(tokens[0], StartTagToken)

    def test_end_tag_junk_is_comment(self):
        tokens = lex_html("</ oops>")
        assert isinstance(tokens[0], CommentToken)

    def test_end_tag_with_attributes_ignored(self):
        (token,) = lex_html("</form class=x>")
        assert isinstance(token, EndTagToken)
        assert token.name == "form"

    def test_never_raises(self):
        # A small gauntlet of malformed fragments.
        for fragment in ("<", "<>", "<<<", "< input>", "<a b=c", "&#;",
                         "<!---->", "</>", "<a 'x'>"):
            lex_html(fragment)  # must not raise

    def test_entities_decoded_in_text(self):
        tokens = lex_html("Price &lt; 10")
        assert tokens[0].data == "Price < 10"
