"""Property-based tests: the HTML substrate never rejects any input."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.html.entities import decode_entities, encode_entities
from repro.html.parser import parse_html
from repro.html.tokenizer import lex_html

# Text with a bias toward markup-significant characters.
markupish = st.text(
    alphabet=st.sampled_from(
        list("<>&\"'/=! abcdefgh-;#x0123") + ["\n", "\t"]
    ),
    max_size=200,
)


class TestRobustness:
    @given(markupish)
    @settings(max_examples=300)
    def test_lexer_never_raises(self, text):
        lex_html(text)

    @given(markupish)
    @settings(max_examples=300)
    def test_tree_builder_never_raises(self, text):
        parse_html(text)

    @given(st.text(max_size=200))
    def test_arbitrary_unicode_never_raises(self, text):
        parse_html(text)

    @given(markupish)
    def test_parents_consistent(self, text):
        document = parse_html(text)
        for node in document.iter():
            for child in node.children:
                assert child.parent is node

    @given(markupish)
    def test_no_children_under_void_elements(self, text):
        document = parse_html(text)
        for element in document.iter_elements():
            if element.tag in ("input", "br", "hr", "img"):
                assert element.children == []


class TestEntityProperties:
    @given(st.text(max_size=100))
    def test_encode_decode_round_trip(self, text):
        assert decode_entities(encode_entities(text)) == text

    @given(st.integers(min_value=1, max_value=0x10FFFF))
    def test_numeric_references_decode_to_one_char(self, codepoint):
        decoded = decode_entities(f"&#{codepoint};")
        assert len(decoded) == 1

    @given(st.text(alphabet="abcdefghijklmnop &;#", max_size=80))
    def test_decoding_is_idempotent_without_amp(self, text):
        once = decode_entities(text)
        if "&" not in once:
            assert decode_entities(once) == once


class TestTextPreservation:
    @given(
        st.text(
            alphabet=st.characters(
                blacklist_characters="<>&", blacklist_categories=("Cs", "Cc")
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_plain_text_survives(self, text):
        document = parse_html(f"<p>{text}</p>")
        assert document.text_content() == text

    @given(st.lists(st.sampled_from(["b", "i", "span", "div"]), max_size=6))
    def test_nested_wrappers_preserve_text(self, wrappers):
        inner = "payload"
        html = inner
        for tag in wrappers:
            html = f"<{tag}>{html}</{tag}>"
        assert parse_html(html).text_content() == inner
