"""Tests for DOM → HTML serialization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.fixtures import QAA_HTML, QAM_HTML
from repro.html.dom import Element, Text
from repro.html.parser import parse_html
from repro.html.serialize import serialize


def tree_shape(node):
    """Structural fingerprint of a DOM tree (ignores comments)."""
    if isinstance(node, Text):
        return ("#text", node.data)
    if isinstance(node, Element):
        return (
            node.tag,
            tuple(sorted(node.attributes.items())),
            tuple(
                tree_shape(child)
                for child in node.children
                if isinstance(child, (Element, Text))
            ),
        )
    return (
        "#doc",
        tuple(
            tree_shape(child)
            for child in node.children
            if isinstance(child, (Element, Text))
        ),
    )


class TestBasics:
    def test_element_round_trip(self):
        html = '<div class="x"><b>bold</b> plain</div>'
        assert serialize(parse_html(html)) == html

    def test_void_elements_not_closed(self):
        out = serialize(parse_html("<input name=q><br>"))
        assert "</input>" not in out
        assert "</br>" not in out

    def test_valueless_attribute(self):
        out = serialize(parse_html("<input checked>"))
        assert "<input checked>" in out

    def test_entities_encoded(self):
        out = serialize(parse_html("<p>a &amp; b &lt; c</p>"))
        assert "a &amp; b &lt; c" in out

    def test_attribute_quotes_escaped(self):
        document = parse_html("<div></div>")
        div = document.find("div")
        div.attributes["title"] = 'say "hi" & bye'
        out = serialize(document)
        assert 'title="say &quot;hi&quot; &amp; bye"' in out

    def test_comment_preserved(self):
        out = serialize(parse_html("<!-- note -->"))
        assert "<!-- note -->" in out

    def test_doctype(self):
        out = serialize(parse_html("<!DOCTYPE html><p>x</p>"))
        assert out.startswith("<!DOCTYPE html>")

    def test_script_content_raw(self):
        out = serialize(parse_html("<script>a && b < c</script>"))
        assert "a && b < c" in out


class TestStability:
    def test_reparse_equivalent_fixture(self):
        for html in (QAM_HTML, QAA_HTML):
            first = parse_html(html)
            second = parse_html(serialize(first))
            assert tree_shape(first) == tree_shape(second)

    def test_serialization_idempotent(self):
        once = serialize(parse_html(QAM_HTML))
        twice = serialize(parse_html(once))
        assert once == twice

    @given(st.text(
        alphabet=st.sampled_from(list("<>&\"'/=! abct-;#x01")),
        max_size=120,
    ))
    @settings(max_examples=200)
    def test_reparse_fixpoint_on_soup(self, soup):
        # After one normalize pass, serialize∘parse is a fixpoint.
        normalized = serialize(parse_html(soup))
        assert serialize(parse_html(normalized)) == normalized

    @given(st.lists(
        st.sampled_from(["div", "span", "b", "p", "table", "td", "form"]),
        max_size=5,
    ))
    def test_nested_structures_round_trip(self, tags):
        html = "payload"
        for tag in tags:
            html = f"<{tag}>{html}</{tag}>"
        first = parse_html(html)
        second = parse_html(serialize(first))
        assert tree_shape(first) == tree_shape(second)
