"""Tests for cross-source refinement (paper Section 7 suggestions)."""

import pytest

from repro.datasets.fixtures import QAA_HTML, QAA_VARIANT_HTML
from repro.datasets.repository import build_dataset
from repro.extractor import FormExtractor
from repro.refine import DomainKnowledge, DomainRefiner
from repro.semantics.condition import Condition, SemanticModel


@pytest.fixture(scope="module")
def extractor():
    return FormExtractor()


@pytest.fixture(scope="module")
def airfare_knowledge(extractor):
    dataset = build_dataset("K", {"Airfares": 12}, base_seed=7_000)
    knowledge = DomainKnowledge()
    for source in dataset:
        knowledge.observe_model(extractor.extract(source.html))
    knowledge.observe_model(extractor.extract(QAA_HTML))
    return knowledge


class TestDomainKnowledge:
    def test_counts_normalized_attributes(self):
        knowledge = DomainKnowledge()
        knowledge.observe_model(
            SemanticModel(conditions=[Condition("Author:")])
        )
        knowledge.observe_model(
            SemanticModel(conditions=[Condition("author")])
        )
        assert knowledge.popularity("AUTHOR") == 2
        assert knowledge.sources_seen == 2

    def test_conflicted_sources_do_not_teach(self):
        knowledge = DomainKnowledge()
        knowledge.observe_model(
            SemanticModel(
                conditions=[Condition("Author")], conflicts=["textbox 'x'"]
            )
        )
        assert knowledge.popularity("Author") == 0
        assert knowledge.sources_seen == 1

    def test_empty_attributes_not_counted(self):
        knowledge = DomainKnowledge()
        knowledge.observe_model(SemanticModel(conditions=[Condition("")]))
        assert not knowledge.attribute_counts

    def test_is_known_threshold(self, airfare_knowledge):
        assert airfare_knowledge.is_known("Adults", min_support=2)
        assert not airfare_knowledge.is_known("Quantum flux", min_support=1)

    def test_best_match_similarity(self, airfare_knowledge):
        assert airfare_knowledge.best_match("Adults:") == "adults"
        assert airfare_knowledge.best_match("Adultes") == "adults"
        assert airfare_knowledge.best_match("xyzzy") is None


class TestConflictResolution:
    def test_variant_conflict_resolved(self, extractor, airfare_knowledge):
        detail = extractor.extract_detailed(QAA_VARIANT_HTML)
        assert detail.model.conflicts  # precondition
        before = len(detail.model.conditions)
        refined, stats = DomainRefiner(airfare_knowledge).refine(detail)
        assert stats.conflicts_resolved >= 1
        assert stats.conditions_dropped >= 1
        assert len(refined.conditions) < before
        assert refined.conflicts == []

    def test_clean_extraction_unchanged(self, extractor, airfare_knowledge):
        detail = extractor.extract_detailed(QAA_HTML)
        refined, stats = DomainRefiner(airfare_knowledge).refine(detail)
        assert stats.conflicts_resolved == 0
        assert stats.conditions_dropped == 0
        assert refined.conditions == list(detail.model.conditions)

    def test_known_attribute_beats_unknown(self, extractor):
        # Build knowledge where one competitor's attribute is well known.
        knowledge = DomainKnowledge()
        for _ in range(3):
            knowledge.observe_model(
                SemanticModel(conditions=[Condition("Adults")])
            )
        detail = extractor.extract_detailed(QAA_VARIANT_HTML)
        refined, stats = DomainRefiner(knowledge).refine(detail)
        # The merged-label competitors are unknown; arbitration keeps one.
        assert stats.conflicts_resolved >= 1


class TestMissingRecovery:
    HTML = """
    <html><body><form action="/f">
    <table cellspacing="20" cellpadding="2">
    <tr><td>Cabin</td></tr>
    </table>
    <select name="cabin"><option>Economy</option><option>Business</option>
    <option>First</option></select>
    <input type="submit" value="Go">
    </form></body></html>
    """

    def test_bare_condition_adopts_similar_missing_text(self, extractor):
        # The wide spacing detaches the "Cabin" label from its select:
        # extraction yields a bare enum condition plus an unclaimed text.
        detail = extractor.extract_detailed(self.HTML)
        bare = [c for c in detail.model.conditions if not c.attribute]
        assert bare
        assert (
            detail.report.missing_tokens
            or detail.report.unclaimed_text_tokens
        )
        knowledge = DomainKnowledge()
        for _ in range(3):
            knowledge.observe_model(
                SemanticModel(conditions=[Condition("Cabin")])
            )
        refined, stats = DomainRefiner(knowledge).refine(detail)
        assert stats.attributes_recovered == 1
        assert any(c.attribute == "Cabin" for c in refined.conditions)

    def test_no_recovery_without_similar_knowledge(self, extractor):
        detail = extractor.extract_detailed(self.HTML)
        knowledge = DomainKnowledge()
        knowledge.observe_model(
            SemanticModel(conditions=[Condition("Completely different")])
        )
        refined, stats = DomainRefiner(knowledge).refine(detail)
        assert stats.attributes_recovered == 0
