"""Tests for the navigation-menu application (paper Section 7)."""

import pytest

from repro.apps.navmenu import (
    NavMenuExtractor,
    build_menu_grammar,
    generate_entry_page,
)
from repro.parser.schedule import build_schedule


@pytest.fixture(scope="module")
def extractor():
    return NavMenuExtractor()


class TestGrammar:
    def test_builds_and_validates(self):
        grammar = build_menu_grammar()
        grammar.validate()
        assert grammar.start == "Page"

    def test_schedulable(self):
        schedule = build_schedule(build_menu_grammar())
        assert schedule.order[-1] == "Page"

    def test_shares_token_alphabet(self):
        grammar = build_menu_grammar()
        assert "text" in grammar.terminals


class TestGenerator:
    def test_deterministic(self):
        assert generate_entry_page(3) == generate_entry_page(3)

    def test_truth_shapes(self):
        _, truth = generate_entry_page(5)
        assert 2 <= len(truth) <= 4
        for items in truth.values():
            assert len(items) >= 2


class TestExtraction:
    @pytest.mark.parametrize("seed", range(8))
    def test_recovers_all_menus(self, extractor, seed):
        html, truth = generate_entry_page(seed)
        result = extractor.extract(html)
        extracted = {menu["title"]: tuple(menu["items"]) for menu in result.menus}
        for title, items in truth.items():
            assert title in extracted, f"menu {title!r} missing"
            assert extracted[title] == items

    def test_no_spurious_menus_from_body_text(self, extractor):
        html, truth = generate_entry_page(1)
        result = extractor.extract(html)
        # Every extracted menu corresponds to a ground-truth section.
        extracted_titles = {menu["title"] for menu in result.menus}
        assert extracted_titles <= set(truth)

    def test_services_flattened(self, extractor):
        html, truth = generate_entry_page(2)
        result = extractor.extract(html)
        flat = result.services
        for items in truth.values():
            for item in items:
                assert item in flat

    def test_horizontal_menu_bar(self, extractor):
        html = """
        <html><body>
        <a href="/home">Home</a> <a href="/shop">Shop</a>
        <a href="/help">Help</a> <a href="/contact">Contact</a>
        <p>Some body text that is not a menu item at all, truly.</p>
        </body></html>
        """
        result = extractor.extract(html)
        assert len(result.menus) == 1
        assert result.menus[0]["items"] == ("Home", "Shop", "Help", "Contact")

    def test_plain_text_column_is_not_a_menu(self, extractor):
        html = """
        <html><body>
        one<br>two<br>three<br>four
        </body></html>
        """
        result = extractor.extract(html)
        assert result.menus == []

    def test_single_link_is_not_a_menu(self, extractor):
        html = '<html><body><a href="/x">Lonely</a></body></html>'
        result = extractor.extract(html)
        assert result.menus == []
