"""Whole-dataset integration tests: robustness and accuracy floors.

These run the full pipeline over complete generated datasets -- the same
inputs the benchmarks use -- asserting the invariants that make the
benchmark results trustworthy.
"""

import pytest

from repro.datasets.patterns import PATTERNS_BY_ID
from repro.datasets.repository import standard_datasets
from repro.evaluation.harness import EvaluationHarness


@pytest.fixture(scope="module")
def datasets():
    return standard_datasets(scale=0.2)


@pytest.fixture(scope="module")
def evaluated(datasets):
    harness = EvaluationHarness()
    return {name: harness.evaluate(ds) for name, ds in datasets.items()}


class TestRobustness:
    def test_every_source_extracts_without_error(self, evaluated):
        # The harness would have raised otherwise; assert totals.
        for name, result in evaluated.items():
            assert len(result.results) > 0, name

    def test_every_source_yields_conditions(self, evaluated):
        for name, result in evaluated.items():
            for source_result in result.results:
                assert source_result.extracted, source_result.source.name

    def test_scores_bounded(self, evaluated):
        for result in evaluated.values():
            for source_result in result.results:
                assert 0.0 <= source_result.precision <= 1.0
                assert 0.0 <= source_result.recall <= 1.0


class TestAccuracyFloors:
    def test_paper_band(self, evaluated):
        for name, result in evaluated.items():
            assert result.accuracy >= 0.75, (name, result.accuracy)

    def test_no_cliff_across_datasets(self, evaluated):
        accuracies = [result.accuracy for result in evaluated.values()]
        assert max(accuracies) - min(accuracies) <= 0.2

    def test_in_grammar_sources_extract_perfectly(self, evaluated):
        imperfect_clean = []
        for result in evaluated.values():
            for source_result in result.results:
                rare = any(
                    not PATTERNS_BY_ID[p].in_grammar
                    for p in source_result.source.patterns_used
                )
                if not rare and (
                    source_result.precision < 1.0
                    or source_result.recall < 1.0
                ):
                    imperfect_clean.append(source_result.source.name)
        assert imperfect_clean == [], imperfect_clean

    def test_rare_pattern_sources_are_the_error_channel(self, evaluated):
        # Every imperfect source must contain a rare pattern -- the
        # controlled incompleteness channel of the experiment design.
        for result in evaluated.values():
            for source_result in result.results:
                if source_result.precision < 1.0 or source_result.recall < 1.0:
                    assert any(
                        not PATTERNS_BY_ID[p].in_grammar
                        for p in source_result.source.patterns_used
                    ), source_result.source.name


class TestDeterminism:
    def test_dataset_evaluation_reproducible(self, datasets):
        harness = EvaluationHarness()
        first = harness.evaluate(datasets["NewSource"])
        second = harness.evaluate(datasets["NewSource"])
        assert first.precisions == second.precisions
        assert first.recalls == second.recalls
