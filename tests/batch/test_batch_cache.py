"""Batch-level caching and dedupe: pooled prefill, replicas, reporting."""

from __future__ import annotations

import pytest

from repro.batch import BatchExtractor, usable_cores
from repro.cache import ExtractionCache
from repro.datasets.domains import DOMAINS
from repro.datasets.generator import GeneratorProfile, SourceGenerator
from repro.extractor import FormExtractor
from repro.semantics.serialize import model_to_dict


def _distinct_sources(count=2):
    profile = GeneratorProfile(min_conditions=2, max_conditions=4)
    names = sorted(DOMAINS)
    return [
        SourceGenerator(DOMAINS[names[i % len(names)]], profile)
        .generate(seed=41_000 + i)
        .html
        for i in range(count)
    ]


_A, _B = _distinct_sources()
#: Duplicated batch: indices 2, 3, 5 are followers of 0; index 4 of 1.
_DUPLICATED = [_A, _B, _A, _A, _B, _A]


def _model_dicts(report):
    return [
        model_to_dict(m) if m is not None else None for m in report.models
    ]


class TestPooledDedupe:
    def test_duplicates_collapse_onto_leaders(self):
        baseline = BatchExtractor(jobs=1).extract_html(_DUPLICATED)
        with BatchExtractor(jobs=2) as batch:
            report = batch.extract_html(_DUPLICATED)
        assert not report.errors
        assert _model_dicts(report) == _model_dicts(baseline)
        assert report.dedupe_collapsed == 4
        assert [r.deduped for r in report.records] == [
            False, False, True, True, True, True
        ]
        # Replayed stats keep aggregate sums identical to a recompute.
        assert (
            report.stats.combos_examined == baseline.stats.combos_examined
        )
        assert report.stats.tokens == baseline.stats.tokens

    def test_replicas_are_fresh_objects(self):
        with BatchExtractor(jobs=2) as batch:
            report = batch.extract_html([_A, _A])
        leader, follower = report.records
        assert follower.deduped and not leader.deduped
        assert leader.model is not follower.model
        assert model_to_dict(leader.model) == model_to_dict(follower.model)
        assert follower.elapsed_seconds == 0.0

    def test_token_batches_dedupe_too(self):
        tokens = FormExtractor().extract_detailed(_A).tokens
        with BatchExtractor(jobs=2) as batch:
            report = batch.extract_tokens([tokens, tokens, tokens])
        assert not report.errors
        assert report.dedupe_collapsed == 2

    def test_unsignable_inputs_dispatch_individually(self):
        tokens = FormExtractor().extract_detailed(_A).tokens
        with BatchExtractor(jobs=2) as batch:
            report = batch.extract_tokens([tokens, [object()], tokens])
        assert [r.ok for r in report.records] == [True, False, True]
        assert report.dedupe_collapsed == 1  # the two token copies


class TestPooledCache:
    def test_second_pass_is_served_from_cache(self):
        with BatchExtractor(jobs=2, cache=True) as batch:
            cold = batch.extract_html(_DUPLICATED)
            warm = batch.extract_html(_DUPLICATED)
        assert cold.cache_hits == 0
        assert cold.cache_misses == 2  # one lookup per distinct leader
        assert warm.cache_hits == 2
        assert warm.cache_misses == 0
        assert warm.cache_hit_rate == 1.0
        assert all(r.cached for r in warm.records)
        assert _model_dicts(warm) == _model_dicts(cold)
        assert warm.stats.combos_examined == cold.stats.combos_examined

    def test_cache_shared_across_extractors_via_instance(self):
        cache = ExtractionCache()
        with BatchExtractor(jobs=2, cache=cache) as first:
            first.extract_html([_A])
        with BatchExtractor(jobs=2, cache=cache) as second:
            report = second.extract_html([_A])
        assert report.cache_hits == 1

    def test_disk_cache_shared_across_instances(self, tmp_path):
        with BatchExtractor(jobs=2, cache_dir=tmp_path) as first:
            cold = first.extract_html([_A, _B])
        assert (tmp_path / "extraction-cache.jsonl").exists()
        with BatchExtractor(jobs=2, cache_dir=tmp_path) as second:
            warm = second.extract_html([_A, _B])
        assert cold.cache_hits == 0 and warm.cache_hits == 2
        assert _model_dicts(warm) == _model_dicts(cold)

    def test_cache_off_by_default_but_dedupe_still_on(self):
        with BatchExtractor(jobs=2) as batch:
            report = batch.extract_html([_A, _A])
        assert batch.cache is None
        assert report.cache_hits == 0 and report.cache_misses == 0
        assert report.cache_hit_rate == 0.0
        assert report.dedupe_collapsed == 1

    def test_serial_path_counts_token_level_hits(self):
        report = BatchExtractor(jobs=1, cache=True).extract_html(
            [_A, _B, _A]
        )
        assert report.cache_misses == 2
        assert report.cache_hits == 1
        assert report.records[2].cached


class TestReportSurface:
    def test_summary_carries_cache_keys(self):
        with BatchExtractor(jobs=2, cache=True) as batch:
            batch.extract_html(_DUPLICATED)
            summary = batch.extract_html(_DUPLICATED).summary()
        assert summary["cache.hits"] == 2
        assert summary["cache.misses"] == 0
        assert summary["cache.hit_rate"] == 1.0
        assert summary["dedupe.collapsed"] == 4

    def test_describe_mentions_cache_and_dedupe(self):
        with BatchExtractor(jobs=2, cache=True) as batch:
            batch.extract_html([_A])
            text = batch.extract_html([_A, _A]).describe()
        assert "cache hit(s)" in text
        assert "deduped" in text


class TestWorkerSizing:
    def test_auto_jobs_resolves_to_usable_cores(self):
        batch = BatchExtractor(jobs="auto")
        assert batch.jobs == usable_cores()

    def test_rejects_unknown_jobs_string(self):
        with pytest.raises(ValueError):
            BatchExtractor(jobs="many")

    def test_effective_workers_clamped_to_usable_cores(self):
        batch = BatchExtractor(jobs=512)
        assert batch._effective_workers() == min(512, usable_cores())
        assert BatchExtractor(
            jobs=512, oversubscribe=True
        )._effective_workers() == 512

    def test_auto_chunksize_waves(self):
        auto = BatchExtractor._auto_chunksize
        assert auto(0, 4) == 1
        assert auto(1, 4) == 1
        assert auto(120, 4) == 8  # four waves per worker
        assert auto(10_000, 4) == 64  # capped so results still stream
