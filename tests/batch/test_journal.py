"""Unit tests for the resumable batch journal."""

import json

from repro.batch.journal import BatchJournal, job_key


def _payload(name: str, error: str | None = None) -> dict:
    return {"model": {"name": name}, "error": error}


class TestJobKey:
    def test_binds_position_and_signature(self):
        assert job_key(3, "abc123") == "3:abc123"

    def test_unsigned_inputs_fall_back_to_position(self):
        assert job_key(0, None) == "0:unsigned"


class TestRoundTrip:
    def test_append_then_resume(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        writer = BatchJournal(path)
        writer.append("0:a", _payload("first"))
        writer.append("1:b", _payload("second"))
        reader = BatchJournal(path, resume=True)
        assert len(reader) == 2
        assert reader.corrupt_lines == 0
        assert reader.completed_payload("0:a") == _payload("first")
        assert reader.completed_payload("2:c") is None

    def test_write_only_mode_does_not_load(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        BatchJournal(path).append("0:a", _payload("first"))
        fresh = BatchJournal(path)  # resume=False: checkpoint-only
        assert len(fresh) == 0
        assert fresh.completed_payload("0:a") is None

    def test_missing_file_resumes_empty(self, tmp_path):
        journal = BatchJournal(tmp_path / "absent.jsonl", resume=True)
        assert len(journal) == 0
        assert journal.corrupt_lines == 0

    def test_newest_line_per_key_wins(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        writer = BatchJournal(path)
        writer.append("0:a", _payload("stale"))
        writer.append("0:a", _payload("fresh"))
        reader = BatchJournal(path, resume=True)
        assert reader.completed_payload("0:a") == _payload("fresh")

    def test_error_records_are_not_resume_skippable(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        BatchJournal(path).append("0:a", _payload("broken", error="Boom"))
        reader = BatchJournal(path, resume=True)
        assert len(reader) == 1  # documented ...
        assert reader.completed_payload("0:a") is None  # ... but re-run


class TestDamageTolerance:
    def test_torn_trailing_line_is_quarantined(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        writer = BatchJournal(path)
        writer.append("0:a", _payload("kept"))
        writer.append("1:b", _payload("torn"))
        blob = path.read_bytes()
        path.write_bytes(blob[:-10])  # SIGKILL mid-write
        reader = BatchJournal(path, resume=True)
        assert reader.corrupt_lines == 1
        assert reader.completed_payload("0:a") == _payload("kept")
        assert reader.completed_payload("1:b") is None

    def test_append_heals_a_torn_tail(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        writer = BatchJournal(path)
        writer.append("0:a", _payload("kept"))
        writer.append("1:b", _payload("torn"))
        path.write_bytes(path.read_bytes()[:-10])
        # A successor run appends more records after the torn tail; the
        # new record must not fuse with the fragment.
        BatchJournal(path).append("2:c", _payload("after"))
        reader = BatchJournal(path, resume=True)
        assert reader.corrupt_lines == 1
        assert reader.completed_payload("0:a") == _payload("kept")
        assert reader.completed_payload("2:c") == _payload("after")

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        BatchJournal(path).append("0:a", _payload("original"))
        line = json.loads(path.read_text())
        line["record"]["model"]["name"] = "tampered"
        path.write_text(json.dumps(line) + "\n")
        reader = BatchJournal(path, resume=True)
        assert reader.corrupt_lines == 1
        assert reader.completed_payload("0:a") is None

    def test_foreign_lines_are_quarantined(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(
            "not json at all\n"
            '{"v": 99, "key": "0:a", "record": {}}\n'
            '{"v": 1, "key": 7, "record": {}}\n'
            "\n"
        )
        BatchJournal(path).append("0:a", _payload("good"))
        reader = BatchJournal(path, resume=True)
        assert reader.corrupt_lines == 3  # blank lines are not corruption
        assert reader.completed_payload("0:a") == _payload("good")

    def test_disk_trouble_is_swallowed(self, tmp_path):
        # Checkpointing is best-effort: an unwritable journal must not
        # fail the batch, and the in-memory view still advances.
        journal = BatchJournal(tmp_path)  # a directory: open() fails
        journal.append("0:a", _payload("memory-only"))
        assert journal.completed_payload("0:a") == _payload("memory-only")
