"""Kill-and-resume: SIGKILL a batch mid-flight, resume, lose nothing.

The worker subprocess extracts a fixed list of forms serially, pacing
itself so the parent can observe the journal growing.  Once a few
outcomes are checkpointed the worker is SIGKILLed -- no cleanup, no
``atexit``, possibly mid-write.  A resume run must then skip the
journaled forms, re-extract the rest, and produce the exact union an
uninterrupted run produces.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.batch import BatchExtractor
from repro.datasets.domains import DOMAINS
from repro.datasets.generator import SourceGenerator

FORM_COUNT = 8

WORKER_SCRIPT = """\
import json
import sys
import time

from repro.batch import BatchExtractor

htmls = json.load(open(sys.argv[1], encoding="utf-8"))
batch = BatchExtractor(jobs=1, journal=sys.argv[2])
for record in batch.iter_html(htmls):
    # Pace the run so the parent can kill us with work still pending.
    time.sleep(0.2)
"""


def _sources() -> list[str]:
    generator = SourceGenerator(DOMAINS["Books"])
    return [
        source.html
        for source in generator.generate_many(FORM_COUNT, base_seed=777)
    ]


def _journal_lines(path) -> int:
    try:
        return path.read_bytes().count(b"\n")
    except OSError:
        return 0


@pytest.mark.slow
def test_sigkill_then_resume_recovers_every_form(tmp_path):
    htmls = _sources()
    inputs = tmp_path / "inputs.json"
    inputs.write_text(json.dumps(htmls), encoding="utf-8")
    journal = tmp_path / "journal.jsonl"
    script = tmp_path / "worker.py"
    script.write_text(WORKER_SCRIPT, encoding="utf-8")

    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(repo_src)
    worker = subprocess.Popen(
        [sys.executable, str(script), str(inputs), str(journal)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 60.0
        while _journal_lines(journal) < 3:
            if worker.poll() is not None:
                pytest.fail(
                    f"worker exited early with {worker.returncode} after "
                    f"{_journal_lines(journal)} journal lines"
                )
            if time.monotonic() > deadline:
                pytest.fail("worker never reached 3 journal lines")
            time.sleep(0.05)
        worker.send_signal(signal.SIGKILL)
        worker.wait(timeout=30)
    finally:
        if worker.poll() is None:
            worker.kill()
            worker.wait(timeout=30)

    checkpointed = _journal_lines(journal)
    assert 3 <= checkpointed < FORM_COUNT

    resumed = BatchExtractor(jobs=1, journal=str(journal), resume=True)
    stream = resumed.iter_html(htmls)
    records = list(stream)
    report = stream.report()
    baseline = [
        record.model.describe()
        for record in BatchExtractor(jobs=1).iter_html(htmls)
    ]

    assert [record.error for record in records] == [None] * FORM_COUNT
    assert [record.model.describe() for record in records] == baseline
    assert 1 <= report.resume_skipped <= checkpointed
    assert sum(record.resumed for record in records) == report.resume_skipped
    # A SIGKILL can tear at most the one line being written.
    assert report.journal_corrupt_lines <= 1

    # The resume run re-journals what it re-extracted: a third run skips
    # everything.
    third = BatchExtractor(jobs=1, journal=str(journal), resume=True)
    stream = third.iter_html(htmls)
    list(stream)
    assert stream.report().resume_skipped == FORM_COUNT
