"""Fault tolerance of the batch engine: timeouts, retries, pool recovery.

The contract under test: *a worker never lets one bad form poison the
batch*.  Faults are injected through module-level custom jobs (picklable
by reference) that crash the worker process, hang past the watchdog, or
fail transiently -- the batch must complete with exactly the affected
records marked ``error`` and everything else intact and in input order.
"""

from __future__ import annotations

import os
import time

import pytest

import repro.batch.extractor as batch_module
from repro.batch import BatchExtractor, BatchStream

TINY_FORM = "<form>Title: <input name=title size=12></form>"
OTHER_FORM = "<form>Author: <input name=author size=12></form>"


# -- injectable jobs (module-level: they must pickle by reference) ---------------


def job_extract(extractor, html):
    return extractor.extract_detailed(html)


def job_crash(extractor, arg):
    html, marker = arg
    if marker == "crash":
        os._exit(137)  # simulated OOM kill / segfault
    return extractor.extract_detailed(html)


def job_hang(extractor, arg):
    html, marker = arg
    if marker == "hang":
        time.sleep(30)
    return extractor.extract_detailed(html)


def job_transient(extractor, arg):
    """Fails until its sentinel file exists (state survives retries
    wherever they run: any worker process or the parent)."""
    html, sentinel = arg
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as fh:
            fh.write("attempted")
        raise ConnectionError("transient network hiccup")
    return extractor.extract_detailed(html)


def job_always_fails(extractor, arg):
    raise ValueError(f"permanently broken: {arg}")


class TestWorkerCrashRecovery:
    def test_crash_costs_one_record_not_the_batch(self):
        items = [
            (TINY_FORM, "ok"),
            (TINY_FORM, "crash"),
            (OTHER_FORM, "ok"),
            (TINY_FORM, "ok"),
        ]
        report = BatchExtractor(
            jobs=2, max_pool_restarts=1, retry_backoff=0
        ).extract_custom(job_crash, items)
        assert [record.index for record in report.records] == [0, 1, 2, 3]
        assert [record.ok for record in report.records] == [
            True, False, True, True,
        ]
        assert "WorkerCrash" in report.records[1].error
        assert report.pool_restarts >= 1
        assert report.degraded is True
        for record in report.records:
            if record.ok:
                assert record.model is not None
                assert len(record.model.conditions) == 1

    def test_multiple_crashers_are_each_pinned(self):
        items = [
            (TINY_FORM, "crash"),
            (TINY_FORM, "ok"),
            (TINY_FORM, "crash"),
            (OTHER_FORM, "ok"),
        ]
        report = BatchExtractor(
            jobs=2, max_pool_restarts=0, retry_backoff=0
        ).extract_custom(job_crash, items)
        assert [record.ok for record in report.records] == [
            False, True, False, True,
        ]
        assert all(
            "WorkerCrash" in record.error for record in report.errors
        )
        # max_pool_restarts=0 degrades immediately to the isolation pool.
        assert report.degraded is True

    def test_crash_then_retry_consumes_attempts(self):
        items = [(TINY_FORM, "crash")]
        report = BatchExtractor(
            jobs=2, max_pool_restarts=0, retries=1, retry_backoff=0
        ).extract_custom(job_crash, items)
        (record,) = report.records
        assert not record.ok
        assert record.attempts == 2


class TestTimeouts:
    def test_hung_form_times_out_without_killing_the_pool(self):
        items = [
            (TINY_FORM, "ok"),
            (TINY_FORM, "hang"),
            (OTHER_FORM, "ok"),
        ]
        started = time.perf_counter()
        report = BatchExtractor(jobs=2, timeout=1.0).extract_custom(
            job_hang, items
        )
        elapsed = time.perf_counter() - started
        assert elapsed < 10  # nowhere near the 30s hang
        assert [record.ok for record in report.records] == [True, False, True]
        assert report.records[1].error.startswith("Timeout:")
        assert "1" in report.records[1].error
        # The watchdog aborts the form, not the worker: no pool restart.
        assert report.pool_restarts == 0
        assert report.degraded is False

    def test_serial_path_times_out_too(self):
        items = [(TINY_FORM, "hang"), (TINY_FORM, "ok")]
        report = BatchExtractor(jobs=1, timeout=0.5).extract_custom(
            job_hang, items
        )
        assert [record.ok for record in report.records] == [False, True]
        assert report.records[0].error.startswith("Timeout:")

    def test_timeout_validation(self):
        with pytest.raises(ValueError):
            BatchExtractor(timeout=0)
        with pytest.raises(ValueError):
            BatchExtractor(timeout=-1.0)


class TestRetries:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_transient_failure_recovers_on_retry(self, jobs, tmp_path):
        sentinel = str(tmp_path / f"sentinel-{jobs}")
        report = BatchExtractor(
            jobs=jobs, retries=2, retry_backoff=0
        ).extract_custom(job_transient, [(TINY_FORM, sentinel)])
        (record,) = report.records
        assert record.ok
        assert record.attempts == 2
        assert len(record.model.conditions) == 1

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_permanent_failure_exhausts_attempts(self, jobs):
        report = BatchExtractor(
            jobs=jobs, retries=2, retry_backoff=0
        ).extract_custom(job_always_fails, ["x"])
        (record,) = report.records
        assert not record.ok
        assert record.attempts == 3
        assert "permanently broken" in record.error

    def test_no_retries_by_default(self):
        report = BatchExtractor(jobs=1).extract_custom(job_always_fails, ["x"])
        assert report.records[0].attempts == 1

    def test_retry_validation(self):
        with pytest.raises(ValueError):
            BatchExtractor(retries=-1)
        with pytest.raises(ValueError):
            BatchExtractor(retry_backoff=-0.1)
        with pytest.raises(ValueError):
            BatchExtractor(max_pool_restarts=-1)


class TestSerialPathIsolation:
    def test_serial_path_leaves_worker_global_alone(self):
        # The jobs=1 path must use a local extractor; the module global is
        # strictly worker-side state (a nested or concurrent batch in this
        # process would otherwise see a clobbered extractor).
        before = batch_module._worker_extractor
        report = BatchExtractor(jobs=1).extract_html([TINY_FORM])
        assert batch_module._worker_extractor is before
        assert report.records[0].ok

    def test_nested_serial_batches_do_not_interfere(self):
        outer = BatchExtractor(jobs=1)
        inner_report = {}

        def run_outer():
            stream = outer.iter_html([TINY_FORM, OTHER_FORM])
            first = next(stream)
            # A second batch runs while the first is mid-iteration.
            inner_report["report"] = BatchExtractor(jobs=1).extract_html(
                [OTHER_FORM]
            )
            rest = list(stream)
            return [first, *rest]

        records = run_outer()
        assert [record.ok for record in records] == [True, True]
        assert inner_report["report"].records[0].ok

    def test_serial_extractor_is_reused_across_runs(self):
        batch = BatchExtractor(jobs=1)
        batch.extract_html([TINY_FORM])
        first = batch._serial_extractor
        batch.extract_html([OTHER_FORM])
        assert batch._serial_extractor is first


class TestWallClock:
    def test_wall_clock_starts_when_work_starts(self):
        batch = BatchExtractor(jobs=1)
        stream = batch.iter_html([TINY_FORM, OTHER_FORM])
        time.sleep(0.4)  # idle before any record is pulled
        report = stream.report()
        assert report.wall_seconds < 0.35
        assert len(report.records) == 2

    def test_wall_clock_stops_when_work_ends(self):
        batch = BatchExtractor(jobs=1)
        stream = batch.iter_html([TINY_FORM])
        records = list(stream)  # fully consumed here
        time.sleep(0.4)
        report = stream.report()
        assert report.records == records
        assert report.wall_seconds < 0.35

    def test_stream_exposes_live_info(self):
        batch = BatchExtractor(jobs=1)
        stream = batch.iter_html([TINY_FORM])
        assert isinstance(stream, BatchStream)
        assert stream.info.wall_seconds == 0.0  # not started yet
        next(stream)
        assert stream.info.started is not None


class TestErrorPathRecords:
    def test_empty_batch(self):
        report = BatchExtractor(jobs=1).extract_html([])
        assert report.records == []
        assert report.errors == []
        assert report.stats.tokens == 0
        assert report.wall_seconds >= 0.0

    def test_empty_batch_parallel(self):
        report = BatchExtractor(jobs=2).extract_html([])
        assert report.records == []

    def test_malformed_and_empty_html_stay_best_effort(self):
        sources = ["", "<not html <<<", "<form><select><option>x", TINY_FORM]
        report = BatchExtractor(jobs=1).extract_html(sources)
        assert all(record.ok for record in report.records)
        assert report.records[3].model is not None

    def test_form_with_every_token_unclaimed_reports_missing(self):
        report = BatchExtractor(jobs=1).extract_html(
            ["<form>alpha beta gamma delta</form>"]
        )
        (record,) = report.records
        assert record.ok
        assert record.model.missing  # merger missing_tokens surface
        assert record.trace is not None
        merge_span = next(
            span for span in record.trace["spans"] if span["name"] == "merge"
        )
        assert merge_span["counters"]["missing"] >= 1

    def test_worker_exception_becomes_error_record(self):
        report = BatchExtractor(jobs=2).extract_tokens(
            [[object()], []]
        )
        assert [record.ok for record in report.records] == [False, True]
        assert report.records[0].error
        assert report.records[0].model is None

    def test_no_form_fallback_warning_crosses_the_pool(self):
        page = "<html><body>Query: <input name=q></body></html>"
        for jobs in (1, 2):
            report = BatchExtractor(jobs=jobs).extract_html([page])
            (record,) = report.records
            assert any("no <form>" in warning for warning in record.warnings)

    def test_records_carry_traces_across_the_pool(self):
        report = BatchExtractor(jobs=2).extract_html([TINY_FORM, OTHER_FORM])
        for record in report.records:
            names = [span["name"] for span in record.trace["spans"]]
            assert names == [
                "html-parse", "tokenize", "parse.construct",
                "parse.maximize", "merge",
            ]


class TestCustomJobs:
    def test_custom_job_matches_builtin_extraction(self):
        custom = BatchExtractor(jobs=1).extract_custom(
            job_extract, [TINY_FORM, OTHER_FORM]
        )
        builtin = BatchExtractor(jobs=1).extract_html([TINY_FORM, OTHER_FORM])
        assert [str(m.conditions) for m in custom.models] == [
            str(m.conditions) for m in builtin.models
        ]

    def test_custom_job_parallel(self):
        report = BatchExtractor(jobs=2).extract_custom(
            job_extract, [TINY_FORM, OTHER_FORM, TINY_FORM]
        )
        assert all(record.ok for record in report.records)
        assert [record.index for record in report.records] == [0, 1, 2]


class TestAcceptance:
    """The ISSUE acceptance scenario: one injected crash plus one injected
    hang in the same batch -- exactly those two records error, all others
    intact and in input order."""

    def test_crash_and_hang_in_one_batch(self):
        items = [
            (TINY_FORM, "ok"),
            (TINY_FORM, "crash"),
            (OTHER_FORM, "ok"),
            (TINY_FORM, "hang"),
            (OTHER_FORM, "ok"),
        ]

        report = BatchExtractor(
            jobs=2, timeout=1.0, max_pool_restarts=1, retry_backoff=0
        ).extract_custom(job_crash_or_hang, items)
        assert [record.index for record in report.records] == [0, 1, 2, 3, 4]
        assert [record.ok for record in report.records] == [
            True, False, True, False, True,
        ]
        assert "WorkerCrash" in report.records[1].error
        assert report.records[3].error.startswith("Timeout:")
        for record in report.records:
            if record.ok:
                assert len(record.model.conditions) == 1


def job_crash_or_hang(extractor, arg):
    html, marker = arg
    if marker == "crash":
        os._exit(137)
    if marker == "hang":
        time.sleep(30)
    return extractor.extract_detailed(html)
