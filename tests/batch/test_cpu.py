"""Usable-core detection: affinity, cgroup quotas, fallbacks."""

from __future__ import annotations

import os

from repro.batch import usable_cores
from repro.batch import cpu as cpu_mod


def _fake_cgroup_v2(monkeypatch, tmp_path, content):
    path = tmp_path / "cpu.max"
    path.write_text(content, encoding="ascii")
    monkeypatch.setattr(cpu_mod, "_CGROUP_V2_CPU_MAX", str(path))


def _no_cgroups(monkeypatch, tmp_path):
    monkeypatch.setattr(
        cpu_mod, "_CGROUP_V2_CPU_MAX", str(tmp_path / "absent-v2")
    )
    monkeypatch.setattr(
        cpu_mod, "_CGROUP_V1_QUOTA", str(tmp_path / "absent-quota")
    )
    monkeypatch.setattr(
        cpu_mod, "_CGROUP_V1_PERIOD", str(tmp_path / "absent-period")
    )


class TestUsableCores:
    def test_at_least_one_core_and_bounded_by_cpu_count(self):
        cores = usable_cores()
        assert isinstance(cores, int)
        assert 1 <= cores <= (os.cpu_count() or 1)

    def test_matches_affinity_without_quota(self, monkeypatch, tmp_path):
        _no_cgroups(monkeypatch, tmp_path)
        expected = (
            len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else os.cpu_count() or 1
        )
        assert cpu_mod.usable_cores() == expected

    def test_quota_narrows_the_affinity_mask(self, monkeypatch, tmp_path):
        _fake_cgroup_v2(monkeypatch, tmp_path, "100000 100000\n")
        assert cpu_mod.usable_cores() == 1


class TestCgroupQuota:
    def test_v2_whole_cores(self, monkeypatch, tmp_path):
        _fake_cgroup_v2(monkeypatch, tmp_path, "400000 100000")
        assert cpu_mod.cgroup_cpu_quota() == 4

    def test_v2_fractional_rounds_up(self, monkeypatch, tmp_path):
        _fake_cgroup_v2(monkeypatch, tmp_path, "50000 100000")
        assert cpu_mod.cgroup_cpu_quota() == 1
        _fake_cgroup_v2(monkeypatch, tmp_path, "250000 100000")
        assert cpu_mod.cgroup_cpu_quota() == 3

    def test_v2_unlimited(self, monkeypatch, tmp_path):
        _fake_cgroup_v2(monkeypatch, tmp_path, "max 100000")
        assert cpu_mod.cgroup_cpu_quota() is None

    def test_v2_garbage_is_ignored(self, monkeypatch, tmp_path):
        _fake_cgroup_v2(monkeypatch, tmp_path, "pancakes waffles")
        assert cpu_mod.cgroup_cpu_quota() is None

    def test_v1_quota(self, monkeypatch, tmp_path):
        monkeypatch.setattr(
            cpu_mod, "_CGROUP_V2_CPU_MAX", str(tmp_path / "absent")
        )
        quota = tmp_path / "cpu.cfs_quota_us"
        period = tmp_path / "cpu.cfs_period_us"
        quota.write_text("200000")
        period.write_text("100000")
        monkeypatch.setattr(cpu_mod, "_CGROUP_V1_QUOTA", str(quota))
        monkeypatch.setattr(cpu_mod, "_CGROUP_V1_PERIOD", str(period))
        assert cpu_mod.cgroup_cpu_quota() == 2
        quota.write_text("-1")  # v1 spelling of "unlimited"
        assert cpu_mod.cgroup_cpu_quota() is None

    def test_no_cgroup_files(self, monkeypatch, tmp_path):
        _no_cgroups(monkeypatch, tmp_path)
        assert cpu_mod.cgroup_cpu_quota() is None
