"""Batch extraction engine: ordering, aggregation, errors, parallelism."""

from __future__ import annotations

import pytest

from repro.batch import BatchExtractor, BatchRecord, BatchReport
from repro.datasets.domains import DOMAINS
from repro.datasets.generator import GeneratorProfile, SourceGenerator
from repro.extractor import FormExtractor
from repro.parser.parser import ParserConfig, ParseStats


def _sources(count=6):
    profile = GeneratorProfile(min_conditions=2, max_conditions=5)
    names = sorted(DOMAINS)
    return [
        SourceGenerator(DOMAINS[names[i % len(names)]], profile)
        .generate(seed=31_000 + i)
        .html
        for i in range(count)
    ]


_SOURCES = _sources()


class TestSerialPath:
    def test_matches_plain_extractor_loop(self):
        extractor = FormExtractor()
        expected = [extractor.extract(html) for html in _SOURCES]
        report = BatchExtractor(jobs=1).extract_html(_SOURCES)
        assert not report.errors
        assert [str(m.conditions) for m in report.models] == [
            str(m.conditions) for m in expected
        ]

    def test_records_arrive_in_input_order(self):
        records = list(BatchExtractor().iter_html(_SOURCES))
        assert [record.index for record in records] == list(
            range(len(_SOURCES))
        )

    def test_token_batches(self):
        extractor = FormExtractor()
        token_sets = [
            extractor.extract_detailed(html).tokens for html in _SOURCES[:3]
        ]
        report = BatchExtractor().extract_tokens(token_sets)
        assert not report.errors
        assert report.stats.tokens == sum(len(t) for t in token_sets)

    def test_parser_config_is_forwarded(self):
        config = ParserConfig(max_instances=5, max_combos_per_instance=2)
        report = BatchExtractor(parser_config=config).extract_html(
            _SOURCES[:2]
        )
        assert report.stats.truncated

    def test_bad_input_becomes_error_record(self):
        report = BatchExtractor().extract_tokens(
            [[object()]]  # not tokens: the pipeline raises, the batch not
        )
        assert len(report.errors) == 1
        record = report.errors[0]
        assert not record.ok
        assert record.model is None
        assert record.error

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            BatchExtractor(jobs=0)


class TestReportAggregation:
    def test_stats_sum_elementwise(self):
        a = ParseStats(tokens=10, instances_created=4, combos_examined=20)
        b = ParseStats(
            tokens=5, instances_created=2, combos_examined=7, truncated=True
        )
        report = BatchReport(
            records=[
                BatchRecord(index=0, stats=a, elapsed_seconds=0.5),
                BatchRecord(index=1, stats=b, elapsed_seconds=0.25),
                BatchRecord(index=2, error="boom", elapsed_seconds=0.01),
            ],
            jobs=2,
            wall_seconds=0.5,
        )
        total = report.stats
        assert total.tokens == 15
        assert total.instances_created == 6
        assert total.combos_examined == 27
        assert total.truncated is True
        assert report.cpu_seconds == pytest.approx(0.76)
        summary = report.summary()
        assert summary["forms"] == 3
        assert summary["errors"] == 1
        assert summary["jobs"] == 2
        assert "3 forms with 2 job(s)" in report.describe()


class TestParallelPath:
    """Worker-pool runs must be byte-identical to the serial path.

    The pool is exercised with ``jobs=2`` on a small batch; correctness,
    ordering, and error isolation do not depend on core count.
    """

    def test_matches_serial_results(self):
        serial = BatchExtractor(jobs=1).extract_html(_SOURCES)
        parallel = BatchExtractor(jobs=2).extract_html(_SOURCES)
        assert not parallel.errors
        assert parallel.jobs == 2
        assert [str(m.conditions) for m in parallel.models] == [
            str(m.conditions) for m in serial.models
        ]
        assert [r.index for r in parallel.records] == [
            r.index for r in serial.records
        ]
        assert parallel.stats.combos_examined == serial.stats.combos_examined

    def test_worker_error_does_not_poison_batch(self):
        extractor = FormExtractor()
        tokens = extractor.extract_detailed(_SOURCES[0]).tokens
        report = BatchExtractor(jobs=2).extract_tokens(
            [tokens, [object()], tokens]
        )
        assert [record.ok for record in report.records] == [True, False, True]
        assert report.records[1].error
