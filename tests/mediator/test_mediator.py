"""Tests for the mediator and the result-page parser."""

import pytest

from repro.mediator import Mediator
from repro.query.planner import Constraint
from repro.semantics.matching import normalize_attribute
from repro.webdb.resultparse import parse_result_page
from repro.webdb.source import SimulatedSource


@pytest.fixture(scope="module")
def mediator():
    med = Mediator()
    for seed in (81_001, 81_002, 81_003, 81_004):
        med.add_source(
            SimulatedSource.create("Books", seed=seed, record_count=60)
        )
    return med


def source_of(mediator, name):
    return next(
        source for source in mediator._sources
        if source.generated.name == name
    )


class TestOnboarding:
    def test_descriptions_stored(self, mediator):
        assert len(mediator.source_names) == 4
        for name in mediator.source_names:
            model = mediator.description_of(name)
            assert model is not None
            assert len(model.conditions) > 0

    def test_description_is_extracted_not_truth(self, mediator):
        # The mediator must not have peeked at ground truth: descriptions
        # come from FormExtractor over HTML.
        name = mediator.source_names[0]
        source = source_of(mediator, name)
        model = mediator.description_of(name)
        extracted_attrs = {
            normalize_attribute(c.attribute) for c in model.conditions
        }
        truth_attrs = {
            normalize_attribute(c.attribute) for c in source.generated.truth
        }
        # Extracted attributes overlap the truth heavily (sanity), and the
        # description exists independently of it.
        assert extracted_attrs & truth_attrs


class TestRouting:
    def test_capability_based_selection(self, mediator):
        query = [Constraint("Format", "Hardcover")]
        capable = mediator.capable_sources(query)
        answer = mediator.query(query)
        assert answer.sources_queried == capable
        for name in answer.sources_skipped:
            assert name not in capable

    def test_skipped_sources_carry_reasons(self, mediator):
        query = [Constraint("Quantum flux", "yes")]
        answer = mediator.query(query)
        assert answer.sources_queried == []
        for source_answer in answer.answers:
            assert "no condition" in source_answer.skipped_reason

    def test_records_tagged_with_provenance(self, mediator):
        query = [Constraint("Format", "Hardcover")]
        answer = mediator.query(query)
        for name, record in answer.records:
            assert name in answer.sources_queried
            assert record["Format"] == "Hardcover"

    def test_partial_mode_queries_more(self, mediator):
        query = [
            Constraint("Format", "Hardcover"),
            Constraint("Quantum flux", "yes"),
        ]
        strict = mediator.query(query)
        partial = mediator.query(query, partial=True)
        assert len(partial.sources_queried) >= len(strict.sources_queried)

    def test_empty_query_hits_every_source(self, mediator):
        answer = mediator.query([])
        assert set(answer.sources_queried) == set(mediator.source_names)


class TestResultPageParsing:
    @pytest.fixture(scope="class")
    def source(self):
        return SimulatedSource.create("Books", seed=81_001, record_count=60)

    def test_round_trip_counts(self, source):
        page = source.result_page({})
        total, records = parse_result_page(page.html)
        assert total == len(page.records)
        assert len(records) == min(50, len(page.records))

    def test_round_trip_values(self, source):
        page = source.result_page({})
        _, records = parse_result_page(page.html)
        original = page.records[0]
        parsed = records[0]
        for label, value in parsed.items():
            assert value == str(original[label])

    def test_empty_result_page(self, source):
        page = source.result_page(
            {"nonexistent_field": ["x"]}
        )
        total, records = parse_result_page(page.html)
        assert total == len(page.records)

    def test_pageless_html(self):
        total, records = parse_result_page("<html><body>nope</body></html>")
        assert total == 0
        assert records == []

    def test_garbage_html(self):
        parse_result_page("<<<>>>")  # must not raise
