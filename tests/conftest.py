"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.grammar.example_g import build_example_grammar
from repro.grammar.standard import build_standard_grammar
from repro.layout.box import BBox
from repro.tokens.model import Token


@pytest.fixture(scope="session")
def standard_grammar():
    """The derived global grammar (built once per session)."""
    return build_standard_grammar()


@pytest.fixture(scope="session")
def example_grammar():
    """The paper's example grammar G (Figure 6)."""
    return build_example_grammar()


def make_token(
    token_id: int,
    terminal: str,
    left: float,
    top: float,
    width: float = 60.0,
    height: float = 19.0,
    **attrs,
) -> Token:
    """Construct a token at an absolute position (test helper)."""
    return Token(
        id=token_id,
        terminal=terminal,
        bbox=BBox(left, left + width, top, top + height),
        attrs=attrs,
    )


@pytest.fixture()
def token_factory():
    """Factory fixture building positioned tokens with auto ids."""
    counter = {"next": 0}

    def factory(terminal: str, left: float, top: float, width: float = 60.0,
                height: float = 19.0, **attrs) -> Token:
        token = make_token(
            counter["next"], terminal, left, top, width, height, **attrs
        )
        counter["next"] += 1
        return token

    return factory
