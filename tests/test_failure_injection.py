"""Failure injection: the extractor must degrade, never die.

The best-effort contract stated operationally: we take well-formed
generated sources and break them -- truncate the HTML mid-tag, strip
closing tags, drop attributes, splice junk, shuffle structure -- and the
extractor must still return a semantic model (possibly a worse one)
without raising.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.repository import build_basic
from repro.extractor import FormExtractor
from repro.merger.merger import Merger


@pytest.fixture(scope="module")
def extractor():
    return FormExtractor()


@pytest.fixture(scope="module")
def sources():
    return build_basic(sources_per_domain=3).sources


def mutate_truncate(html: str, rng: random.Random) -> str:
    cut = rng.randint(len(html) // 3, len(html) - 1)
    return html[:cut]


def mutate_strip_closers(html: str, rng: random.Random) -> str:
    for tag in ("</td>", "</tr>", "</table>", "</form>", "</select>"):
        html = html.replace(tag, "")
    return html


def mutate_drop_quotes(html: str, rng: random.Random) -> str:
    return html.replace('"', "")

def mutate_splice_junk(html: str, rng: random.Random) -> str:
    junk = "<<<&&& <p <input <!-- never closed"
    position = rng.randint(0, len(html))
    return html[:position] + junk + html[position:]


def mutate_uppercase(html: str, rng: random.Random) -> str:
    return html.upper()


def mutate_double_form(html: str, rng: random.Random) -> str:
    return html.replace("<form", "<form><form", 1)


def mutate_strip_names(html: str, rng: random.Random) -> str:
    import re

    return re.sub(r'name="[^"]*"', "", html)


MUTATIONS = [
    mutate_truncate,
    mutate_strip_closers,
    mutate_drop_quotes,
    mutate_splice_junk,
    mutate_uppercase,
    mutate_double_form,
    mutate_strip_names,
]


class TestMutatedSources:
    @pytest.mark.parametrize("mutation", MUTATIONS,
                             ids=lambda m: m.__name__)
    def test_extractor_survives(self, extractor, sources, mutation):
        rng = random.Random(99)
        for source in sources:
            mutated = mutation(source.html, rng)
            detail = extractor.extract_detailed(mutated)
            assert detail.model is not None
            # Structural invariants still hold on broken input.
            token_ids = {token.id for token in detail.tokens}
            for tree in detail.parse.trees:
                assert tree.coverage <= token_ids

    def test_strip_closers_keeps_most_conditions(self, extractor, sources):
        # Browsers recover from missing </td>/</tr>; so must we -- this is
        # a *quality* floor, not just a no-crash floor.
        rng = random.Random(7)
        kept = 0
        total = 0
        for source in sources:
            base = len(extractor.extract(source.html).conditions)
            broken = len(
                extractor.extract(
                    mutate_strip_closers(source.html, rng)
                ).conditions
            )
            total += base
            kept += min(base, broken)
        assert kept >= 0.8 * total

    def test_merger_handles_mutants(self, extractor, sources):
        rng = random.Random(3)
        merger = Merger()
        for source in sources[:4]:
            mutated = mutate_splice_junk(source.html, rng)
            detail = extractor.extract_detailed(mutated)
            report = merger.merge(detail.parse)
            assert report.model is not None


class TestDegenerateInputs:
    @pytest.mark.parametrize("html", [
        "",
        " ",
        "\x00" * 64,
        "<form>" * 50,
        "<input>" * 40,
        "<table>" + "<tr><td>" * 60,
        "<form><select>" + "<option>x" * 500 + "</select></form>",
        "<form>" + "word " * 600 + "</form>",
    ], ids=["empty", "blank", "nulls", "nested-forms", "input-spam",
            "ragged-table", "huge-select", "text-wall"])
    def test_survives(self, extractor, html):
        model = extractor.extract(html)
        assert model is not None

    def test_enormous_flat_form_respects_budget(self, extractor):
        from repro.parser.parser import ParserConfig

        html = "<form>" + "".join(
            f"Label{i}: <input name=f{i} size=8> " for i in range(70)
        ) + "</form>"
        bounded = FormExtractor(
            parser_config=ParserConfig(max_instances=5_000)
        )
        detail = bounded.extract_detailed(html)
        assert detail.parse.stats.instances_created <= 5_000 + 200
