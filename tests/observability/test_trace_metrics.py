"""Unit tests for the observability layer: traces, metrics, structured logs."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.observability.logs import (
    JsonLineFormatter,
    configure_logging,
    get_logger,
    log_event,
)
from repro.observability.metrics import (
    MetricsRegistry,
    get_global_registry,
    reset_global_registry,
)
from repro.observability.trace import Span, Trace


class TestTrace:
    def test_span_context_manager_times_and_appends(self):
        trace = Trace()
        with trace.span("tokenize") as span:
            span.count("tokens", 7)
        assert [s.name for s in trace.spans] == ["tokenize"]
        assert trace.spans[0].seconds >= 0
        assert trace.spans[0].counters == {"tokens": 7}
        assert trace.outcome == "ok"

    def test_span_records_errors_and_reraises(self):
        trace = Trace()
        with pytest.raises(ValueError):
            with trace.span("parse"):
                raise ValueError("boom")
        assert trace.outcome == "error"
        assert trace.spans[0].tags["error"] == "ValueError"

    def test_add_span_and_lookup(self):
        trace = Trace()
        trace.add_span("parse.construct", 0.5, counters={"instances": 3})
        trace.add_span("parse.maximize", 0.25)
        assert trace.span_named("parse.maximize").seconds == 0.25
        assert trace.span_named("nope") is None
        assert trace.total_seconds == pytest.approx(0.75)

    def test_warnings_and_tags(self):
        trace = Trace()
        trace.warn("no form element")
        trace.tags["form_fallback"] = True
        payload = trace.to_dict()
        assert payload["warnings"] == ["no form element"]
        assert payload["tags"] == {"form_fallback": True}

    def test_round_trips_through_dict(self):
        trace = Trace()
        with trace.span("merge") as span:
            span.count("conditions", 2)
            span.tags["note"] = "x"
        trace.warn("w")
        clone = Trace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert [s.name for s in clone.spans] == ["merge"]
        assert clone.spans[0].counters == {"conditions": 2}
        assert clone.spans[0].tags == {"note": "x"}
        assert clone.warnings == ["w"]

    def test_span_count_accumulates(self):
        span = Span(name="s")
        span.count("x")
        span.count("x", 4)
        assert span.counters == {"x": 5}


class TestMetricsRegistry:
    def test_counters(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.counter("a") == 5
        assert registry.counter("missing") == 0

    def test_histograms(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            registry.observe("h", value)
        histogram = registry.histogram("h")
        assert histogram.count == 3
        assert histogram.total == 6.0
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == 2.0

    def test_record_trace_folds_spans_and_counters(self):
        trace = Trace()
        trace.add_span("parse.construct", 0.5, counters={"instances_created": 9})
        trace.warn("degraded")
        registry = MetricsRegistry()
        registry.record_trace(trace)
        registry.record_trace(trace.to_dict())  # dict form, as shipped by workers
        assert registry.counter("extract.ok") == 2
        assert registry.counter("span.parse.construct.instances_created") == 18
        assert registry.counter("extract.warnings") == 2
        assert registry.histogram("span.parse.construct.seconds").count == 2

    def test_to_json_is_valid_and_sorted(self):
        registry = MetricsRegistry()
        registry.inc("z")
        registry.inc("a")
        registry.observe("h", 1.5)
        payload = json.loads(registry.to_json())
        assert list(payload["counters"]) == ["a", "z"]
        assert payload["histograms"]["h"]["count"] == 1

    def test_empty_histogram_serializes_zeroes(self):
        from repro.observability.metrics import HistogramSummary

        assert HistogramSummary().to_dict() == {
            "count": 0, "total": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0,
        }

    def test_global_registry_reset(self):
        get_global_registry().inc("test.marker")
        assert get_global_registry().counter("test.marker") >= 1
        reset_global_registry()
        assert get_global_registry().counter("test.marker") == 0


class TestStructuredLogs:
    def teardown_method(self):
        # Detach whatever handler a test attached.
        root = logging.getLogger("repro")
        for handler in list(root.handlers):
            if getattr(handler, "_repro_configured", False):
                root.removeHandler(handler)

    def test_get_logger_namespaces(self):
        assert get_logger("batch").name == "repro.batch"
        assert get_logger("repro.extractor").name == "repro.extractor"

    def test_plain_lines_carry_fields(self):
        stream = io.StringIO()
        configure_logging(level=logging.INFO, stream=stream)
        log_event(get_logger("test"), logging.INFO, "unit.event", n=3, ok=True)
        line = stream.getvalue().strip()
        assert "unit.event" in line
        assert "n=3" in line and "ok=True" in line

    def test_json_lines_are_parseable(self):
        stream = io.StringIO()
        configure_logging(json_output=True, level=logging.DEBUG, stream=stream)
        log_event(
            get_logger("test"), logging.WARNING, "unit.json_event",
            index=4, error="Timeout: 2s",
        )
        payload = json.loads(stream.getvalue().strip())
        assert payload["event"] == "unit.json_event"
        assert payload["level"] == "WARNING"
        assert payload["logger"] == "repro.test"
        assert payload["index"] == 4
        assert payload["error"] == "Timeout: 2s"

    def test_configure_twice_replaces_handler(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging(stream=first)
        configure_logging(stream=second)
        log_event(get_logger("test"), logging.INFO, "only.second")
        assert "only.second" not in first.getvalue()
        assert "only.second" in second.getvalue()

    def test_exception_rendered_in_json(self):
        formatter = JsonLineFormatter()
        try:
            raise RuntimeError("bad")
        except RuntimeError:
            import sys

            record = logging.LogRecord(
                "repro.test", logging.ERROR, __file__, 1, "evt",
                None, sys.exc_info(),
            )
        payload = json.loads(formatter.format(record))
        assert "RuntimeError: bad" in payload["exception"]

    def test_silent_by_default(self, capsys):
        # No configure_logging call -> NullHandler swallows everything.
        log_event(get_logger("quiet"), logging.WARNING, "should.not.appear")
        captured = capsys.readouterr()
        assert "should.not.appear" not in captured.err + captured.out
