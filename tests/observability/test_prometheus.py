"""Prometheus text exposition: naming, rendering, and the round trip."""

from __future__ import annotations

import pytest

from repro.observability import (
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
)
from repro.observability.prometheus import metric_name


class TestMetricName:
    @pytest.mark.parametrize(
        ("raw", "flat"),
        [
            ("serve.requests", "repro_serve_requests"),
            ("stage.html-parse.seconds", "repro_stage_html_parse_seconds"),
            ("degrade.capped", "repro_degrade_capped"),
            ("a b/c", "repro_a_b_c"),
        ],
    )
    def test_sanitizes_to_prometheus_grammar(self, raw, flat):
        assert metric_name(raw) == flat

    def test_prefix_is_optional(self):
        assert metric_name("serve.requests", prefix="") == "serve_requests"

    def test_leading_digit_without_prefix_is_escaped(self):
        name = metric_name("2p.grammar", prefix="")
        assert name == "_2p_grammar"


class TestRender:
    def test_counters_become_total_samples(self):
        registry = MetricsRegistry()
        registry.inc("serve.requests", 3)
        text = render_prometheus(registry)
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 3" in text.splitlines()

    def test_counter_already_named_total_is_not_doubled(self):
        registry = MetricsRegistry()
        registry.inc("serve.requests.total")
        text = render_prometheus(registry)
        assert "total_total" not in text

    def test_histograms_become_summary_plus_min_max(self):
        registry = MetricsRegistry()
        registry.observe("serve.latency.seconds", 0.25)
        registry.observe("serve.latency.seconds", 0.75)
        samples = parse_prometheus(render_prometheus(registry))
        assert samples["repro_serve_latency_seconds_count"] == 2
        assert samples["repro_serve_latency_seconds_sum"] == 1.0
        assert samples["repro_serve_latency_seconds_min"] == 0.25
        assert samples["repro_serve_latency_seconds_max"] == 0.75

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_output_is_deterministic(self):
        registry = MetricsRegistry()
        for name in ("b.two", "a.one", "c.three"):
            registry.inc(name)
        registry.observe("z.seconds", 1.0)
        assert render_prometheus(registry) == render_prometheus(registry)

    def test_rendering_does_not_mutate_the_registry(self):
        registry = MetricsRegistry()
        registry.inc("serve.requests")
        before = registry.to_dict()
        render_prometheus(registry)
        assert registry.to_dict() == before


class TestParse:
    def test_round_trips_a_real_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("serve.requests", 7)
        registry.inc("serve.shed")
        registry.observe("serve.queue.depth", 3)
        samples = parse_prometheus(render_prometheus(registry))
        assert samples["repro_serve_requests_total"] == 7
        assert samples["repro_serve_shed_total"] == 1
        assert samples["repro_serve_queue_depth_count"] == 1

    def test_comments_and_blanks_are_skipped(self):
        samples = parse_prometheus("# HELP x\n\nfoo 1\n# TYPE foo counter\n")
        assert samples == {"foo": 1.0}

    def test_malformed_sample_raises(self):
        with pytest.raises(ValueError):
            parse_prometheus("just-a-name\n")
