"""Property-style invariants of the source generator, over many seeds."""

import pytest

from repro.datasets.domains import DOMAINS
from repro.datasets.generator import SourceGenerator
from repro.datasets.patterns import PATTERNS_BY_ID
from repro.html.parser import parse_html
from repro.tokens.tokenizer import FormTokenizer

DOMAIN_SEEDS = [
    (domain, seed)
    for domain in ("Books", "Airfares", "Hotels")
    for seed in range(55_000, 55_008)
]


@pytest.mark.parametrize("domain,seed", DOMAIN_SEEDS)
class TestGeneratedSourceInvariants:
    def test_single_well_formed_form(self, domain, seed):
        source = SourceGenerator(DOMAINS[domain]).generate(seed)
        document = parse_html(source.html)
        assert len(document.forms) == 1

    def test_truth_fields_exist_in_markup(self, domain, seed):
        source = SourceGenerator(DOMAINS[domain]).generate(seed)
        for condition in source.truth:
            for field_name in condition.fields:
                assert f'name="{field_name}"' in source.html, (
                    condition, field_name,
                )

    def test_patterns_used_are_catalogued(self, domain, seed):
        source = SourceGenerator(DOMAINS[domain]).generate(seed)
        assert all(p in PATTERNS_BY_ID for p in source.patterns_used)

    def test_tokens_well_formed(self, domain, seed):
        source = SourceGenerator(DOMAINS[domain]).generate(seed)
        document = parse_html(source.html)
        tokens = FormTokenizer(document).tokenize(document.forms[0])
        assert [t.id for t in tokens] == list(range(len(tokens)))
        tops = [t.bbox.top for t in tokens]
        assert tops == sorted(tops)
        for token in tokens:
            assert token.bbox.width >= 0 and token.bbox.height >= 0

    def test_every_truth_condition_has_input(self, domain, seed):
        source = SourceGenerator(DOMAINS[domain]).generate(seed)
        assert all(condition.fields for condition in source.truth)
