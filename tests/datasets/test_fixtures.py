"""Tests for the handcrafted paper fixtures."""

import pytest

from repro.datasets.fixtures import (
    QAA_HTML,
    QAA_VARIANT_HTML,
    QAM_FRAGMENT_HTML,
    QAM_HTML,
    qaa_ground_truth,
    qaa_variant_ground_truth,
    qam_fragment_ground_truth,
    qam_ground_truth,
)
from repro.evaluation.metrics import per_source_metrics
from repro.extractor import FormExtractor
from repro.html.parser import parse_html
from repro.tokens.tokenizer import tokenize_html


@pytest.fixture(scope="module")
def extractor():
    return FormExtractor()


class TestQamFixture:
    def test_five_conditions(self):
        # Paper Section 1: amazon.com supports five conditions.
        assert len(qam_ground_truth()) == 5

    def test_author_operators_match_paper(self):
        author = qam_ground_truth()[0]
        assert author.operators == (
            "first name/initials and last name",
            "start(s) of last name",
            "exact name",
        )

    def test_single_form(self):
        assert len(parse_html(QAM_HTML).forms) == 1

    def test_perfect_extraction(self, extractor):
        metrics = per_source_metrics(
            list(extractor.extract(QAM_HTML).conditions), qam_ground_truth()
        )
        assert metrics.precision == metrics.recall == 1.0


class TestQamFragment:
    def test_sixteen_tokens(self):
        # Paper Figure 5: exactly 16 tokens.
        assert len(tokenize_html(QAM_FRAGMENT_HTML)) == 16

    def test_field_names_match_figure5(self):
        tokens = tokenize_html(QAM_FRAGMENT_HTML)
        names = {t.name for t in tokens if t.terminal == "textbox"}
        assert names == {"query-0", "query-1"}  # Figure 5's t0/t1 names
        radio_names = {t.name for t in tokens if t.terminal == "radiobutton"}
        assert radio_names == {"field-0", "field-1"}

    def test_two_conditions(self):
        assert len(qam_fragment_ground_truth()) == 2


class TestQaaFixture:
    def test_eight_conditions(self):
        assert len(qaa_ground_truth()) == 8

    def test_bare_trip_type(self):
        trip = qaa_ground_truth()[0]
        assert trip.attribute == ""
        assert trip.domain.values == ("Round trip", "One way")

    def test_perfect_extraction(self, extractor):
        metrics = per_source_metrics(
            list(extractor.extract(QAA_HTML).conditions), qaa_ground_truth()
        )
        assert metrics.precision == metrics.recall == 1.0


class TestQaaVariant:
    def test_six_conditions_in_truth(self):
        assert len(qaa_variant_ground_truth()) == 6

    def test_extraction_degrades_with_conflict(self, extractor):
        # The column-wise block defeats row-wise patterns: the paper's
        # Figure 14 scenario.  Extraction is partial and conflicted.
        detail = extractor.extract_detailed(QAA_VARIANT_HTML)
        metrics = per_source_metrics(
            list(detail.model.conditions), qaa_variant_ground_truth()
        )
        assert metrics.recall < 1.0
        assert detail.model.conflicts
        assert len(detail.parse.trees) > 1

    def test_upper_rows_still_extracted(self, extractor):
        # Partial-tree maximization: the well-formed upper part of the
        # interface is still understood.
        model = extractor.extract(QAA_VARIANT_HTML)
        attributes = {c.attribute for c in model}
        assert {"From", "To", "Departure date"} <= attributes
