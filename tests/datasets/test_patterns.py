"""Tests for the condition-pattern catalog."""

import random

import pytest

from repro.datasets.domains import DOMAINS, AttributeSpec
from repro.datasets.patterns import (
    IN_GRAMMAR_PATTERNS,
    OUT_OF_GRAMMAR_PATTERNS,
    PATTERNS,
    PATTERNS_BY_ID,
    zipf_weight,
)
from repro.extractor import FormExtractor
from repro.evaluation.metrics import per_source_metrics

BOOKS = DOMAINS["Books"]


def render(pattern_id, spec, seed=7):
    pattern = PATTERNS_BY_ID[pattern_id]
    assert pattern.applicable(spec), f"pattern {pattern_id} not applicable"
    return pattern.render(spec, BOOKS, random.Random(seed))


def wrap_form(occurrence):
    rows = []
    for label, control in occurrence.rows:
        if label is None:
            rows.append(f'<tr><td colspan="2">{control}</td></tr>')
        else:
            rows.append(f"<tr><td>{label}</td><td>{control}</td></tr>")
    return (
        "<html><body><form action='/s'>"
        f"<table cellspacing='4' cellpadding='2'>{''.join(rows)}</table>"
        "<input type='submit' value='Search'>"
        "</form></body></html>"
    )


class TestCatalogShape:
    def test_twenty_five_patterns(self):
        # Paper Section 3.1: 25 condition patterns overall.
        assert len(PATTERNS) == 25

    def test_twenty_one_in_grammar(self):
        # ... of which 21 occur more than once and are in the grammar.
        assert len(IN_GRAMMAR_PATTERNS) == 21

    def test_four_rare(self):
        assert len(OUT_OF_GRAMMAR_PATTERNS) == 4

    def test_unique_ids(self):
        assert len({p.id for p in PATTERNS}) == 25

    def test_ranks_cover_1_to_21(self):
        ranks = sorted(p.rank for p in IN_GRAMMAR_PATTERNS)
        assert ranks == list(range(1, 22))

    def test_zipf_weights_decreasing(self):
        weights = [zipf_weight(rank) for rank in range(1, 22)]
        assert weights == sorted(weights, reverse=True)
        assert zipf_weight(0) == 0.0


class TestApplicability:
    def test_text_patterns_need_text_kind(self):
        spec = AttributeSpec("Subject", "enum", values=("a", "b"))
        assert not PATTERNS_BY_ID[1].applicable(spec)

    def test_operator_patterns_need_operators(self):
        plain = AttributeSpec("ISBN", "text")
        rich = AttributeSpec("Author", "text", operators=("exact name", "x"))
        assert not PATTERNS_BY_ID[4].applicable(plain)
        assert PATTERNS_BY_ID[4].applicable(rich)

    def test_bare_radio_needs_two_values(self):
        two = AttributeSpec("Trip", "enum", values=("RT", "OW"))
        many = AttributeSpec("Genre", "enum", values=("a", "b", "c"))
        assert PATTERNS_BY_ID[11].applicable(two)
        assert not PATTERNS_BY_ID[11].applicable(many)

    def test_unit_pattern_needs_unit(self):
        with_unit = AttributeSpec("Mileage", "range", unit="miles")
        without = AttributeSpec("Price", "range")
        assert PATTERNS_BY_ID[21].applicable(with_unit)
        assert not PATTERNS_BY_ID[21].applicable(without)


class TestGroundTruthConsistency:
    """Every in-grammar pattern, rendered alone, must extract perfectly.

    This is the keystone consistency check between the generator's ground
    truth conventions and the grammar's extraction conventions.
    """

    @pytest.fixture(scope="class")
    def extractor(self):
        return FormExtractor()

    @pytest.mark.parametrize("pattern", IN_GRAMMAR_PATTERNS,
                             ids=lambda p: p.name)
    def test_pattern_round_trips(self, pattern, extractor):
        specs = [
            spec for spec in BOOKS.attributes if pattern.applicable(spec)
        ]
        if not specs:
            # Some patterns need attributes the Books domain lacks; use any
            # domain that has one.
            for domain in DOMAINS.values():
                specs = [
                    spec for spec in domain.attributes
                    if pattern.applicable(spec)
                ]
                if specs:
                    break
        assert specs, f"no domain offers an attribute for {pattern.name}"
        spec = specs[0]
        for seed in (1, 2, 3):
            occurrence = pattern.render(spec, BOOKS, random.Random(seed))
            html = wrap_form(occurrence)
            model = extractor.extract(html)
            metrics = per_source_metrics(
                list(model.conditions), occurrence.conditions
            )
            assert metrics.recall == 1.0, (
                f"{pattern.name} seed {seed}: expected "
                f"{[str(c) for c in occurrence.conditions]}, got "
                f"{[str(c) for c in model.conditions]}"
            )
            assert metrics.precision == 1.0, (
                f"{pattern.name} seed {seed}: got "
                f"{[str(c) for c in model.conditions]}"
            )


class TestRarePatterns:
    def test_rare_patterns_render(self):
        for pattern in OUT_OF_GRAMMAR_PATTERNS:
            for domain in DOMAINS.values():
                specs = [
                    s for s in domain.attributes if pattern.applicable(s)
                ]
                if specs:
                    occurrence = pattern.render(
                        specs[0], domain, random.Random(1)
                    )
                    assert occurrence.rows
                    assert occurrence.conditions
                    break
            else:
                pytest.fail(f"no spec for rare pattern {pattern.name}")

    def test_rare_patterns_defeat_extractor(self):
        # Grammar incompleteness: at least one rare pattern must actually
        # cost accuracy (otherwise the incompleteness experiment is void).
        extractor = FormExtractor()
        degraded = 0
        for pattern in OUT_OF_GRAMMAR_PATTERNS:
            for domain in DOMAINS.values():
                specs = [
                    s for s in domain.attributes if pattern.applicable(s)
                ]
                if not specs:
                    continue
                occurrence = pattern.render(specs[0], domain, random.Random(1))
                model = extractor.extract(wrap_form(occurrence))
                metrics = per_source_metrics(
                    list(model.conditions), occurrence.conditions
                )
                if metrics.precision < 1.0 or metrics.recall < 1.0:
                    degraded += 1
                break
        assert degraded >= 3
