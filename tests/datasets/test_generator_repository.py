"""Tests for the source generator and dataset repository."""

import pytest

from repro.datasets.domains import BASIC_DOMAINS, DOMAINS, NEW_DOMAINS
from repro.datasets.generator import (
    GeneratorProfile,
    SIMPLE_PROFILE,
    SourceGenerator,
)
from repro.datasets.patterns import PATTERNS_BY_ID
from repro.datasets.repository import (
    build_basic,
    build_dataset,
    build_new_domain,
    build_new_source,
    build_random,
    standard_datasets,
)
from repro.html.parser import parse_html


class TestDomains:
    def test_nine_domains(self):
        assert len(DOMAINS) == 9

    def test_basic_and_new_disjoint(self):
        assert not (set(BASIC_DOMAINS) & set(NEW_DOMAINS))

    def test_every_domain_has_attributes(self):
        for domain in DOMAINS.values():
            assert len(domain.attributes) >= 8

    def test_kind_coverage(self):
        # The Basic domains must exercise every attribute kind.
        kinds = set()
        for name in BASIC_DOMAINS:
            kinds.update(spec.kind for spec in DOMAINS[name].attributes)
        assert kinds == {"text", "enum", "range", "date", "flag"}

    def test_field_names_generated(self):
        spec = DOMAINS["Books"].attributes[0]
        assert spec.field_name

    def test_by_kind(self):
        books = DOMAINS["Books"]
        assert all(s.kind == "enum" for s in books.by_kind("enum"))

    def test_invalid_kind_rejected(self):
        from repro.datasets.domains import AttributeSpec

        with pytest.raises(ValueError):
            AttributeSpec("X", "weird")


class TestGenerator:
    def test_deterministic(self):
        generator = SourceGenerator(DOMAINS["Books"])
        first = generator.generate(42)
        second = generator.generate(42)
        assert first.html == second.html
        assert first.truth == second.truth
        assert first.patterns_used == second.patterns_used

    def test_different_seeds_differ(self):
        generator = SourceGenerator(DOMAINS["Books"])
        assert generator.generate(1).html != generator.generate(2).html

    def test_html_is_parseable_with_one_form(self):
        generator = SourceGenerator(DOMAINS["Airfares"])
        for seed in range(10):
            source = generator.generate(seed)
            document = parse_html(source.html)
            assert len(document.forms) == 1

    def test_truth_nonempty(self):
        generator = SourceGenerator(DOMAINS["Automobiles"])
        for seed in range(10):
            source = generator.generate(seed)
            assert source.truth
            assert len(source.patterns_used) >= 1

    def test_condition_count_respects_profile(self):
        profile = GeneratorProfile(min_conditions=2, max_conditions=3,
                                   extra_condition_prob=0.0,
                                   rare_pattern_prob=0.0)
        generator = SourceGenerator(DOMAINS["Books"], profile)
        for seed in range(20):
            source = generator.generate(seed)
            assert 2 <= len(source.patterns_used) <= 3

    def test_rare_patterns_obey_probability(self):
        never = GeneratorProfile(rare_pattern_prob=0.0)
        generator = SourceGenerator(DOMAINS["Books"], never)
        for seed in range(30):
            source = generator.generate(seed)
            assert all(
                PATTERNS_BY_ID[p].in_grammar for p in source.patterns_used
            )

    def test_rare_patterns_appear_when_forced(self):
        always = GeneratorProfile(rare_pattern_prob=1.0)
        generator = SourceGenerator(DOMAINS["Books"], always)
        rare_seen = sum(
            any(
                not PATTERNS_BY_ID[p].in_grammar
                for p in generator.generate(seed).patterns_used
            )
            for seed in range(20)
        )
        assert rare_seen >= 15  # some attributes admit no rare pattern

    def test_generate_many(self):
        generator = SourceGenerator(DOMAINS["Books"])
        sources = generator.generate_many(5, base_seed=100)
        assert len(sources) == 5
        assert len({s.html for s in sources}) == 5


class TestRepository:
    def test_basic_shape(self):
        dataset = build_basic(sources_per_domain=4)
        assert len(dataset) == 12
        assert dataset.domains() == list(BASIC_DOMAINS)

    def test_new_source_uses_simple_profile(self):
        dataset = build_new_source(sources_per_domain=5)
        assert len(dataset) == 15
        max_conditions = max(len(s.patterns_used) for s in dataset)
        assert max_conditions <= SIMPLE_PROFILE.max_conditions + 1

    def test_new_domain_covers_six_domains(self):
        dataset = build_new_domain(sources_per_domain=2)
        assert len(dataset) == 12
        assert set(dataset.domains()) == set(NEW_DOMAINS)

    def test_random_samples_many_domains(self):
        dataset = build_random(count=30)
        assert len(dataset) == 30
        assert len(dataset.domains()) >= 4

    def test_datasets_reproducible(self):
        first = build_basic(3)
        second = build_basic(3)
        assert [s.html for s in first] == [s.html for s in second]

    def test_standard_datasets_full_sizes(self):
        datasets = standard_datasets()
        assert len(datasets["Basic"]) == 150
        assert len(datasets["NewSource"]) == 30
        assert len(datasets["NewDomain"]) == 42
        assert len(datasets["Random"]) == 30

    def test_standard_datasets_scaled(self):
        datasets = standard_datasets(scale=0.1)
        assert len(datasets["Basic"]) == 15
        assert all(len(ds) >= 1 for ds in datasets.values())

    def test_build_dataset_custom(self):
        dataset = build_dataset("Custom", {"Books": 2, "Hotels": 1}, 9_000)
        assert len(dataset) == 3
        assert dataset.name == "Custom"
