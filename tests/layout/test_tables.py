"""Tests for table layout: columns, spans, padding, nesting."""

from repro.html.parser import parse_html
from repro.layout.engine import layout_document


def layout(html, width=960):
    return layout_document(parse_html(html), viewport_width=width)


def frag(result, text):
    for fragment in result.fragments:
        if fragment.text == text:
            return fragment.box
    raise AssertionError(f"fragment {text!r} not found")


class TestColumns:
    def test_cells_side_by_side(self):
        result = layout("<table><tr><td>left</td><td>right</td></tr></table>")
        assert frag(result, "left").right <= frag(result, "right").left
        assert frag(result, "left").top == frag(result, "right").top

    def test_rows_stack(self):
        result = layout(
            "<table><tr><td>r1</td></tr><tr><td>r2</td></tr></table>"
        )
        assert frag(result, "r1").bottom <= frag(result, "r2").top

    def test_column_alignment_across_rows(self):
        result = layout(
            "<table>"
            "<tr><td>a-very-wide-label-here</td><td>v1</td></tr>"
            "<tr><td>b</td><td>v2</td></tr>"
            "</table>"
        )
        assert frag(result, "v1").left == frag(result, "v2").left

    def test_column_width_from_widest_cell(self):
        result = layout(
            "<table>"
            "<tr><td>wide-content-cell</td><td>x</td></tr>"
            "<tr><td>n</td><td>y</td></tr>"
            "</table>"
        )
        # Column 2 starts after the widest cell of column 1.
        assert frag(result, "x").left > frag(result, "wide-content-cell").right - 1


class TestSpacingAndPadding:
    def test_cellspacing_separates_columns(self):
        tight = layout(
            '<table cellspacing="0"><tr><td>a</td><td>b</td></tr></table>'
        )
        loose = layout(
            '<table cellspacing="12"><tr><td>a</td><td>b</td></tr></table>'
        )
        gap_tight = frag(tight, "b").left - frag(tight, "a").right
        gap_loose = frag(loose, "b").left - frag(loose, "a").right
        assert gap_loose > gap_tight

    def test_cellpadding_insets_content(self):
        tight = layout(
            '<table cellpadding="0"><tr><td>a</td></tr></table>'
        )
        padded = layout(
            '<table cellpadding="10"><tr><td>a</td></tr></table>'
        )
        assert frag(padded, "a").left > frag(tight, "a").left


class TestColspan:
    def test_colspan_spans_columns(self):
        result = layout(
            "<table>"
            '<tr><td colspan="2">header-spanning</td></tr>'
            "<tr><td>col-one-content</td><td>col-two</td></tr>"
            "</table>"
        )
        header = frag(result, "header-spanning")
        col2 = frag(result, "col-two")
        assert header.left < col2.left

    def test_row_with_fewer_cells(self):
        result = layout(
            "<table>"
            "<tr><td>a</td><td>b</td></tr>"
            "<tr><td>only</td></tr>"
            "</table>"
        )
        assert frag(result, "only").top > frag(result, "a").bottom


class TestRowspan:
    def test_rowspan_blocks_column(self):
        result = layout(
            "<table>"
            '<tr><td rowspan="2">tall-cell</td><td>r1c2</td></tr>'
            "<tr><td>r2c2</td></tr>"
            "</table>"
        )
        tall = frag(result, "tall-cell")
        first = frag(result, "r1c2")
        second = frag(result, "r2c2")
        # The second row's cell lands in column 2, not under the spanner.
        assert second.left == first.left
        assert second.left > tall.right

    def test_rowspan_rows_still_stack(self):
        result = layout(
            "<table>"
            '<tr><td rowspan="2">a</td><td>b</td></tr>'
            "<tr><td>c</td></tr>"
            "<tr><td>d</td><td>e</td></tr>"
            "</table>"
        )
        assert frag(result, "b").bottom <= frag(result, "c").top
        # After the span expires, column 1 is usable again.
        assert frag(result, "d").left == frag(result, "a").left

    def test_rowspan_with_form_controls(self):
        result = layout(
            "<table>"
            '<tr><td rowspan="2">Date range</td>'
            "<td>from <input name=lo size=6></td></tr>"
            "<tr><td>to <input name=hi size=6></td></tr>"
            "</table>"
        )
        lo, hi = result.controls
        # Both endpoint rows sit in the same (second) column...
        assert frag(result, "from").left == frag(result, "to").left
        # ...stacked under each other.
        assert lo.box.bottom <= hi.box.top

    def test_oversized_rowspan_tolerated(self):
        layout(
            '<table><tr><td rowspan="99">a</td><td>b</td></tr></table>'
        )  # must not raise


class TestRowGroups:
    def test_thead_tbody(self):
        result = layout(
            "<table><thead><tr><td>head</td></tr></thead>"
            "<tbody><tr><td>body</td></tr></tbody></table>"
        )
        assert frag(result, "head").bottom <= frag(result, "body").top


class TestNestedTables:
    def test_nested_table_inside_cell(self):
        result = layout(
            "<table><tr><td>"
            "<table><tr><td>inner</td></tr></table>"
            "</td><td>outer</td></tr></table>"
        )
        assert frag(result, "inner").left < frag(result, "outer").left


class TestControlsInTables:
    def test_label_and_field_in_row(self):
        result = layout(
            "<table><tr><td>Author:</td>"
            "<td><input type=text name=a size=20></td></tr></table>"
        )
        (control,) = result.controls
        label = frag(result, "Author:")
        assert label.right <= control.box.left
        assert label.vertical_overlap(control.box) > 0

    def test_multirow_cell_height(self):
        result = layout(
            "<table><tr>"
            "<td>short</td>"
            "<td>line1<br>line2<br>line3</td>"
            "</tr></table>"
        )
        assert frag(result, "line3").bottom > frag(result, "short").bottom


class TestDegenerateTables:
    def test_empty_table(self):
        layout("<table></table>")  # must not raise

    def test_table_without_rows(self):
        layout("<table><td>stray</td></table>")  # must not raise

    def test_tr_outside_table_treated_as_block(self):
        result = layout("<tr><td>orphan</td></tr>")
        assert frag(result, "orphan") is not None

    def test_overwide_table_scales_down(self):
        cells = "".join(f"<td>cell-number-{i}-content</td>" for i in range(12))
        result = layout(f"<table><tr>{cells}</tr></table>", width=400)
        assert all(f.box.left < 500 for f in result.fragments)
