"""Tests for font metrics and style resolution."""

from hypothesis import given
from hypothesis import strategies as st

from repro.html.dom import Element
from repro.layout.fonts import BOLD_FONT, DEFAULT_FONT, FontMetrics
from repro.layout.style import (
    BLOCK_VERTICAL_MARGIN,
    Display,
    display_of,
    is_bold_context,
)


class TestFontMetrics:
    def test_empty_text(self):
        assert DEFAULT_FONT.text_width("") == 0

    def test_width_additive(self):
        assert DEFAULT_FONT.text_width("ab") == (
            DEFAULT_FONT.char_width("a") + DEFAULT_FONT.char_width("b")
        )

    def test_narrow_narrower_than_wide(self):
        assert DEFAULT_FONT.text_width("iii") < DEFAULT_FONT.text_width("mmm")

    def test_bold_wider(self):
        assert BOLD_FONT.text_width("Author") > DEFAULT_FONT.text_width("Author")

    def test_longer_text_wider(self):
        assert DEFAULT_FONT.text_width("abcdef") > DEFAULT_FONT.text_width("abc")

    def test_fit_chars_all(self):
        assert DEFAULT_FONT.fit_chars("abc", 1000) == 3

    def test_fit_chars_none(self):
        assert DEFAULT_FONT.fit_chars("abc", 1) == 0

    def test_fit_chars_partial(self):
        text = "abcdef"
        width = DEFAULT_FONT.text_width("abc")
        assert DEFAULT_FONT.fit_chars(text, width) == 3

    def test_cache_consistency(self):
        font = FontMetrics()
        first = font.text_width("Publisher")
        second = font.text_width("Publisher")
        assert first == second

    @given(st.text(max_size=50), st.text(max_size=50))
    def test_concatenation_additive(self, a, b):
        font = FontMetrics()
        assert font.text_width(a + b) == font.text_width(a) + font.text_width(b)

    @given(st.text(max_size=60))
    def test_width_nonnegative(self, text):
        assert DEFAULT_FONT.text_width(text) >= 0


class TestDisplayResolution:
    def test_block_tags(self):
        for tag in ("div", "p", "form", "h1", "ul", "fieldset"):
            assert display_of(Element(tag)) is Display.BLOCK

    def test_inline_tags(self):
        for tag in ("b", "span", "input", "select", "label", "a"):
            assert display_of(Element(tag)) is Display.INLINE

    def test_table_parts(self):
        assert display_of(Element("table")) is Display.TABLE
        assert display_of(Element("tr")) is Display.TABLE_ROW
        assert display_of(Element("td")) is Display.TABLE_CELL
        assert display_of(Element("tbody")) is Display.TABLE_ROW_GROUP

    def test_list_item(self):
        assert display_of(Element("li")) is Display.LIST_ITEM

    def test_hidden_structural_tags(self):
        for tag in ("head", "script", "style", "option", "title"):
            assert display_of(Element(tag)) is Display.NONE

    def test_hidden_input(self):
        element = Element("input", {"type": "hidden"})
        assert display_of(element) is Display.NONE

    def test_visible_input(self):
        assert display_of(Element("input", {"type": "text"})) is Display.INLINE
        assert display_of(Element("input")) is Display.INLINE

    def test_unknown_tag_is_inline(self):
        assert display_of(Element("custom-widget")) is Display.INLINE


class TestBoldContext:
    def test_bold_tags(self):
        for tag in ("b", "strong", "h1", "h3", "th"):
            assert is_bold_context(Element(tag))

    def test_regular_tags(self):
        for tag in ("i", "span", "td", "div"):
            assert not is_bold_context(Element(tag))


class TestMargins:
    def test_paragraph_has_margin(self):
        assert BLOCK_VERTICAL_MARGIN["p"] > 0

    def test_headings_ordered(self):
        assert BLOCK_VERTICAL_MARGIN["h1"] >= BLOCK_VERTICAL_MARGIN["h3"]
