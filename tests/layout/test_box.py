"""Tests and property tests for BBox geometry."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.layout.box import BBox, union_all


def boxes():
    coords = st.floats(
        min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
    )
    return st.builds(
        lambda x1, x2, y1, y2: BBox(min(x1, x2), max(x1, x2), min(y1, y2),
                                    max(y1, y2)),
        coords, coords, coords, coords,
    )


class TestConstruction:
    def test_valid(self):
        box = BBox(0, 10, 0, 5)
        assert box.width == 10
        assert box.height == 5
        assert box.area == 50

    def test_zero_area_allowed(self):
        BBox(3, 3, 4, 4)

    def test_invalid_horizontal(self):
        with pytest.raises(ValueError):
            BBox(10, 0, 0, 5)

    def test_invalid_vertical(self):
        with pytest.raises(ValueError):
            BBox(0, 10, 5, 0)

    def test_as_tuple_paper_order(self):
        # The paper's pos is (left, right, top, bottom), Figure 5.
        assert BBox(10, 40, 10, 20).as_tuple() == (10, 40, 10, 20)

    def test_center(self):
        assert BBox(0, 10, 0, 20).center == (5, 10)


class TestPredicates:
    def test_intersects_overlap(self):
        assert BBox(0, 10, 0, 10).intersects(BBox(5, 15, 5, 15))

    def test_intersects_touching_edges(self):
        assert BBox(0, 10, 0, 10).intersects(BBox(10, 20, 0, 10))

    def test_disjoint(self):
        assert not BBox(0, 10, 0, 10).intersects(BBox(11, 20, 0, 10))

    def test_contains(self):
        assert BBox(0, 10, 0, 10).contains(BBox(2, 8, 2, 8))
        assert not BBox(2, 8, 2, 8).contains(BBox(0, 10, 0, 10))

    def test_contains_self(self):
        box = BBox(0, 10, 0, 10)
        assert box.contains(box)

    def test_contains_point(self):
        box = BBox(0, 10, 0, 10)
        assert box.contains_point(5, 5)
        assert box.contains_point(0, 0)
        assert not box.contains_point(11, 5)


class TestOverlapAndGap:
    def test_horizontal_overlap(self):
        assert BBox(0, 10, 0, 5).horizontal_overlap(BBox(5, 20, 0, 5)) == 5

    def test_vertical_overlap_zero(self):
        assert BBox(0, 10, 0, 5).vertical_overlap(BBox(0, 10, 6, 9)) == 0

    def test_horizontal_gap(self):
        assert BBox(0, 10, 0, 5).horizontal_gap(BBox(14, 20, 0, 5)) == 4
        assert BBox(14, 20, 0, 5).horizontal_gap(BBox(0, 10, 0, 5)) == 4

    def test_gap_diagonal(self):
        gap = BBox(0, 10, 0, 10).gap(BBox(13, 20, 14, 20))
        assert gap == pytest.approx(math.hypot(3, 4))

    def test_gap_zero_when_overlapping(self):
        assert BBox(0, 10, 0, 10).gap(BBox(5, 15, 5, 15)) == 0

    def test_center_distance(self):
        assert BBox(0, 2, 0, 2).center_distance(BBox(3, 5, 4, 6)) == 5


class TestCombining:
    def test_union(self):
        assert BBox(0, 5, 0, 5).union(BBox(3, 10, -2, 4)) == BBox(0, 10, -2, 5)

    def test_intersection(self):
        assert BBox(0, 10, 0, 10).intersection(BBox(5, 15, 5, 15)) == BBox(
            5, 10, 5, 10
        )

    def test_intersection_disjoint_is_none(self):
        assert BBox(0, 1, 0, 1).intersection(BBox(5, 6, 5, 6)) is None

    def test_translate(self):
        assert BBox(0, 1, 0, 1).translate(5, -2) == BBox(5, 6, -2, -1)

    def test_inflate(self):
        assert BBox(5, 6, 5, 6).inflate(2) == BBox(3, 8, 3, 8)

    def test_inflate_negative_clamps(self):
        box = BBox(0, 2, 0, 2).inflate(-5)
        assert box.width == 0 and box.height == 0

    def test_union_all(self):
        result = union_all([BBox(0, 1, 0, 1), BBox(5, 6, 5, 6)])
        assert result == BBox(0, 6, 0, 6)

    def test_union_all_empty_raises(self):
        with pytest.raises(ValueError):
            union_all([])


class TestProperties:
    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains(a) and union.contains(b)

    @given(boxes(), boxes())
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(boxes(), boxes(), boxes())
    def test_union_associative(self, a, b, c):
        left = a.union(b).union(c)
        right = a.union(b.union(c))
        assert left.as_tuple() == pytest.approx(right.as_tuple())

    @given(boxes(), boxes())
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains(inter) and b.contains(inter)

    @given(boxes(), boxes())
    def test_intersects_iff_intersection(self, a, b):
        assert a.intersects(b) == (a.intersection(b) is not None)

    @given(boxes(), boxes())
    def test_gap_symmetric(self, a, b):
        assert a.gap(b) == pytest.approx(b.gap(a))

    @given(boxes(), boxes())
    def test_gap_zero_iff_intersecting(self, a, b):
        if a.intersects(b):
            assert a.gap(b) == 0
        else:
            assert a.gap(b) > 0

    @given(boxes())
    def test_inflate_then_contains(self, box):
        assert box.inflate(1).contains(box)

    @given(boxes(), st.floats(min_value=-50, max_value=50,
                              allow_nan=False))
    def test_translate_preserves_size(self, box, delta):
        moved = box.translate(delta, -delta)
        assert moved.width == pytest.approx(box.width)
        assert moved.height == pytest.approx(box.height)
