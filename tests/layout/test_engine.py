"""Tests for the layout engine: block stacking, inline flow, controls."""


from repro.html.parser import parse_html
from repro.layout.engine import (
    BODY_MARGIN,
    control_size,
    layout_document,
)


def layout(html, width=960):
    return layout_document(parse_html(html), viewport_width=width)


def fragment_map(result):
    return {fragment.text: fragment.box for fragment in result.fragments}


class TestBlockLayout:
    def test_body_margin(self):
        result = layout("<html><body>x</body></html>")
        (fragment,) = result.fragments
        assert fragment.box.left == BODY_MARGIN
        assert fragment.box.top == BODY_MARGIN

    def test_blocks_stack_vertically(self):
        result = layout("<div>one</div><div>two</div>")
        boxes = fragment_map(result)
        assert boxes["one"].bottom <= boxes["two"].top

    def test_paragraph_margins(self):
        plain = layout("<div>a</div><div>b</div>")
        spaced = layout("<p>a</p><p>b</p>")
        gap_plain = fragment_map(plain)["b"].top - fragment_map(plain)["a"].bottom
        gap_spaced = (
            fragment_map(spaced)["b"].top - fragment_map(spaced)["a"].bottom
        )
        assert gap_spaced > gap_plain

    def test_heading_taller_text(self):
        result = layout("<h2>Title</h2>")
        (fragment,) = result.fragments
        assert fragment.bold

    def test_list_items_indent(self):
        result = layout("<ul><li>item</li></ul>")
        (fragment,) = result.fragments
        assert fragment.box.left > BODY_MARGIN

    def test_hr_produces_box(self):
        result = layout("a<hr>b")
        boxes = fragment_map(result)
        assert boxes["a"].bottom < boxes["b"].top


class TestInlineFlow:
    def test_words_flow_left_to_right(self):
        result = layout("<span>alpha</span> <span>beta</span>")
        boxes = fragment_map(result)
        assert boxes["alpha"].right < boxes["beta"].left

    def test_same_line_same_top(self):
        result = layout("one two three")
        tops = {f.box.top for f in result.fragments}
        assert len(tops) == 1

    def test_br_breaks_line(self):
        result = layout("one<br>two")
        boxes = fragment_map(result)
        assert boxes["one"].bottom <= boxes["two"].top
        assert boxes["one"].left == boxes["two"].left

    def test_double_br_leaves_blank_line(self):
        single = layout("a<br>b")
        double = layout("a<br><br>b")
        gap1 = fragment_map(single)["b"].top - fragment_map(single)["a"].bottom
        gap2 = fragment_map(double)["b"].top - fragment_map(double)["a"].bottom
        assert gap2 > gap1

    def test_wrapping_at_viewport(self):
        result = layout("word " * 60, width=300)
        lines = {f.box.top for f in result.fragments}
        assert len(lines) > 1
        assert all(f.box.right <= 300 for f in result.fragments)

    def test_whitespace_collapsed(self):
        result = layout("<span>a\n\n   b</span>")
        (fragment,) = result.fragments
        assert fragment.text == "a b"

    def test_bold_flag_propagates(self):
        result = layout("<b><i>deep</i></b>")
        (fragment,) = result.fragments
        assert fragment.bold

    def test_fragments_merge_same_node(self):
        result = layout("one two three")
        assert len(result.fragments) == 1
        assert result.fragments[0].text == "one two three"


class TestControls:
    def test_textbox_size_attribute(self):
        small = control_size(parse_html('<input size="5">').find("input"))
        large = control_size(parse_html('<input size="40">').find("input"))
        assert large[0] > small[0]

    def test_radio_is_small_square(self):
        width, height = control_size(
            parse_html('<input type="radio">').find("input")
        )
        assert width == height == 13

    def test_select_sized_by_longest_option(self):
        short = parse_html("<select><option>a</option></select>").find("select")
        long = parse_html(
            "<select><option>a very long option label</option></select>"
        ).find("select")
        assert control_size(long)[0] > control_size(short)[0]

    def test_listbox_taller(self):
        dropdown = parse_html(
            "<select><option>a<option>b<option>c</select>"
        ).find("select")
        listbox = parse_html(
            '<select size="3"><option>a<option>b<option>c</select>'
        ).find("select")
        assert control_size(listbox)[1] > control_size(dropdown)[1]

    def test_textarea_rows_cols(self):
        small = parse_html('<textarea rows="2" cols="10"></textarea>').find(
            "textarea"
        )
        big = parse_html('<textarea rows="6" cols="40"></textarea>').find(
            "textarea"
        )
        assert control_size(big)[0] > control_size(small)[0]
        assert control_size(big)[1] > control_size(small)[1]

    def test_submit_sized_by_label(self):
        short = parse_html('<input type="submit" value="Go">').find("input")
        long = parse_html(
            '<input type="submit" value="Search Our Catalog Now">'
        ).find("input")
        assert control_size(long)[0] > control_size(short)[0]

    def test_hidden_input_not_rendered(self):
        result = layout('<input type="hidden" name="h" value="1">')
        assert result.controls == []

    def test_controls_on_text_line_share_row(self):
        result = layout("Author <input type=text name=a>")
        (fragment,) = result.fragments
        (control,) = result.controls
        assert fragment.box.vertical_overlap(control.box) > 0
        assert fragment.box.right <= control.box.left

    def test_invalid_size_attribute_falls_back(self):
        element = parse_html('<input size="wide">').find("input")
        assert control_size(element)[0] > 0


class TestContainerBoxes:
    def test_form_gets_union_box(self):
        result = layout("<form>content <input name=q></form>")
        document_form = None
        for eid, element in result.elements_by_id.items():
            if element.tag == "form":
                document_form = result.element_boxes[eid]
        assert document_form is not None

    def test_element_boxes_cover_fragments(self):
        html = "<div id=wrap>text inside</div>"
        document = parse_html(html)
        result = layout_document(document)
        div = document.find("div")
        box = result.box_of(div)
        (fragment,) = result.fragments
        assert box.contains(fragment.box)

    def test_height_tracks_content(self):
        short = layout("one line")
        tall = layout("line<br>" * 10)
        assert tall.height > short.height


class TestDeterminism:
    HTML = """
    <form><table><tr><td>Author:</td><td><input name=a size=20></td></tr>
    <tr><td>Price:</td><td><select name=p><option>low<option>high</select>
    </td></tr></table></form>
    """

    def test_layout_is_deterministic(self):
        first = layout(self.HTML)
        second = layout(self.HTML)
        assert [f.box for f in first.fragments] == [
            f.box for f in second.fragments
        ]
        assert [c.box for c in first.controls] == [
            c.box for c in second.controls
        ]
