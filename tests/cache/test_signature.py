"""Content signatures: translation invariance, content sensitivity."""

from __future__ import annotations

import dataclasses

from repro.cache import SIGNATURE_QUANTUM, html_signature, token_signature
from repro.layout.box import BBox
from tests.conftest import make_token


def _shift(tokens, dx, dy):
    """The same tokens rendered at a different page offset."""
    return [
        dataclasses.replace(
            token,
            bbox=BBox(
                token.bbox.left + dx,
                token.bbox.right + dx,
                token.bbox.top + dy,
                token.bbox.bottom + dy,
            ),
        )
        for token in tokens
    ]


def _form():
    return [
        make_token(0, "text", 10, 20, text="Author"),
        make_token(1, "textbox", 80, 20, name="author"),
        make_token(2, "text", 10, 50, text="Title"),
        make_token(3, "textbox", 80, 50, name="title"),
    ]


class TestTokenSignature:
    def test_deterministic(self):
        assert token_signature(_form()) == token_signature(_form())
        assert token_signature(_form()).startswith("tok:")

    def test_invariant_to_whole_form_translation(self):
        base = token_signature(_form())
        for dx, dy in ((137.0, 0.0), (0.0, 512.5), (-10.0, 2_048.25)):
            assert token_signature(_shift(_form(), dx, dy)) == base

    def test_sensitive_to_token_reorder(self):
        tokens = _form()
        reordered = [tokens[1], tokens[0]] + tokens[2:]
        assert token_signature(reordered) != token_signature(tokens)

    def test_sensitive_to_vertical_reorder(self):
        # Swap the two rows' y positions: same attribute content, the
        # row bands differ -> different signature.
        tokens = _form()
        swapped = _shift(tokens[:2], 0, 30) + _shift(tokens[2:], 0, -30)
        assert token_signature(swapped) != token_signature(tokens)

    def test_sensitive_to_text_change(self):
        edited = _form()
        edited[0] = dataclasses.replace(edited[0], attrs={"text": "Writer"})
        assert token_signature(edited) != token_signature(_form())

    def test_sensitive_to_terminal_change(self):
        edited = _form()
        edited[1] = dataclasses.replace(edited[1], terminal="selectlist")
        assert token_signature(edited) != token_signature(_form())

    def test_sensitive_to_relative_geometry(self):
        # Move one token (not the whole form) by several quanta.
        edited = _form()
        edited[3] = dataclasses.replace(
            edited[3],
            bbox=BBox(
                edited[3].bbox.left + 5 * SIGNATURE_QUANTUM,
                edited[3].bbox.right + 5 * SIGNATURE_QUANTUM,
                edited[3].bbox.top,
                edited[3].bbox.bottom,
            ),
        )
        assert token_signature(edited) != token_signature(_form())

    def test_quantization_absorbs_subpixel_jitter(self):
        # Positions chosen away from rounding boundaries: +0.2px of
        # layout jitter on one token snaps back to the same quantum.
        tokens = _form()
        jittered = list(tokens)
        jittered[3] = dataclasses.replace(
            tokens[3],
            bbox=BBox(
                tokens[3].bbox.left + 0.2,
                tokens[3].bbox.right + 0.2,
                tokens[3].bbox.top,
                tokens[3].bbox.bottom,
            ),
        )
        assert token_signature(jittered) == token_signature(tokens)
        # quantum=0 asks for exact geometry: the jitter now matters.
        assert token_signature(jittered, quantum=0) != token_signature(
            tokens, quantum=0
        )

    def test_quantum_is_part_of_the_signature(self):
        tokens = _form()
        assert token_signature(tokens, quantum=1.0) != token_signature(
            tokens, quantum=2.0
        )

    def test_empty_token_list(self):
        assert token_signature([]) == token_signature([])
        assert token_signature([]) != token_signature(_form())


class TestHtmlSignature:
    def test_exact_content_hash(self):
        assert html_signature("<form></form>") == html_signature(
            "<form></form>"
        )
        assert html_signature("<form></form>") != html_signature(
            "<form> </form>"
        )
        assert html_signature("x").startswith("html:")

    def test_distinct_from_token_namespace(self):
        # The namespaces can never collide even on equal digests.
        assert html_signature("").partition(":")[0] != token_signature(
            []
        ).partition(":")[0]


class TestGrammarFingerprint:
    def test_deterministic_for_the_standard_grammar(self):
        from repro.cache import grammar_fingerprint
        from repro.grammar import build_standard_grammar

        first = grammar_fingerprint(build_standard_grammar())
        second = grammar_fingerprint(build_standard_grammar())
        assert first == second
        assert first.startswith("g2p:")
        assert len(first) == len("g2p:") + 16

    def test_sensitive_to_grammar_content(self):
        from repro.cache import grammar_fingerprint

        class _FakeGrammar:
            def __init__(self, description: str):
                self._description = description

            def describe(self) -> str:
                return self._description

        assert grammar_fingerprint(_FakeGrammar("A -> B C")) != (
            grammar_fingerprint(_FakeGrammar("A -> B D"))
        )

    def test_duck_types_on_describe_with_repr_fallback(self):
        from repro.cache import grammar_fingerprint

        # No describe() at all: repr() keeps the function total.
        tag = grammar_fingerprint(object())
        assert tag.startswith("g2p:")
