"""The extraction cache store: LRU behavior and disk sharing."""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.cache import CacheEntry, ExtractionCache
from repro.parser.parser import ParseStats
from repro.semantics.condition import SemanticModel
from repro.semantics.serialize import model_to_dict


def _entry(tag: str) -> CacheEntry:
    """A distinguishable entry (the tag rides in ``missing``)."""
    return CacheEntry.from_parts(
        SemanticModel(missing=[tag]),
        ParseStats(tokens=len(tag), combos_examined=7),
        warnings=[f"warn-{tag}"],
    )


class TestMemoryCache:
    def test_round_trip_returns_fresh_objects(self):
        cache = ExtractionCache()
        cache.put("tok:a", _entry("a"))
        first = cache.get("tok:a")
        second = cache.get("tok:a")
        assert first is not None and second is not None
        model_a, model_b = first.rebuild_model(), second.rebuild_model()
        assert model_a is not model_b
        assert model_to_dict(model_a) == model_to_dict(model_b)
        assert model_a.missing == ["a"]
        stats = first.rebuild_stats()
        assert stats.tokens == 1 and stats.combos_examined == 7
        assert first.warnings == ["warn-a"]

    def test_miss_returns_none_and_counts(self):
        cache = ExtractionCache()
        assert cache.get("tok:nope") is None
        cache.put("tok:a", _entry("a"))
        assert cache.get("tok:a") is not None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_past_capacity(self):
        cache = ExtractionCache(capacity=2)
        for tag in ("a", "b", "c"):
            cache.put(f"tok:{tag}", _entry(tag))
        assert len(cache) == 2
        assert "tok:a" not in cache
        assert "tok:b" in cache and "tok:c" in cache
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = ExtractionCache(capacity=2)
        cache.put("tok:a", _entry("a"))
        cache.put("tok:b", _entry("b"))
        cache.get("tok:a")  # a is now the most recent
        cache.put("tok:c", _entry("c"))
        assert "tok:a" in cache
        assert "tok:b" not in cache

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ExtractionCache(capacity=0)

    def test_rebuild_stats_drops_unknown_fields(self):
        entry = CacheEntry(
            model=model_to_dict(SemanticModel()),
            stats={"tokens": 3, "from_the_future": 99},
        )
        stats = entry.rebuild_stats()
        assert stats.tokens == 3
        assert not hasattr(stats, "from_the_future")

    def test_entry_without_stats(self):
        entry = CacheEntry(model=model_to_dict(SemanticModel()))
        assert entry.rebuild_stats() is None


class TestDiskBacking:
    def test_round_trip_across_instances(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        writer = ExtractionCache(path=path)
        writer.put("tok:a", _entry("a"))
        reader = ExtractionCache(path=path)
        entry = reader.get("tok:a")
        assert entry is not None
        assert entry.rebuild_model().missing == ["a"]
        assert entry.warnings == ["warn-a"]

    def test_sees_appends_from_a_live_sibling(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        first = ExtractionCache(path=path)
        second = ExtractionCache(path=path)
        assert second.get("tok:late") is None
        first.put("tok:late", _entry("late"))
        assert second.get("tok:late") is not None

    def test_skips_torn_trailing_line(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        ExtractionCache(path=path).put("tok:a", _entry("a"))
        with open(path, "ab") as fh:  # a writer died mid-line
            fh.write(b'{"v":1,"sig":"tok:torn","entry"')
        reader = ExtractionCache(path=path)
        assert reader.get("tok:a") is not None
        assert reader.get("tok:torn") is None

    def test_skips_corrupt_and_wrong_version_lines(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        good = {
            "v": 1, "sig": "tok:good", "entry": _entry("good").to_payload()
        }
        bad_version = {
            "v": 999, "sig": "tok:vnext", "entry": _entry("v").to_payload()
        }
        path.write_text(
            "this is not json\n"
            + json.dumps(bad_version) + "\n"
            + json.dumps(good) + "\n",
            encoding="utf-8",
        )
        reader = ExtractionCache(path=path)
        assert reader.get("tok:good") is not None
        assert reader.get("tok:vnext") is None

    def test_truncated_file_reloads_from_scratch(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ExtractionCache(path=path)
        cache.put("tok:a", _entry("a"))
        cache.put("tok:b", _entry("b"))
        # Another process replaced the file with a shorter one.
        line = json.dumps(
            {"v": 1, "sig": "tok:new", "entry": _entry("new").to_payload()}
        )
        path.write_text(line + "\n", encoding="utf-8")
        assert cache.get("tok:new") is not None

    def test_missing_parent_directory_is_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "cache.jsonl"
        ExtractionCache(path=path).put("tok:a", _entry("a"))
        assert path.exists()
        assert ExtractionCache(path=path).get("tok:a") is not None


class TestChecksums:
    def test_lines_carry_a_checksum(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        ExtractionCache(path=path).put("tok:a", _entry("a"))
        line = json.loads(path.read_text())
        assert line["v"] == 2
        assert isinstance(line["sum"], int)

    def test_tampered_line_is_quarantined(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        ExtractionCache(path=path).put("tok:a", _entry("a"))
        line = json.loads(path.read_text())
        line["entry"]["warnings"] = ["injected"]
        path.write_text(json.dumps(line) + "\n", encoding="utf-8")
        reader = ExtractionCache(path=path)
        assert reader.get("tok:a") is None
        assert reader.stats.corrupt_records == 1
        assert reader.stats.as_dict()["corrupt_records"] == 1

    def test_v1_lines_load_without_checksum(self, tmp_path):
        # Files written before the checksum format must keep working.
        path = tmp_path / "cache.jsonl"
        line = {"v": 1, "sig": "tok:old", "entry": _entry("old").to_payload()}
        path.write_text(json.dumps(line) + "\n", encoding="utf-8")
        reader = ExtractionCache(path=path)
        assert reader.get("tok:old") is not None
        assert reader.stats.corrupt_records == 0

    def test_corruption_counts_accumulate(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        ExtractionCache(path=path).put("tok:good", _entry("good"))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("garbage\n")
            fh.write(json.dumps({"v": 99, "sig": "tok:x", "entry": {}}) + "\n")
            fh.write(json.dumps({"v": 2, "sig": 7, "entry": {}}) + "\n")
        reader = ExtractionCache(path=path)
        assert reader.get("tok:good") is not None
        assert reader.stats.corrupt_records == 3


class TestClearWithDiskBacking:
    """Regression: ``clear()`` must reset the disk offset (issue 7)."""

    def test_clear_then_get_hits_from_disk(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ExtractionCache(path=path)
        cache.put("tok:a", _entry("a"))
        cache.clear()
        assert len(cache) == 0
        entry = cache.get("tok:a")  # must refold the kept disk file
        assert entry is not None
        assert entry.rebuild_model().missing == ["a"]

    def test_clear_then_contains_after_get(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ExtractionCache(path=path)
        for tag in ("a", "b"):
            cache.put(f"tok:{tag}", _entry(tag))
        cache.clear()
        assert cache.get("tok:b") is not None
        assert "tok:a" in cache

    def test_clear_memory_only_cache_still_forgets(self):
        cache = ExtractionCache()
        cache.put("tok:a", _entry("a"))
        cache.clear()
        assert cache.get("tok:a") is None


class TestDiskAppendDedup:
    """Regression: re-``put`` of an evicted signature must not append a
    duplicate JSONL line (issue 7) -- a long-lived disk cache under LRU
    churn would otherwise grow without bound."""

    def test_churn_keeps_file_line_count_bounded(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ExtractionCache(capacity=2, path=path)
        signatures = ["tok:a", "tok:b", "tok:c"]
        for _ in range(10):  # every put past the first 2 evicts one
            for signature in signatures:
                cache.put(signature, _entry(signature[-1]))
        with open(path, "rb") as fh:
            lines = fh.read().splitlines()
        assert len(lines) == len(signatures)

    def test_file_replacement_starts_a_new_generation(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ExtractionCache(capacity=1, path=path)
        cache.put("tok:a", _entry("a"))
        path.write_text("", encoding="utf-8")  # external invalidation
        cache.get("tok:a")  # notices the truncation, resets generation
        cache.put("tok:a", _entry("a"))
        with open(path, "rb") as fh:
            lines = fh.read().splitlines()
        assert len(lines) == 1  # re-appended exactly once to the new file

    def test_evicted_entry_still_served_from_disk(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        cache = ExtractionCache(capacity=2, path=path)
        for tag in ("a", "b", "c"):
            cache.put(f"tok:{tag}", _entry(tag))
        assert "tok:a" not in cache  # evicted from memory, kept on disk
        reader = ExtractionCache(capacity=8, path=path)
        assert reader.get("tok:a") is not None


class TestPayloadShapeValidation:
    """Regression: malformed v1 fields must quarantine, not raise inside
    the cache path (issue 7)."""

    @pytest.mark.parametrize("stats", ["not-a-dict", [1, 2, 3], 7])
    def test_v1_line_with_malformed_stats_is_quarantined(
        self, tmp_path, stats
    ):
        path = tmp_path / "cache.jsonl"
        payload = _entry("bad").to_payload()
        payload["stats"] = stats
        path.write_text(
            json.dumps({"v": 1, "sig": "tok:bad", "entry": payload}) + "\n",
            encoding="utf-8",
        )
        reader = ExtractionCache(path=path)
        assert reader.get("tok:bad") is None
        assert reader.stats.corrupt_records == 1

    @pytest.mark.parametrize(
        "field_name,value",
        [("model", "oops"), ("model", [1]), ("warnings", "oops"),
         ("warnings", [{"w": 1}])],
    )
    def test_v1_line_with_malformed_field_is_quarantined(
        self, tmp_path, field_name, value
    ):
        path = tmp_path / "cache.jsonl"
        payload = _entry("bad").to_payload()
        payload[field_name] = value
        path.write_text(
            json.dumps({"v": 1, "sig": "tok:bad", "entry": payload}) + "\n",
            encoding="utf-8",
        )
        reader = ExtractionCache(path=path)
        assert reader.get("tok:bad") is None
        assert reader.stats.corrupt_records == 1

    def test_malformed_line_never_voids_its_neighbours(self, tmp_path):
        path = tmp_path / "cache.jsonl"
        bad = _entry("bad").to_payload()
        bad["stats"] = "broken"
        path.write_text(
            json.dumps({"v": 1, "sig": "tok:bad", "entry": bad}) + "\n"
            + json.dumps(
                {"v": 1, "sig": "tok:good", "entry": _entry("g").to_payload()}
            ) + "\n",
            encoding="utf-8",
        )
        reader = ExtractionCache(path=path)
        good = reader.get("tok:good")
        assert good is not None
        assert good.rebuild_stats() is not None
        assert reader.stats.corrupt_records == 1

    def test_from_payload_raises_on_bad_shapes(self):
        with pytest.raises(ValueError):
            CacheEntry.from_payload({"model": "oops"})
        with pytest.raises(ValueError):
            CacheEntry.from_payload({"model": {}, "stats": [1]})
        with pytest.raises(ValueError):
            CacheEntry.from_payload({"model": {}, "warnings": 3})


def _concurrent_put(args):
    """Worker: write one entry through its own cache instance."""
    path, tag = args
    ExtractionCache(path=path).put(f"tok:{tag}", _entry(tag))
    return tag


class TestConcurrentWorkers:
    def test_disk_round_trip_under_concurrent_writers(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        tags = [f"w{i}" for i in range(16)]
        with ProcessPoolExecutor(max_workers=4) as pool:
            done = list(pool.map(_concurrent_put, [(path, t) for t in tags]))
        assert sorted(done) == sorted(tags)
        reader = ExtractionCache(path=path)
        for tag in tags:
            entry = reader.get(f"tok:{tag}")
            assert entry is not None, tag
            assert entry.rebuild_model().missing == [tag]
        # flock-guarded appends: every line intact, one per entry.
        with open(path, "rb") as fh:
            lines = fh.read().splitlines()
        assert len(lines) == len(tags)
        for raw in lines:
            json.loads(raw)
