"""Cached extraction must be indistinguishable from fresh extraction."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cache import ExtractionCache
from repro.datasets.domains import DOMAINS
from repro.datasets.fixtures import QAM_HTML
from repro.datasets.generator import GeneratorProfile, SourceGenerator
from repro.extractor import FormExtractor
from repro.semantics.serialize import model_to_dict


def _fixture_sources():
    """A spread of dataset fixtures: the paper's QAM page plus one
    generated source per domain."""
    profile = GeneratorProfile(min_conditions=2, max_conditions=5)
    sources = [QAM_HTML]
    for i, name in enumerate(sorted(DOMAINS)):
        sources.append(
            SourceGenerator(DOMAINS[name], profile).generate(71_000 + i).html
        )
    return sources


_FIXTURES = _fixture_sources()


class TestCachedEquivalence:
    @pytest.mark.parametrize("index", range(len(_FIXTURES)))
    def test_cached_result_deep_equals_fresh(self, index):
        html = _FIXTURES[index]
        fresh = FormExtractor().extract_detailed(html)
        cached_extractor = FormExtractor(cache=ExtractionCache())
        miss = cached_extractor.extract_detailed(html)
        hit = cached_extractor.extract_detailed(html)

        assert not miss.trace.tags.get("cache_hit")
        assert hit.trace.tags.get("cache_hit") is True
        for result in (miss, hit):
            assert model_to_dict(result.model) == model_to_dict(fresh.model)
        # Replayed stats carry the original counters, so aggregate sums
        # (benchmarks, batch reports) cannot tell a hit from a recompute.
        # Timings are replayed from the producing run, not this one, so
        # they match the miss exactly and the fresh run only structurally.
        assert dataclasses.asdict(hit.parse.stats) == dataclasses.asdict(
            miss.parse.stats
        )
        assert hit.parse.stats.counters() == fresh.parse.stats.counters()

    def test_hit_never_aliases_the_stored_result(self):
        extractor = FormExtractor(cache=ExtractionCache())
        extractor.extract(QAM_HTML)
        first = extractor.extract(QAM_HTML)
        second = extractor.extract(QAM_HTML)
        assert first is not second
        assert first.conditions[0] is not second.conditions[0]
        first.conditions.clear()  # mutating a hit must not poison the cache
        assert model_to_dict(second) == model_to_dict(
            extractor.extract(QAM_HTML)
        )

    def test_cache_span_records_hit_flag(self):
        extractor = FormExtractor(cache=ExtractionCache())
        miss = extractor.extract_detailed(QAM_HTML)
        hit = extractor.extract_detailed(QAM_HTML)
        miss_span = [s for s in miss.trace.spans if s.name == "cache"]
        hit_span = [s for s in hit.trace.spans if s.name == "cache"]
        assert miss_span and miss_span[0].counters["hit"] == 0
        assert hit_span and hit_span[0].counters["hit"] == 1
        # A hit skips the parse and merge stages entirely.
        assert not any(s.name.startswith("parse.") for s in hit.trace.spans)

    def test_cache_off_by_default(self):
        extractor = FormExtractor()
        assert extractor.cache is None
        result = extractor.extract_detailed(QAM_HTML)
        assert "cache_hit" not in result.trace.tags
        assert not any(s.name == "cache" for s in result.trace.spans)

    def test_cache_counts_hits_and_misses(self):
        cache = ExtractionCache()
        extractor = FormExtractor(cache=cache)
        for _ in range(3):
            extractor.extract(QAM_HTML)
        assert cache.stats.hits == 2
        assert cache.stats.misses == 1
        assert cache.stats.puts == 1

    def test_translation_equivalent_forms_share_an_entry(self, token_factory):
        # Two renderings of the same form at different page offsets are
        # one cache entry: the second is a hit.
        def form(dx, dy):
            return [
                token_factory("text", 10 + dx, 20 + dy, text="Author"),
                token_factory("textbox", 80 + dx, 20 + dy, name="author"),
            ]

        cache = ExtractionCache()
        extractor = FormExtractor(cache=cache)
        first = extractor.extract_from_tokens(form(0, 0))
        second = extractor.extract_from_tokens(form(300, 1_000))
        assert cache.stats.hits == 1
        assert second.trace.tags.get("cache_hit") is True
        assert model_to_dict(second.model) == model_to_dict(first.model)
