"""Focused tests for the simulated sources' query semantics."""

import pytest

from repro.semantics.condition import Condition, Domain
from repro.datasets.domains import DOMAINS
from repro.datasets.generator import GeneratedSource
from repro.webdb.records import generate_records
from repro.webdb.source import SimulatedSource


def make_source(conditions, domain="Books", record_count=60):
    generated = GeneratedSource(
        name="synthetic", domain=domain, html="<form></form>",
        truth=conditions, seed=123,
    )
    return SimulatedSource(generated, record_count=record_count)


@pytest.fixture(scope="module")
def author_source():
    condition = Condition(
        "Author",
        ("contains", "starts with", "exact name"),
        Domain("text"),
        fields=("author", "author_mode"),
        operator_bindings=(
            ("contains", "author_mode", "c"),
            ("starts with", "author_mode", "s"),
            ("exact name", "author_mode", "x"),
        ),
    )
    return make_source([condition])


class TestOperatorOverride:
    def test_default_operator_is_first(self, author_source):
        target = author_source.records[0]["Author"]
        fragment = target.split()[1]  # last name only
        results = author_source.submit({"author": [fragment]})
        assert target in [record["Author"] for record in results]

    def test_exact_operator_narrows(self, author_source):
        target = author_source.records[0]["Author"]
        fragment = target.split()[1]
        loose = author_source.submit({"author": [fragment]})
        exact = author_source.submit(
            {"author": [fragment], "author_mode": ["x"]}
        )
        assert len(exact) <= len(loose)
        assert all(record["Author"].lower() == fragment.lower()
                   for record in exact)

    def test_exact_full_value_matches(self, author_source):
        target = author_source.records[0]["Author"]
        results = author_source.submit(
            {"author": [target], "author_mode": ["x"]}
        )
        assert author_source.records[0] in results

    def test_starts_with(self, author_source):
        target = author_source.records[0]["Author"]
        prefix = target[:4]
        results = author_source.submit(
            {"author": [prefix], "author_mode": ["s"]}
        )
        assert all(
            record["Author"].lower().startswith(prefix.lower())
            for record in results
        )
        assert author_source.records[0] in results


class TestDateSemantics:
    @pytest.fixture(scope="class")
    def date_source(self):
        condition = Condition(
            "Check-in date", ("=",), Domain("datetime"),
            fields=("m", "d", "y"),
            field_roles=(("m", "month"), ("d", "day"), ("y", "year")),
        )
        return make_source([condition], domain="Hotels")

    def test_full_date_filter(self, date_source):
        month, day, year = date_source.records[0]["Check-in date"]
        results = date_source.submit(
            {"m": [month], "d": [str(day)], "y": [str(year)]}
        )
        assert date_source.records[0] in results
        for record in results:
            assert record["Check-in date"] == (month, day, year)

    def test_partial_date_filter(self, date_source):
        month, _, _ = date_source.records[0]["Check-in date"]
        results = date_source.submit({"m": [month]})
        assert all(
            record["Check-in date"][0] == month for record in results
        )
        assert len(results) > 0

    def test_month_case_insensitive(self, date_source):
        month, _, _ = date_source.records[0]["Check-in date"]
        assert date_source.submit({"m": [month.upper()]}) == \
            date_source.submit({"m": [month]})


class TestMultiValueEnums:
    @pytest.fixture(scope="class")
    def format_source(self):
        condition = Condition(
            "Format", ("in",),
            Domain("enum", ("Hardcover", "Paperback", "Audio", "E-book")),
            fields=("fmt",),
            value_bindings=(
                ("Hardcover", "fmt", "v0"), ("Paperback", "fmt", "v1"),
                ("Audio", "fmt", "v2"), ("E-book", "fmt", "v3"),
            ),
        )
        return make_source([condition])

    def test_two_choices_union(self, format_source):
        both = format_source.submit({"fmt": ["v0", "v1"]})
        assert all(
            record["Format"] in ("Hardcover", "Paperback") for record in both
        )
        only_hard = format_source.submit({"fmt": ["v0"]})
        assert len(both) >= len(only_hard)

    def test_unknown_submit_value_ignored(self, format_source):
        assert format_source.submit({"fmt": ["v99"]}) == format_source.records


class TestRecordDeterminism:
    def test_same_seed_same_database(self):
        first = generate_records(DOMAINS["Books"], 30, seed=5)
        second = generate_records(DOMAINS["Books"], 30, seed=5)
        assert first == second
