"""Tests for the simulated deep-Web source."""

import pytest

from repro.semantics.matching import normalize_attribute
from repro.webdb.source import SimulatedSource, _numeric, _text_matches


@pytest.fixture(scope="module")
def books():
    return SimulatedSource.create("Books", seed=90_001, record_count=120)


@pytest.fixture(scope="module")
def airfares():
    return SimulatedSource.create("Airfares", seed=90_002, record_count=120)


def truth_condition(source, kind, named=True):
    for condition in source.generated.truth:
        if condition.domain.kind == kind and bool(condition.attribute) == named:
            return condition
    return None


class TestHelpers:
    @pytest.mark.parametrize("raw,expected", [
        ("$5,000", 5000.0), ("10", 10.0), ("3.5 stars", 3.5),
        ("under $5", 5.0), ("no digits", None), ("-4", -4.0),
    ])
    def test_numeric(self, raw, expected):
        assert _numeric(raw) == expected

    def test_text_operator_contains(self):
        assert _text_matches("contains", "stone", "The Stone Ocean")
        assert not _text_matches("contains", "granite", "The Stone Ocean")

    def test_text_operator_exact(self):
        assert _text_matches("exact name", "tom clancy", "Tom Clancy")
        assert not _text_matches("exact name", "tom", "Tom Clancy")

    def test_text_operator_starts(self):
        assert _text_matches("starts with", "tom", "Tom Clancy")
        assert not _text_matches("starts with", "clancy", "Tom Clancy")

    def test_text_operator_all_words(self):
        assert _text_matches("all of the words", "ocean stone", "stone ocean")
        assert not _text_matches("all of the words", "ocean lake", "stone ocean")

    def test_text_operator_any_words(self):
        assert _text_matches("any of the words", "ocean lake", "stone ocean")

    def test_empty_needle_matches(self):
        assert _text_matches("contains", "  ", "anything")


class TestSubmission:
    def test_empty_submission_returns_everything(self, books):
        assert books.submit({}) == books.records

    def test_enum_filter(self, books):
        condition = truth_condition(books, "enum")
        if condition is None:
            pytest.skip("this seed produced no named enum condition")
        label = next(
            value for value in condition.domain.values
            if not value.lower().startswith(("all", "any"))
        )
        binding = condition.value_binding(label)
        assert binding is not None
        bind_field, bind_value = binding
        results = books.submit({bind_field: [bind_value]})
        attribute = next(
            spec.label for spec in books.domain.attributes
            if normalize_attribute(spec.label)
            == normalize_attribute(condition.attribute)
        )
        assert results
        assert all(record[attribute] == label for record in results)
        assert len(results) < len(books.records)

    def test_placeholder_choice_does_not_filter(self, books):
        condition = truth_condition(books, "enum")
        if condition is None:
            pytest.skip("no enum condition")
        placeholder = next(
            (
                (field, value)
                for label, field, value in condition.value_bindings
                if label.lower().startswith(("all", "any"))
            ),
            None,
        )
        if placeholder is None:
            pytest.skip("no placeholder option in this source")
        field, value = placeholder
        assert books.submit({field: [value]}) == books.records

    def test_text_filter(self, books):
        condition = truth_condition(books, "text")
        if condition is None:
            pytest.skip("no text condition")
        attribute = next(
            (
                spec.label for spec in books.domain.attributes
                if normalize_attribute(spec.label)
                == normalize_attribute(condition.attribute)
            ),
            None,
        )
        if attribute is None:
            pytest.skip("bare keyword condition")
        target = str(books.records[0][attribute]).split()[0]
        results = books.submit({condition.fields[0]: [target]})
        assert books.records[0] in results
        for record in results:
            assert target.casefold() in str(record[attribute]).casefold()

    def test_range_filter(self, books):
        condition = truth_condition(books, "range")
        if condition is None:
            pytest.skip("no range condition")
        lo_field = condition.field_for_role("lo")
        hi_field = condition.field_for_role("hi")
        attribute = next(
            spec.label for spec in books.domain.attributes
            if normalize_attribute(spec.label)
            == normalize_attribute(condition.attribute)
        )
        values = sorted(record[attribute] for record in books.records)
        low, high = values[len(values) // 4], values[3 * len(values) // 4]
        results = books.submit(
            {lo_field: [str(low)], hi_field: [str(high)]}
        )
        assert results
        assert all(low <= record[attribute] <= high for record in results)

    def test_nonsense_filter_returns_nothing(self, books):
        condition = truth_condition(books, "text")
        if condition is None:
            pytest.skip("no text condition")
        results = books.submit(
            {condition.fields[0]: ["zzzz-no-record-contains-this"]}
        )
        assert results == []


class TestResultPage:
    def test_result_page_renders(self, books):
        page = books.result_page({})
        assert f"{len(books.records)} results" in page.html
        assert "<table>" in page.html

    def test_result_page_records_match_submit(self, books):
        page = books.result_page({})
        assert page.records == books.submit({})


class TestSourceConstruction:
    def test_html_is_generated_form(self, books):
        assert "<form" in books.html

    def test_deterministic(self):
        first = SimulatedSource.create("Books", seed=4321, record_count=10)
        second = SimulatedSource.create("Books", seed=4321, record_count=10)
        assert first.html == second.html
        assert first.records == second.records

    def test_record_count(self):
        source = SimulatedSource.create("Jobs", seed=1, record_count=37)
        assert len(source.records) == 37
