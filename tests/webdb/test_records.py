"""Tests for synthetic record generation."""

from repro.datasets.domains import DOMAINS
from repro.webdb.records import generate_records


class TestGeneration:
    def test_count(self):
        records = generate_records(DOMAINS["Books"], 25, seed=1)
        assert len(records) == 25

    def test_deterministic(self):
        first = generate_records(DOMAINS["Books"], 10, seed=5)
        second = generate_records(DOMAINS["Books"], 10, seed=5)
        assert first == second

    def test_different_seeds_differ(self):
        first = generate_records(DOMAINS["Books"], 10, seed=1)
        second = generate_records(DOMAINS["Books"], 10, seed=2)
        assert first != second

    def test_all_attributes_present(self):
        (record,) = generate_records(DOMAINS["Airfares"], 1, seed=3)
        labels = {spec.label for spec in DOMAINS["Airfares"].attributes}
        assert set(record) == labels


class TestValueShapes:
    def test_enum_values_from_vocabulary(self):
        records = generate_records(DOMAINS["Books"], 50, seed=7)
        subject_values = {
            spec.label: set(spec.values)
            for spec in DOMAINS["Books"].attributes
            if spec.kind == "enum"
        }
        for record in records:
            for label, allowed in subject_values.items():
                assert record[label] in allowed

    def test_range_values_numeric_and_bounded(self):
        records = generate_records(DOMAINS["Automobiles"], 50, seed=9)
        for spec in DOMAINS["Automobiles"].attributes:
            if spec.kind != "range":
                continue
            low, high = spec.numeric_range
            for record in records:
                assert low <= record[spec.label] <= high

    def test_date_values_are_triples(self):
        records = generate_records(DOMAINS["Hotels"], 20, seed=11)
        for record in records:
            month, day, year = record["Check-in date"]
            assert isinstance(month, str)
            assert 1 <= day <= 28
            assert 2004 <= year <= 2006

    def test_flag_values_are_bool(self):
        records = generate_records(DOMAINS["Books"], 20, seed=13)
        assert all(
            isinstance(record["In stock only"], bool) for record in records
        )

    def test_name_attributes_look_like_names(self):
        records = generate_records(DOMAINS["Books"], 20, seed=15)
        assert all(len(record["Author"].split()) == 2 for record in records)

    def test_zip_is_five_digits(self):
        records = generate_records(DOMAINS["Automobiles"], 10, seed=17)
        assert all(
            len(record["Zip code"]) == 5 and record["Zip code"].isdigit()
            for record in records
        )
