"""Tests for spatial-convention calibration."""

import pytest

from repro.datasets.repository import build_basic, build_new_domain
from repro.evaluation.harness import EvaluationHarness
from repro.extractor import FormExtractor
from repro.grammar.standard import build_standard_grammar
from repro.learning.calibrate import (
    SpatialCalibrator,
    _percentile,
    calibrate_spatial_config,
)
from repro.spatial.relations import DEFAULT_SPATIAL


@pytest.fixture(scope="module")
def calibrated():
    train = build_basic(sources_per_domain=8).sources
    return calibrate_spatial_config(train)


class TestPercentile:
    def test_empty(self):
        assert _percentile([], 0.9) == 0.0

    def test_single(self):
        assert _percentile([5.0], 0.5) == 5.0

    def test_max(self):
        assert _percentile([1.0, 2.0, 3.0], 1.0) == 3.0

    def test_median(self):
        assert _percentile([1.0, 2.0, 9.0], 0.5) == 2.0


class TestHarvesting:
    def test_statistics_collected(self, calibrated):
        _, stats = calibrated
        assert stats.sources_used == 24
        assert stats.conditions_used > 50
        assert stats.left_gaps, "no left-attachment evidence harvested"
        assert "left" in stats.arrangement_counts

    def test_left_dominates(self, calibrated):
        # The left arrangement is the dominant convention -- the empirical
        # basis for the R6a/R6b "horizontal beats vertical" preferences.
        _, stats = calibrated
        counts = stats.arrangement_counts
        assert counts["left"] > counts.get("above", 0)

    def test_gaps_are_positive_and_bounded(self, calibrated):
        _, stats = calibrated
        assert all(0 <= gap <= 400 for gap in stats.left_gaps)


class TestFitting:
    def test_learned_config_valid(self, calibrated):
        config, _ = calibrated
        assert 20.0 <= config.max_horizontal_gap <= 400.0
        assert 8.0 <= config.max_vertical_gap <= 100.0

    def test_learned_tighter_or_equal_to_default(self, calibrated):
        # The hand-set threshold is deliberately generous; the evidence
        # supports something tighter.
        config, _ = calibrated
        assert config.max_horizontal_gap <= DEFAULT_SPATIAL.max_horizontal_gap

    def test_no_evidence_keeps_base(self):
        calibrator = SpatialCalibrator()
        config = calibrator.fit()
        assert config.max_horizontal_gap == DEFAULT_SPATIAL.max_horizontal_gap
        assert config.max_vertical_gap == DEFAULT_SPATIAL.max_vertical_gap

    def test_slack_scales_threshold(self, calibrated):
        train = build_basic(sources_per_domain=3).sources
        tight, _ = calibrate_spatial_config(train, slack=1.0)
        loose, _ = calibrate_spatial_config(train, slack=2.0)
        assert loose.max_horizontal_gap >= tight.max_horizontal_gap


class TestGeneralization:
    def test_learned_config_holds_accuracy_on_held_out(self, calibrated):
        config, _ = calibrated
        learned = FormExtractor(grammar=build_standard_grammar(spatial=config))
        harness = EvaluationHarness(
            extract=lambda html: list(learned.extract(html).conditions)
        )
        held_out = build_new_domain(sources_per_domain=3)
        learned_result = harness.evaluate(held_out)
        default_result = EvaluationHarness().evaluate(held_out)
        assert learned_result.accuracy >= default_result.accuracy - 0.03
