"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datasets.fixtures import QAM_HTML


@pytest.fixture()
def qam_file(tmp_path):
    path = tmp_path / "qam.html"
    path.write_text(QAM_HTML, encoding="utf-8")
    return str(path)


class TestExtract:
    def test_plain_output(self, qam_file, capsys):
        assert main(["extract", qam_file]) == 0
        output = capsys.readouterr().out
        assert "[Author;" in output
        assert "[Publisher;" in output

    def test_json_output(self, qam_file, capsys):
        assert main(["extract", qam_file, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == 1
        attributes = [c["attribute"] for c in document["conditions"]]
        assert "Author" in attributes

    def test_trace_goes_to_stderr(self, qam_file, capsys):
        assert main(["extract", qam_file, "--trace"]) == 0
        captured = capsys.readouterr()
        assert "tokens=" in captured.err
        assert "tokens=" not in captured.out

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(QAM_HTML))
        assert main(["extract", "-"]) == 0
        assert "[Author;" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["extract", "/no/such/file.html"]) == 2
        assert "error" in capsys.readouterr().err

    def test_empty_page(self, tmp_path, capsys):
        path = tmp_path / "empty.html"
        path.write_text("<html></html>")
        assert main(["extract", str(path)]) == 0
        assert "no conditions" in capsys.readouterr().out


class TestEvaluate:
    def test_quick_evaluation(self, capsys):
        assert main(["evaluate", "--scale", "0.05"]) == 0
        output = capsys.readouterr().out
        assert "Basic" in output
        assert "Random" in output


class TestGrammar:
    def test_grammar_listing(self, capsys):
        assert main(["grammar"]) == 0
        output = capsys.readouterr().out
        assert "QI -> " in output
        assert "productions" in output


class TestParserErrors:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
