"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datasets.fixtures import QAM_HTML


@pytest.fixture()
def qam_file(tmp_path):
    path = tmp_path / "qam.html"
    path.write_text(QAM_HTML, encoding="utf-8")
    return str(path)


class TestExtract:
    def test_plain_output(self, qam_file, capsys):
        assert main(["extract", qam_file]) == 0
        output = capsys.readouterr().out
        assert "[Author;" in output
        assert "[Publisher;" in output

    def test_json_output(self, qam_file, capsys):
        assert main(["extract", qam_file, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == 1
        attributes = [c["attribute"] for c in document["conditions"]]
        assert "Author" in attributes

    def test_trace_goes_to_stderr(self, qam_file, capsys):
        assert main(["extract", qam_file, "--trace"]) == 0
        captured = capsys.readouterr()
        assert "tokens=" in captured.err
        assert "tokens=" not in captured.out

    def test_trace_prints_pipeline_spans(self, qam_file, capsys):
        assert main(["extract", qam_file, "--trace"]) == 0
        err = capsys.readouterr().err
        for stage in ("html-parse", "tokenize", "parse.construct",
                      "parse.maximize", "merge"):
            assert f"span {stage}:" in err

    def test_out_of_range_form_is_an_error(self, qam_file, capsys):
        assert main(["extract", qam_file, "--form", "7"]) == 2
        err = capsys.readouterr().err
        assert "out of range" in err

    def test_no_form_fallback_warns(self, tmp_path, capsys):
        path = tmp_path / "bare.html"
        path.write_text("<html><body>Query: <input name=q></body></html>")
        assert main(["extract", str(path)]) == 0
        assert "no <form> element" in capsys.readouterr().err

    def test_log_json_emits_json_lines(self, tmp_path, capsys):
        path = tmp_path / "bare.html"
        path.write_text("<html><body>Query: <input name=q></body></html>")
        assert main(["--log-json", "extract", str(path)]) == 0
        err = capsys.readouterr().err
        json_lines = [
            json.loads(line) for line in err.splitlines()
            if line.startswith("{")
        ]
        assert any(
            line["event"] == "extract.no_form_fallback" for line in json_lines
        )

    def test_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(QAM_HTML))
        assert main(["extract", "-"]) == 0
        assert "[Author;" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["extract", "/no/such/file.html"]) == 2
        assert "error" in capsys.readouterr().err

    def test_empty_page(self, tmp_path, capsys):
        path = tmp_path / "empty.html"
        path.write_text("<html></html>")
        assert main(["extract", str(path)]) == 0
        assert "no conditions" in capsys.readouterr().out


class TestEvaluate:
    def test_quick_evaluation(self, capsys):
        assert main(["evaluate", "--scale", "0.05"]) == 0
        output = capsys.readouterr().out
        assert "Basic" in output
        assert "Random" in output

    def test_metrics_json_with_parallel_jobs(self, tmp_path, capsys):
        # ISSUE acceptance: `evaluate --jobs 4 --metrics out.json` emits
        # valid JSON with per-stage span durations and pipeline counters
        # matching ParseStats.
        out = tmp_path / "metrics.json"
        assert main([
            "evaluate", "--scale", "0.05", "--jobs", "4",
            "--metrics", str(out),
        ]) == 0
        payload = json.loads(out.read_text())
        extracted = payload["counters"]["extract.ok"]
        assert extracted > 0
        for stage in ("html-parse", "tokenize", "parse.construct",
                      "parse.maximize", "merge"):
            histogram = payload["histograms"][f"span.{stage}.seconds"]
            assert histogram["count"] == extracted
            assert histogram["total"] >= 0.0
        from repro.parser.parser import ParseStats

        stats_names = set(ParseStats().counters())
        construct = {
            name.removeprefix("span.parse.construct.")
            for name in payload["counters"]
            if name.startswith("span.parse.construct.")
        }
        assert construct == stats_names
        assert payload["counters"]["span.parse.construct.instances_created"] > 0

    def test_evaluate_trace_summary(self, capsys):
        assert main(["evaluate", "--scale", "0.05", "--trace"]) == 0
        err = capsys.readouterr().err
        assert "span.parse.construct.seconds" in err
        assert "mean=" in err


class TestCacheFlags:
    def test_extract_with_cache_dir_persists_across_runs(
        self, qam_file, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "cache")
        assert main(["extract", qam_file, "--cache-dir", cache_dir]) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "cache" / "extraction-cache.jsonl").exists()
        assert main(["extract", qam_file, "--cache-dir", cache_dir]) == 0
        assert capsys.readouterr().out == first

    def test_extract_cache_flag_accepted(self, qam_file, capsys):
        # In-memory cache: one process, no hit to observe, but output is
        # identical to the uncached run.
        assert main(["extract", qam_file]) == 0
        plain = capsys.readouterr().out
        assert main(["extract", qam_file, "--cache"]) == 0
        assert capsys.readouterr().out == plain

    def test_no_cache_overrides_cache_dir(self, qam_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main([
            "extract", qam_file, "--cache-dir", cache_dir, "--no-cache",
        ]) == 0
        capsys.readouterr()
        assert not (tmp_path / "cache").exists()

    def test_evaluate_cache_metrics(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main([
            "evaluate", "--scale", "0.05", "--cache",
            "--metrics", str(out),
        ]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        counters = payload["counters"]
        assert "batch.cache.misses" in counters
        assert counters["batch.cache.misses"] > 0
        assert counters.get("batch.cache.hits", 0) == 0

    def test_evaluate_jobs_auto(self, capsys):
        assert main(["evaluate", "--scale", "0.05", "--jobs", "auto"]) == 0
        assert "Basic" in capsys.readouterr().out


class TestStructuredInputErrors:
    def test_unreadable_file_exits_2(self, capsys):
        assert main(["extract", "/no/such/file.html"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: code=unreadable file=/no/such/file.html")
        assert err.count("\n") == 1  # one line, no traceback

    def test_empty_input_exits_3(self, tmp_path, capsys):
        path = tmp_path / "empty.html"
        path.write_text("")
        assert main(["extract", str(path)]) == 3
        assert "code=empty-input" in capsys.readouterr().err

    def test_whitespace_only_is_empty(self, tmp_path, capsys):
        path = tmp_path / "blank.html"
        path.write_text("   \n\t  \n")
        assert main(["extract", str(path)]) == 3
        assert "code=empty-input" in capsys.readouterr().err

    def test_not_html_exits_4(self, tmp_path, capsys):
        path = tmp_path / "notes.txt"
        path.write_text("just some plain prose, no markup anywhere")
        assert main(["extract", str(path)]) == 4
        assert "code=not-html" in capsys.readouterr().err

    def test_empty_stdin_exits_3(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(""))
        assert main(["extract", "-"]) == 3
        assert "code=empty-input file=-" in capsys.readouterr().err

    def test_form_not_found_is_structured(self, qam_file, capsys):
        assert main(["extract", qam_file, "--form", "7"]) == 2
        err = capsys.readouterr().err
        assert "code=form-not-found" in err
        assert "out of range" in err

    def test_resume_requires_journal(self, capsys):
        assert main(["evaluate", "--resume"]) == 2
        assert "code=usage" in capsys.readouterr().err


class TestResilienceFlags:
    def test_extract_resilient_matches_plain_output(self, qam_file, capsys):
        assert main(["extract", qam_file]) == 0
        plain = capsys.readouterr().out
        assert main(["extract", qam_file, "--resilient"]) == 0
        assert capsys.readouterr().out == plain

    def test_resilient_survives_hostile_input(self, tmp_path, capsys):
        path = tmp_path / "hostile.html"
        path.write_text(
            "<form>" + "<div>" * 5000 + "<input name=q>"
            + "</div>" * 5000 + "</form>"
        )
        assert main(["extract", str(path), "--resilient", "--json"]) == 0
        captured = capsys.readouterr()
        document = json.loads(captured.out)
        assert document["format"] == 1

    def test_evaluate_journal_then_resume(self, tmp_path, capsys):
        journal = str(tmp_path / "journal.jsonl")
        out = tmp_path / "metrics.json"
        assert main([
            "evaluate", "--scale", "0.02", "--journal", journal,
        ]) == 0
        first = capsys.readouterr().out
        assert main([
            "evaluate", "--scale", "0.02", "--journal", journal,
            "--resume", "--metrics", str(out),
        ]) == 0
        assert capsys.readouterr().out == first
        counters = json.loads(out.read_text())["counters"]
        assert counters["batch.resume.skipped"] > 0
        assert counters["batch.resume.corrupt_lines"] == 0

    def test_evaluate_resilient(self, capsys):
        assert main(["evaluate", "--scale", "0.02", "--resilient"]) == 0
        assert "Basic" in capsys.readouterr().out


class TestGrammar:
    def test_grammar_listing(self, capsys):
        assert main(["grammar"]) == 0
        output = capsys.readouterr().out
        assert "QI -> " in output
        assert "productions" in output


class TestLint:
    def test_lints_all_grammars_clean(self, capsys):
        assert main(["lint"]) == 0
        output = capsys.readouterr().out
        for name in ("standard", "example", "navmenu"):
            assert f"grammar {name}:" in output
        assert "0 error(s)" in output

    def test_single_grammar_selection(self, capsys):
        assert main(["lint", "--grammar", "example"]) == 0
        output = capsys.readouterr().out
        assert "grammar example:" in output
        assert "grammar standard:" not in output

    def test_standard_grammar_warnings_are_printed(self, capsys):
        assert main(["lint", "--grammar", "standard"]) == 0
        output = capsys.readouterr().out
        assert "G006 warning" in output

    def test_json_reports(self, capsys):
        assert main(["lint", "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert [report["grammar"] for report in reports] == [
            "standard", "example", "navmenu",
        ]
        assert all(report["schema"] == 2 for report in reports)
        assert all(report["summary"]["error"] == 0 for report in reports)

    def test_single_grammar_json(self, capsys):
        assert main(["lint", "--grammar", "standard", "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 1
        codes = {d["code"] for d in reports[0]["diagnostics"]}
        # Hygiene findings plus the semantic passes' pinned families
        # (tests/analysis/test_clean_grammars.py pins the exact counts).
        assert codes == {"G006", "S003", "G021", "G023", "G024", "P011"}

    def test_rejects_unknown_grammar(self):
        with pytest.raises(SystemExit):
            main(["lint", "--grammar", "nonexistent"])

    def test_coverage_matrix_human(self, capsys):
        assert main(
            ["lint", "--grammar", "standard", "--coverage"]
        ) == 0
        output = capsys.readouterr().out
        assert "coverage" in output
        assert "uncovered" in output
        assert "total:" in output

    def test_coverage_matrix_json(self, capsys):
        assert main(
            ["lint", "--grammar", "standard", "--coverage", "--json"]
        ) == 0
        reports = json.loads(capsys.readouterr().out)
        matrix = reports[0]["coverage"]
        statuses = {row["status"] for row in matrix["shapes"]}
        assert statuses <= {"covered", "assembly-only", "uncovered"}

    def test_explain_known_code(self, capsys):
        assert main(["lint", "--explain", "G020"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("G020")
        assert "fix:" in output

    def test_explain_unknown_code_exits_2(self, capsys):
        assert main(["lint", "--explain", "Z999"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_candidate_good_is_admitted(self, capsys):
        assert main(
            ["lint", "--candidate",
             "examples/candidates/good_candidate.json"]
        ) == 0
        assert "accept" in capsys.readouterr().out

    def test_candidate_bad_is_rejected(self, capsys):
        assert main(
            ["lint", "--candidate",
             "examples/candidates/bad_candidate.json"]
        ) == 1
        assert "reject" in capsys.readouterr().out

    def test_candidate_json_output(self, capsys):
        assert main(
            ["lint", "--json", "--candidate",
             "examples/candidates/bad_candidate.json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == 2
        assert payload["verdict"] == "reject"
        assert payload["admitted"] is False

    def test_candidate_unreadable_exits_2(self, capsys, tmp_path):
        assert main(
            ["lint", "--candidate", str(tmp_path / "missing.json")]
        ) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_candidate_malformed_exits_2(self, capsys, tmp_path):
        payload = tmp_path / "cand.json"
        payload.write_text('{"head": "A"}')
        assert main(["lint", "--candidate", str(payload)]) == 2
        assert "invalid candidate" in capsys.readouterr().err


class TestParserErrors:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
