"""Tests for the form tokenizer (DOM + layout → tokens)."""

from repro.html.parser import parse_html
from repro.tokens.tokenizer import FormTokenizer, tokenize_html


def types(tokens):
    return [token.terminal for token in tokens]


class TestControlConversion:
    def test_input_types(self):
        tokens = tokenize_html(
            "<form>"
            "<input type=text name=a>"
            "<input type=password name=b>"
            "<input type=radio name=c>"
            "<input type=checkbox name=d>"
            "<input type=submit>"
            "<input type=reset>"
            "<input type=button>"
            "<input type=file name=f>"
            "</form>"
        )
        assert sorted(types(tokens)) == sorted([
            "textbox", "password", "radiobutton", "checkbox",
            "submitbutton", "resetbutton", "pushbutton", "filebox",
        ])

    def test_typeless_input_is_textbox(self):
        (token,) = tokenize_html("<form><input name=q></form>")
        assert token.terminal == "textbox"

    def test_unknown_type_falls_back_to_textbox(self):
        (token,) = tokenize_html("<form><input type=datetime name=q></form>")
        assert token.terminal == "textbox"

    def test_hidden_field_not_tokenized(self):
        tokens = tokenize_html(
            "<form><input type=hidden name=h><input name=q></form>"
        )
        assert types(tokens) == ["textbox"]

    def test_select_options_captured(self):
        (token,) = tokenize_html(
            "<form><select name=s>"
            "<option value='v1'>One</option><option selected>Two</option>"
            "</select></form>"
        )
        assert token.terminal == "selectlist"
        assert [o.label for o in token.options] == ["One", "Two"]
        assert token.options[0].value == "v1"
        assert token.options[1].value == "Two"
        assert token.options[1].selected

    def test_listbox_when_size_gt_one(self):
        (token,) = tokenize_html(
            "<form><select name=s size=4><option>a</option></select></form>"
        )
        assert token.terminal == "listbox"

    def test_multiple_flag(self):
        (token,) = tokenize_html(
            "<form><select name=s multiple><option>a</option></select></form>"
        )
        assert token.attrs["multiple"]

    def test_textarea(self):
        (token,) = tokenize_html("<form><textarea name=t></textarea></form>")
        assert token.terminal == "textarea"

    def test_button_element(self):
        (token,) = tokenize_html("<form><button>Find it</button></form>")
        assert token.terminal == "submitbutton"
        assert token.attrs["value"] == "Find it"

    def test_checkbox_checked_attribute(self):
        (token,) = tokenize_html(
            "<form><input type=checkbox name=c checked></form>"
        )
        assert token.attrs["checked"] is True


class TestTextTokens:
    def test_simple_label(self):
        tokens = tokenize_html("<form>Author: <input name=a></form>")
        text = next(t for t in tokens if t.terminal == "text")
        assert text.sval == "Author:"

    def test_bold_and_plain_merge(self):
        tokens = tokenize_html("<form><b>Title</b>: <input name=t></form>")
        text = next(t for t in tokens if t.terminal == "text")
        assert text.sval == "Title:"
        assert text.attrs["bold"]

    def test_cells_stay_separate(self):
        tokens = tokenize_html(
            "<form><table><tr><td>Left</td><td>Right</td></tr></table>"
            "<input name=q></form>"
        )
        texts = sorted(t.sval for t in tokens if t.terminal == "text")
        assert texts == ["Left", "Right"]

    def test_lines_stay_separate(self):
        tokens = tokenize_html("<form>one<br>two<input name=q></form>")
        texts = sorted(t.sval for t in tokens if t.terminal == "text")
        assert texts == ["one", "two"]

    def test_whitespace_only_dropped(self):
        tokens = tokenize_html("<form>   \n  <input name=q></form>")
        assert types(tokens) == ["textbox"]


class TestScoping:
    TWO_FORMS = (
        "<form id=f1>First <input name=a></form>"
        "<form id=f2>Second <input name=b></form>"
    )

    def test_first_form_only(self):
        document = parse_html(self.TWO_FORMS)
        tokenizer = FormTokenizer(document)
        tokens = tokenizer.tokenize(document.forms[0])
        names = [t.name for t in tokens if t.terminal == "textbox"]
        assert names == ["a"]

    def test_second_form(self):
        document = parse_html(self.TWO_FORMS)
        tokenizer = FormTokenizer(document)
        tokens = tokenizer.tokenize(document.forms[1])
        names = [t.name for t in tokens if t.terminal == "textbox"]
        assert names == ["b"]

    def test_whole_page_when_no_form(self):
        tokens = tokenize_html("No form here <input name=x>")
        assert "textbox" in types(tokens)

    def test_nearby_outside_label_included(self):
        tokens = tokenize_html(
            "Quick search: <form><input name=q></form>"
        )
        texts = [t.sval for t in tokens if t.terminal == "text"]
        assert "Quick search:" in texts

    def test_distant_page_text_excluded(self):
        tokens = tokenize_html(
            "<p>Far away header</p>" + "<br>" * 20 +
            "<form>Label <input name=q></form>"
        )
        texts = [t.sval for t in tokens if t.terminal == "text"]
        assert "Far away header" not in texts


class TestOrdering:
    def test_reading_order_and_dense_ids(self):
        tokens = tokenize_html(
            "<form><table>"
            "<tr><td>A</td><td><input name=a></td></tr>"
            "<tr><td>B</td><td><input name=b></td></tr>"
            "</table></form>"
        )
        assert [t.id for t in tokens] == list(range(len(tokens)))
        tops = [t.bbox.top for t in tokens]
        assert tops == sorted(tops)
