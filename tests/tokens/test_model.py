"""Tests for the token model."""

import pytest

from repro.layout.box import BBox
from repro.tokens.model import (
    DECORATION_TERMINALS,
    INPUT_TERMINALS,
    TERMINALS,
    SelectOption,
    Token,
)


def make(terminal="text", **attrs):
    return Token(id=0, terminal=terminal, bbox=BBox(0, 10, 0, 10), attrs=attrs)


class TestTerminalAlphabet:
    def test_sixteen_terminals(self):
        # The paper's derived grammar uses 16 terminals (Section 6).
        assert len(TERMINALS) == 16

    def test_inputs_subset_of_terminals(self):
        assert INPUT_TERMINALS <= TERMINALS

    def test_decoration_subset(self):
        assert DECORATION_TERMINALS <= TERMINALS

    def test_inputs_and_decoration_disjoint(self):
        assert not (INPUT_TERMINALS & DECORATION_TERMINALS)


class TestToken:
    def test_unknown_terminal_rejected(self):
        with pytest.raises(ValueError):
            make("wibble")

    def test_sval_accessor(self):
        assert make("text", sval="Author").sval == "Author"
        assert make("textbox").sval == ""

    def test_name_accessor(self):
        assert make("textbox", name="q").name == "q"
        assert make("textbox").name is None

    def test_options_accessor(self):
        options = (SelectOption("a", "a"), SelectOption("b", "b"))
        token = make("selectlist", options=options)
        assert token.options == options
        assert make("textbox").options == ()

    def test_is_input(self):
        assert make("textbox").is_input
        assert make("radiobutton").is_input
        assert not make("text").is_input
        assert not make("submitbutton").is_input

    def test_is_decoration(self):
        assert make("submitbutton").is_decoration
        assert make("hrule").is_decoration
        assert not make("checkbox").is_decoration

    def test_repr_includes_sval(self):
        assert "Author" in repr(make("text", sval="Author"))

    def test_repr_includes_name(self):
        assert "q" in repr(make("textbox", name="q"))


class TestSelectOption:
    def test_fields(self):
        option = SelectOption("Label", "value", selected=True)
        assert option.label == "Label"
        assert option.value == "value"
        assert option.selected

    def test_equality(self):
        assert SelectOption("a", "a") == SelectOption("a", "a")
