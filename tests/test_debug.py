"""Tests for the debug visualization helpers."""

import pytest

from repro.datasets.fixtures import QAM_HTML
from repro.debug import (
    render_conditions_with_anchors,
    render_parse_summary,
    render_tokens,
)
from repro.extractor import FormExtractor


@pytest.fixture(scope="module")
def detail():
    return FormExtractor().extract_detailed(QAM_HTML)


class TestRenderTokens:
    def test_empty(self):
        assert render_tokens([]) == "(no tokens)"

    def test_labels_and_glyphs_appear(self, detail):
        sketch = render_tokens(detail.tokens)
        assert "Author:" in sketch
        assert "[______]" in sketch    # textbox glyph
        assert "( )" in sketch         # radio glyph
        assert "[___|v]" in sketch     # select glyph

    def test_reading_order_top_to_bottom(self, detail):
        sketch = render_tokens(detail.tokens)
        lines = sketch.splitlines()
        author_row = next(i for i, l in enumerate(lines) if "Author:" in l)
        publisher_row = next(
            i for i, l in enumerate(lines) if "Publisher:" in l
        )
        assert author_row < publisher_row

    def test_clipped_to_width(self, detail):
        sketch = render_tokens(detail.tokens, width=40)
        assert all(len(line) <= 40 for line in sketch.splitlines())


class TestRenderParseSummary:
    def test_empty(self, detail):
        assert render_parse_summary([], detail.tokens) == "(no parse trees)"

    def test_summary_fields(self, detail):
        summary = render_parse_summary(detail.parse.trees, detail.tokens)
        assert "tree 1: QI" in summary
        assert "5 condition(s)" in summary

    def test_coverage_fraction(self, detail):
        summary = render_parse_summary(detail.parse.trees, detail.tokens)
        total = len(detail.tokens)
        assert f"{total}/{total} tokens" in summary


class TestRenderConditions:
    def test_anchors_listed(self, detail):
        text = render_conditions_with_anchors(
            detail.parse.trees, detail.tokens
        )
        assert "[Author;" in text
        assert "from: " in text
        assert "Author:" in text

    def test_empty_forest(self, detail):
        assert "(no conditions)" in render_conditions_with_anchors(
            [], detail.tokens
        )


class TestCliRenderFlag:
    def test_render_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "form.html"
        path.write_text(QAM_HTML)
        assert main(["extract", str(path), "--render"]) == 0
        err = capsys.readouterr().err
        assert "rendered token layout" in err
        assert "parse forest" in err
