"""Tests for the pairwise proximity/alignment baseline."""

import pytest

from repro.baseline.heuristic import HeuristicExtractor, heuristic_extract
from repro.datasets.fixtures import QAM_HTML, qam_ground_truth
from repro.evaluation.metrics import per_source_metrics
from repro.extractor import FormExtractor


@pytest.fixture(scope="module")
def baseline():
    return HeuristicExtractor()


class TestSimpleAssociation:
    def test_label_left_of_field(self, baseline):
        model = baseline.extract("<form>Author: <input name=a></form>")
        (condition,) = model.conditions
        assert condition.attribute == "Author"
        assert condition.domain.kind == "text"

    def test_label_above_field(self, baseline):
        model = baseline.extract("<form>Author:<br><input name=a></form>")
        (condition,) = model.conditions
        assert condition.attribute == "Author"

    def test_left_preferred_over_above(self, baseline):
        model = baseline.extract(
            "<form>Above-label<br>Left-label: <input name=a></form>"
        )
        (condition,) = model.conditions
        assert condition.attribute == "Left-label"

    def test_select_becomes_enum(self, baseline):
        model = baseline.extract(
            "<form>Subject: <select name=s>"
            "<option>Arts</option><option>Fiction</option></select></form>"
        )
        (condition,) = model.conditions
        assert condition.domain.kind == "enum"
        assert condition.domain.values == ("Arts", "Fiction")

    def test_radio_group_by_name(self, baseline):
        model = baseline.extract(
            "<form>"
            "<input type=radio name=g value=1> One "
            "<input type=radio name=g value=2> Two"
            "</form>"
        )
        (condition,) = model.conditions
        assert condition.operators == ("=",)
        assert set(condition.domain.values) == {"One", "Two"}

    def test_checkbox_group_is_multi(self, baseline):
        model = baseline.extract(
            "<form>"
            "<input type=checkbox name=f value=1> Pool "
            "<input type=checkbox name=f value=2> Gym"
            "</form>"
        )
        (condition,) = model.conditions
        assert condition.operators == ("in",)

    def test_unlabeled_field(self, baseline):
        model = baseline.extract("<form><input name=q></form>")
        (condition,) = model.conditions
        assert condition.attribute == ""


class TestKnownWeaknesses:
    """The failure modes the parsing paradigm fixes (paper Section 2)."""

    def test_operator_radios_become_spurious_condition(self, baseline):
        model = baseline.extract(
            "<form><table>"
            "<tr><td>Author:</td><td><input type=text name=a></td></tr>"
            "<tr><td></td><td>"
            "<input type=radio name=m value=1> exact name "
            "<input type=radio name=m value=2> starts with"
            "</td></tr></table></form>"
        )
        # Two conditions instead of one: the radio operators are not folded
        # into the author condition.
        assert len(model.conditions) == 2

    def test_range_split_into_two_conditions(self, baseline):
        model = baseline.extract(
            "<form>Price: from <input name=lo size=6> to "
            "<input name=hi size=6></form>"
        )
        assert len(model.conditions) == 2

    def test_date_split_into_three_conditions(self, baseline):
        months = "".join(
            f"<option>{m}</option>"
            for m in ("January", "February", "March", "April", "May",
                      "June", "July", "August", "September", "October",
                      "November", "December")
        )
        days = "".join(f"<option>{d}</option>" for d in range(1, 32))
        model = baseline.extract(
            f"<form>Date: <select name=m>{months}</select>"
            f"<select name=d>{days}</select>"
            "<select name=y><option>2004</option><option>2005</option>"
            "</select></form>"
        )
        assert len(model.conditions) == 3


class TestComparison:
    def test_parser_beats_baseline_on_qam(self):
        truth = qam_ground_truth()
        parser_model = FormExtractor().extract(QAM_HTML)
        baseline_model = heuristic_extract(QAM_HTML)
        parser_metrics = per_source_metrics(
            list(parser_model.conditions), truth
        )
        baseline_metrics = per_source_metrics(
            list(baseline_model.conditions), truth
        )
        assert parser_metrics.recall > baseline_metrics.recall
        assert parser_metrics.precision > baseline_metrics.precision

    def test_baseline_never_raises(self, baseline):
        for html in ("", "<form></form>", "<input>", "<form><select></form>"):
            baseline.extract(html)
