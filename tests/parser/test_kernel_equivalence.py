"""Vector vs scalar vs naive: the spatial kernel is invisible.

The vectorized spatial kernel (columnar :class:`GeometryTable` + batched
band queries) must be a pure performance transformation, exactly like the
semi-naive rewrite before it: on every input, ``kernel="vector"`` and
``kernel="scalar"`` have to produce byte-identical maximal trees, merged
models, warnings, and ``ParseStats`` counters.  The single sanctioned
divergence is ``spatial_memo_hits`` -- the two paths memoize different
units of work (per-pool mask batches vs per-anchor band scans).

This extends the naive/semi-naive equivalence net of
``test_seminaive_equivalence`` to a 3-way check: naive remains the ground
truth for trees and models, and both semi-naive kernels must match it and
each other.  Coverage comes from three directions: Zipf-profile generated
forms across every domain, the shipped grammars beyond the standard one,
and hypothesis-generated random token soups that exercise both the masked
(all ``token.id < 64``) and general preference-enforcement paths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.navmenu import build_menu_grammar
from repro.datasets.domains import DOMAINS
from repro.datasets.generator import GeneratorProfile, SourceGenerator
from repro.extractor import FormExtractor
from repro.grammar.example_g import build_example_grammar
from repro.grammar.standard import build_standard_grammar
from repro.html.parser import parse_html
from repro.layout.box import BBox
from repro.merger import merge_parse_result
from repro.parser.parser import BestEffortParser, ParserConfig
from repro.parser.spatial_index import numpy_available, resolve_kernel
from repro.tokens.model import SelectOption, Token
from repro.tokens.tokenizer import FormTokenizer

requires_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="vector kernel needs numpy (pip install 'repro[fast]')",
)

FORMS_PER_DOMAIN = 3  # 8 domains -> 24 Zipf-profile forms

#: Zipf-heavy profile: the generator's pattern choice is already
#: Zipf-distributed; wide condition counts make large mixed pools.
_PROFILE = GeneratorProfile(min_conditions=2, max_conditions=8)


def _generate_token_sets():
    """FORMS_PER_DOMAIN Zipf-profile tokenized forms per domain.

    Seeds are disjoint from the ``test_seminaive_equivalence`` corpus so
    the two nets do not silently test the same inputs.
    """
    token_sets = []
    for offset, name in enumerate(sorted(DOMAINS)):
        generator = SourceGenerator(DOMAINS[name], _PROFILE)
        for index in range(FORMS_PER_DOMAIN):
            source = generator.generate(seed=23_000 + offset * 100 + index)
            document = parse_html(source.html)
            forms = document.forms
            tokenizer = FormTokenizer(document)
            tokens = tokenizer.tokenize(forms[0] if forms else None)
            token_sets.append((f"{name}-{index}", tokens))
    return token_sets


_TOKEN_SETS = _generate_token_sets()
_GRAMMARS = {
    "standard": build_standard_grammar(),
    "example_g": build_example_grammar(),
    "navmenu": build_menu_grammar(),
}

_KERNEL_SENSITIVE = ("spatial_memo_hits",)


def _fingerprint(result):
    """Everything that must match between kernels, byte for byte."""
    model = merge_parse_result(result)
    counters = {
        name: value
        for name, value in result.stats.counters().items()
        if name not in _KERNEL_SENSITIVE
    }
    return {
        "counters": counters,
        "truncated": result.stats.truncated,
        "trees": [tree.pretty() for tree in result.trees],
        # uid values are globally monotonic across parses; creation ORDER
        # plus symbol plus liveness is the portable identity.
        "creation_order": [
            (inst.symbol, inst.alive)
            for inst in result.instances
            if not inst.is_terminal
        ],
        "conditions": [str(condition) for condition in model.conditions],
    }


def _parse(grammar, tokens, **config):
    return BestEffortParser(grammar, ParserConfig(**config)).parse(tokens)


@requires_numpy
@pytest.mark.parametrize(
    "label,tokens", _TOKEN_SETS, ids=[label for label, _ in _TOKEN_SETS]
)
def test_kernels_agree_on_zipf_forms(label, tokens):
    """Identical forests, counters, and merged models per generated form."""
    scalar = _parse(_GRAMMARS["standard"], tokens, kernel="scalar")
    vector = _parse(_GRAMMARS["standard"], tokens, kernel="vector")
    assert scalar.stats.kernel == "scalar"
    assert vector.stats.kernel == "vector"
    assert _fingerprint(vector) == _fingerprint(scalar)


@requires_numpy
@pytest.mark.parametrize("grammar_name", sorted(_GRAMMARS))
def test_kernels_agree_on_shipped_grammars(grammar_name):
    """Every shipped grammar, not just the standard one, is kernel-blind."""
    grammar = _GRAMMARS[grammar_name]
    for _, tokens in _TOKEN_SETS[:: max(1, len(_TOKEN_SETS) // 8)]:
        scalar = _parse(grammar, tokens, kernel="scalar")
        vector = _parse(grammar, tokens, kernel="vector")
        assert _fingerprint(vector) == _fingerprint(scalar)


@requires_numpy
def test_three_way_agreement_with_naive_ground_truth():
    """Naive, semi-naive scalar, and semi-naive vector: one answer.

    The naive fix-point enumerates differently (no prefilter), so only
    the structural outputs -- trees, creation order, model -- are
    compared against it; the two kernels must also match on counters.
    """
    grammar = _GRAMMARS["standard"]
    structural = ("trees", "creation_order", "conditions", "truncated")
    for _, tokens in _TOKEN_SETS[:: max(1, len(_TOKEN_SETS) // 6)]:
        naive = _fingerprint(_parse(grammar, tokens, evaluation="naive"))
        scalar = _fingerprint(_parse(grammar, tokens, kernel="scalar"))
        vector = _fingerprint(_parse(grammar, tokens, kernel="vector"))
        assert vector == scalar
        for key in structural:
            assert scalar[key] == naive[key]


@requires_numpy
def test_truncation_is_kernel_identical():
    """Budget exhaustion cuts both kernels at the same instance."""
    _, tokens = max(_TOKEN_SETS, key=lambda pair: len(pair[1]))
    for budget in (10, 40, 120):
        scalar = _parse(
            _GRAMMARS["standard"], tokens,
            kernel="scalar", max_instances=budget,
        )
        vector = _parse(
            _GRAMMARS["standard"], tokens,
            kernel="vector", max_instances=budget,
        )
        assert scalar.stats.truncated and vector.stats.truncated
        assert _fingerprint(vector) == _fingerprint(scalar)


@requires_numpy
def test_extractor_warnings_are_kernel_identical():
    """The full pipeline (tokenize, parse, merge) emits the same warnings
    and model regardless of kernel."""
    for _, tokens in _TOKEN_SETS[:4]:
        results = {}
        for kernel in ("scalar", "vector"):
            extractor = FormExtractor(
                parser_config=ParserConfig(kernel=kernel)
            )
            detailed = extractor.extract_from_tokens(tokens)
            results[kernel] = (
                detailed.warnings,
                [str(c) for c in detailed.model.conditions],
                [t.id for t in detailed.report.conflict_tokens],
                [t.id for t in detailed.report.missing_tokens],
            )
        assert results["vector"] == results["scalar"]


def test_auto_kernel_resolution_matches_environment():
    """``auto`` resolves to vector iff numpy is importable; the resolved
    kernel is stamped on the stats of every semi-naive parse."""
    expected = "vector" if numpy_available() else "scalar"
    assert resolve_kernel("auto") == expected
    _, tokens = _TOKEN_SETS[0]
    result = _parse(_GRAMMARS["standard"], tokens)
    assert result.stats.kernel == expected


# ---------------------------------------------------------------------------
# Hypothesis: random token soups, Zipf-weighted terminal mix.
# ---------------------------------------------------------------------------

#: Terminals repeated by (approximate) Zipf rank weight: ``sampled_from``
#: over the expanded list gives the frequent-head / long-tail mix real
#: forms show without needing a custom probability distribution.
_ZIPF_TERMINALS = (
    ("text", 8), ("textbox", 4), ("selectlist", 3), ("radiobutton", 2),
    ("checkbox", 2), ("submitbutton", 1),
)
_WEIGHTED_TERMINALS = tuple(
    name for name, weight in _ZIPF_TERMINALS for _ in range(weight)
)

_WORDS = ("Author", "Title", "from", "to", "exact name", "contains",
          "Price", "Search", "miles", "New", "Used", "Keywords:",
          "starts with", "Any", "2004")


@st.composite
def zipf_soups(draw):
    """Random form layouts on a loose grid with a Zipf terminal mix.

    ``id_base`` pushes half the examples past ``token.id >= 64``, so both
    the masked (uint64 coverage-mask matrix) and the general preference
    enforcement paths of the vector kernel are exercised.
    """
    count = draw(st.integers(min_value=0, max_value=16))
    id_base = draw(st.sampled_from((0, 61)))
    tokens = []
    for index in range(count):
        terminal = draw(st.sampled_from(_WEIGHTED_TERMINALS))
        column = draw(st.integers(min_value=0, max_value=3))
        row = draw(st.integers(min_value=0, max_value=6))
        left = 10.0 + column * 120 + draw(st.integers(0, 30))
        top = 10.0 + row * 24 + draw(st.integers(0, 4))
        width = {"text": 60.0, "textbox": 110.0, "selectlist": 80.0,
                 "radiobutton": 13.0, "checkbox": 13.0,
                 "submitbutton": 60.0}[terminal]
        height = 13.0 if terminal in ("radiobutton", "checkbox") else 20.0
        attrs = {}
        if terminal == "text":
            attrs["sval"] = draw(st.sampled_from(_WORDS))
        elif terminal == "selectlist":
            attrs["name"] = f"sel{index}"
            attrs["options"] = (
                SelectOption("a", "a"), SelectOption("b", "b"),
            )
        elif terminal != "submitbutton":
            attrs["name"] = f"f{index}"
            if terminal in ("radiobutton", "checkbox"):
                attrs["value"] = f"v{index}"
        tokens.append(Token(
            id=id_base + index, terminal=terminal,
            bbox=BBox(left, left + width, top, top + height),
            attrs=attrs,
        ))
    return tokens


@requires_numpy
class TestKernelProperties:
    @given(zipf_soups())
    @settings(max_examples=50, deadline=None)
    def test_kernels_agree_on_random_soups(self, tokens):
        scalar = _parse(_GRAMMARS["standard"], tokens, kernel="scalar")
        vector = _parse(_GRAMMARS["standard"], tokens, kernel="vector")
        assert _fingerprint(vector) == _fingerprint(scalar)

    @given(zipf_soups())
    @settings(max_examples=25, deadline=None)
    def test_kernels_agree_under_tight_budgets(self, tokens):
        scalar = _parse(
            _GRAMMARS["standard"], tokens,
            kernel="scalar", max_instances=60,
        )
        vector = _parse(
            _GRAMMARS["standard"], tokens,
            kernel="vector", max_instances=60,
        )
        assert _fingerprint(vector) == _fingerprint(scalar)


def test_corpus_is_large_and_mixed():
    assert len(_TOKEN_SETS) >= 20
    assert len({label.rsplit("-", 1)[0] for label, _ in _TOKEN_SETS}) == len(
        DOMAINS
    )
