"""Tests for the 2P schedule graph (paper Section 5.2)."""

import pytest

from repro.grammar.dsl import GrammarBuilder
from repro.parser.schedule import ScheduleError, build_schedule


def builder():
    g = GrammarBuilder(start="S")
    g.terminals("t")
    return g


class TestDEdges:
    def test_children_before_parents(self):
        g = builder()
        g.production("A", ["t"])
        g.production("B", ["A"])
        g.production("S", ["B"])
        order = build_schedule(g.build()).order
        assert order.index("A") < order.index("B") < order.index("S")

    def test_self_recursion_allowed(self):
        g = builder()
        g.production("L", ["t"])
        g.production("L", ["L", "t"])
        g.production("S", ["L"])
        schedule = build_schedule(g.build())
        assert "L" in schedule.order

    def test_mutual_recursion_rejected(self):
        g = builder()
        g.production("A", ["B"])
        g.production("B", ["A"])
        g.production("A", ["t"])
        g.production("S", ["A"])
        with pytest.raises(ScheduleError):
            build_schedule(g.build())

    def test_diamond_schedules(self):
        g = builder()
        g.production("A", ["t"])
        g.production("B", ["A"])
        g.production("C", ["A"])
        g.production("S", ["B", "C"])
        order = build_schedule(g.build()).order
        assert order.index("A") < order.index("B")
        assert order.index("A") < order.index("C")
        assert order.index("S") == len(order) - 1


class TestREdges:
    def test_winner_before_loser(self):
        # Paper Figure 12: RBU must be scheduled before Attr.
        g = builder()
        g.production("Attr", ["t"])
        g.production("RBU", ["t"])
        g.production("S", ["Attr", "RBU"])
        g.prefer("RBU", over="Attr")
        order = build_schedule(g.build()).order
        assert order.index("RBU") < order.index("Attr")

    def test_self_preference_ignored_for_scheduling(self):
        g = builder()
        g.production("L", ["t"])
        g.production("S", ["L"])
        g.prefer("L", over="L")
        schedule = build_schedule(g.build())
        assert schedule.relaxed == []
        assert schedule.transformed == []

    def test_conflicting_r_edge_transformed(self):
        # Paper Figure 13: B and C share construct A; mutually-preferring
        # r-edges form a cycle; the transformation orders the winner
        # before the loser's parents instead.
        g = builder()
        g.production("A", ["t"])
        g.production("B", ["A"])
        g.production("C", ["A"])
        g.production("E", ["B"])
        g.production("F", ["B"])
        g.production("D", ["C"])
        g.production("S", ["E", "F", "D"])
        g.prefer("B", over="C", name="RCB")
        g.prefer("C", over="B", name="RBC")
        schedule = build_schedule(g.build())
        order = schedule.order
        # First preference fits directly; the second is transformed: C is
        # ordered before B's parents E and F.
        assert order.index("B") < order.index("C")
        assert len(schedule.transformed) == 1
        assert schedule.transformed[0].name == "RBC"
        assert order.index("C") < order.index("E")
        assert order.index("C") < order.index("F")

    def test_untransformable_r_edge_relaxed(self):
        # The loser has no other parent, so transformation cannot apply
        # and the preference is relaxed (rollback compensates).
        g = builder()
        g.production("A", ["t"])
        g.production("B", ["A"])
        g.production("S", ["B"])
        # B is built FROM A, so "A before B" holds via d-edge; preferring
        # B over... A creates winner-edge B->A conflicting with d-edge.
        g.prefer("B", over="A", name="cyclic")
        schedule = build_schedule(g.build())
        names = [p.name for p in schedule.relaxed + schedule.transformed]
        assert "cyclic" in names

    def test_all_symbols_scheduled_exactly_once(self):
        g = builder()
        for head in "ABCDE":
            g.production(head, ["t"])
        g.production("S", list("ABCDE"))
        g.prefer("E", over="A")
        g.prefer("D", over="B")
        order = build_schedule(g.build()).order
        assert sorted(order) == sorted(set(order))
        assert set(order) == {"A", "B", "C", "D", "E", "S"}


class TestDeterminism:
    def test_same_grammar_same_order(self):
        def make():
            g = builder()
            g.production("A", ["t"])
            g.production("B", ["t"])
            g.production("S", ["A", "B"])
            g.prefer("B", over="A")
            return build_schedule(g.build()).order

        assert make() == make()


class TestStandardGrammarSchedule:
    def test_schedulable(self, standard_grammar):
        schedule = build_schedule(standard_grammar)
        assert schedule.order[-1] == "QI"

    def test_jit_invariants(self, standard_grammar):
        schedule = build_schedule(standard_grammar)
        position = {s: i for i, s in enumerate(schedule.order)}
        relaxed = {p.name for p in schedule.relaxed}
        transformed = {p.name for p in schedule.transformed}
        for preference in standard_grammar.preferences:
            if preference.winner_symbol == preference.loser_symbol:
                continue
            if preference.name in relaxed or preference.name in transformed:
                continue
            assert (
                position[preference.winner_symbol]
                < position[preference.loser_symbol]
            )

    def test_components_precede_heads(self, standard_grammar):
        schedule = build_schedule(standard_grammar)
        position = {s: i for i, s in enumerate(schedule.order)}
        for production in standard_grammar.productions:
            for component in production.components:
                if component in position and component != production.head:
                    assert position[component] < position[production.head]
