"""The interned-id parser core: invariants and build equivalence.

``repro.parser.core`` keeps its bookkeeping in dense interned ids
(``Instance.iid``) -- id-keyed bucket lists and subtree bitmasks instead
of object sets -- and is written to compile under mypyc.  Both moves
must be invisible: this suite pins the interning invariants the core
relies on (dense ids, registration order, mask/set agreement) and
extends the kernel equivalence net to the *build* axis: the interpreted
module, an independently loaded twin of it, and (when importable) the
mypyc-compiled build must produce byte-identical results across
naive/scalar/vector evaluation.  The compiled legs skip gracefully
where no compiled build exists -- the CI ``compiled-build`` job is the
environment that exercises them for real.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.grammar.standard import build_standard_grammar
from repro.parser import core as parser_core
from repro.parser.parser import (
    BestEffortParser,
    ParserConfig,
    ParseStats,
    active_core,
    load_interpreted_core,
    use_core,
)
from repro.parser.spatial_index import numpy_available
from tests.parser.test_kernel_equivalence import _fingerprint, zipf_soups

requires_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="vector kernel needs numpy (pip install 'repro[fast]')",
)

_GRAMMAR = build_standard_grammar()

#: A representative mid-size form for the non-hypothesis tests.
_FORM_HTML = """
<form>
  <b>Title</b> <input type=text name=title>
  <b>Author</b> <input type=text name=author>
  <select name=format><option>Any<option>Hardcover</select>
  <input type=radio name=sort value=price> Price
  <input type=radio name=sort value=date> Date
  <input type=submit value=Search>
</form>
"""


def _form_tokens():
    from repro.html.parser import parse_html
    from repro.tokens.tokenizer import FormTokenizer

    document = parse_html(_FORM_HTML)
    return FormTokenizer(document).tokenize(document.forms[0])


def _parse(tokens, **config):
    return BestEffortParser(_GRAMMAR, ParserConfig(**config)).parse(tokens)


def _load_twin():
    """An independent module object running the interpreted core source.

    When the installed core is compiled this is exactly
    :func:`load_interpreted_core`; otherwise the twin is loaded by hand
    so the ``use_core`` plumbing is exercised with a genuinely distinct
    module even in interpreter-only environments.
    """
    if parser_core.is_compiled():
        return load_interpreted_core()
    path = Path(parser_core.__file__)
    spec = importlib.util.spec_from_file_location(
        "repro.parser._twin_core", path
    )
    assert spec is not None and spec.loader is not None
    twin = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(twin)
    return twin


# ---------------------------------------------------------------------------
# Interning invariants.
# ---------------------------------------------------------------------------


def _check_interning_invariants(result):
    instances = result.instances
    # Dense: iid is the index into the per-parse intern table.
    assert [inst.iid for inst in instances] == list(range(len(instances)))
    # Intern order is registration order is uid order, the property that
    # lets every uid comparison in the old parser become an iid one.
    uids = [inst.uid for inst in instances]
    assert uids == sorted(uids)
    # The subtree bitmask agrees with the subtree itself, node for node.
    for inst in instances:
        subtree = {node.iid for node in inst.descendants()}
        mask = inst.descendant_iid_mask()
        decoded = {i for i in range(mask.bit_length()) if (mask >> i) & 1}
        assert decoded == subtree
        # Self is always a descendant; the mask is never empty.
        assert (mask >> inst.iid) & 1


def test_interning_invariants_on_form():
    _check_interning_invariants(_parse(_form_tokens()))


def test_interning_is_per_parse():
    """Two parses each get dense ids from zero -- no global drift."""
    tokens = _form_tokens()
    first = _parse(tokens)
    second = _parse(tokens)
    assert first.instances[0].iid == 0
    assert second.instances[0].iid == 0
    assert len(first.instances) == len(second.instances)
    # uids, by contrast, are globally monotonic.
    assert second.instances[0].uid > first.instances[0].uid


def test_intern_table_rejects_double_interning():
    from repro.grammar.instance import Instance, InternTable
    from repro.layout.box import BBox

    table = InternTable()
    inst = Instance("x", BBox(0, 1, 0, 1), coverage=frozenset({0}))
    assert table.add(inst) == 0
    with pytest.raises(AssertionError):
        table.add(inst)


class TestInterningProperties:
    @given(zipf_soups())
    @settings(max_examples=40, deadline=None)
    def test_invariants_hold_on_random_soups(self, tokens):
        _check_interning_invariants(_parse(tokens, kernel="scalar"))

    @requires_numpy
    @given(zipf_soups())
    @settings(max_examples=25, deadline=None)
    def test_invariants_hold_under_vector_kernel(self, tokens):
        _check_interning_invariants(_parse(tokens, kernel="vector"))


# ---------------------------------------------------------------------------
# The compiled stamp.
# ---------------------------------------------------------------------------


def test_parse_stats_compiled_stamp():
    """``stats.compiled`` records the build of the core that parsed."""
    result = _parse(_form_tokens())
    assert result.stats.compiled is parser_core.is_compiled()


def test_compiled_is_a_stamp_not_a_counter():
    """Like ``kernel``, ``compiled`` must stay out of ``counters()`` --
    counter sums and cache replays treat every counter as additive."""
    stats = ParseStats(tokens=0)
    assert "compiled" not in stats.counters()
    assert "kernel" not in stats.counters()


def test_extractor_tags_compiled():
    from repro.extractor import FormExtractor
    from repro.observability.metrics import MetricsRegistry

    registry = MetricsRegistry()
    extractor = FormExtractor(metrics=registry)
    detailed = extractor.extract_from_tokens(_form_tokens())
    trace = detailed.trace
    assert trace is not None
    parse_stage = trace.span_named("parse.construct")
    assert parse_stage is not None
    assert parse_stage.tags["compiled"] is parser_core.is_compiled()
    flag = "true" if parser_core.is_compiled() else "false"
    assert registry.counter(f"parse.compiled.{flag}") >= 1


# ---------------------------------------------------------------------------
# Core swapping and build equivalence.
# ---------------------------------------------------------------------------


def test_use_core_roundtrip():
    default = active_core()
    twin = _load_twin()
    previous = use_core(twin)
    try:
        assert previous is default
        assert active_core() is twin
    finally:
        use_core(previous)
    assert active_core() is default


def test_load_interpreted_core_is_idempotent():
    first = load_interpreted_core()
    second = load_interpreted_core()
    assert first is second
    if not parser_core.is_compiled():
        # Interpreter-only build: the module *is* the interpreted core.
        assert first is parser_core


def _parse_with_core(core_module, tokens, **config):
    previous = use_core(core_module)
    try:
        return _parse(tokens, **config)
    finally:
        use_core(previous)


def test_six_way_equivalence_net():
    """naive/scalar/vector x interpreted/compiled: one answer.

    Without a compiled build the second core leg is the independently
    loaded interpreted twin -- weaker evidence, but it keeps the whole
    swap-and-parse path exercised everywhere; the CI ``compiled-build``
    job runs this same test with the mypyc build installed, where the
    twin *is* the interpreted source and the net carries full weight.
    """
    tokens = _form_tokens()
    modes = [("naive", "scalar"), ("seminaive", "scalar")]
    if numpy_available():
        modes.append(("seminaive", "vector"))
    cores = {"active": active_core(), "twin": _load_twin()}

    fingerprints = {}
    structural = ("trees", "creation_order", "conditions", "truncated")
    for core_name, core_module in cores.items():
        for evaluation, kernel in modes:
            result = _parse_with_core(
                core_module, tokens, evaluation=evaluation, kernel=kernel
            )
            assert result.stats.compiled is core_module.is_compiled()
            fingerprints[(core_name, evaluation, kernel)] = _fingerprint(
                result
            )

    # Across cores, every (evaluation, kernel) cell is byte-identical.
    for evaluation, kernel in modes:
        assert (
            fingerprints[("active", evaluation, kernel)]
            == fingerprints[("twin", evaluation, kernel)]
        )
    # Across kernels (same core), semi-naive cells agree in full; naive
    # agrees structurally (it enumerates differently, so counters drift).
    baseline = fingerprints[("active", "seminaive", "scalar")]
    for evaluation, kernel in modes:
        cell = fingerprints[("active", evaluation, kernel)]
        if evaluation == "seminaive":
            assert cell == baseline
        else:
            for key in structural:
                assert cell[key] == baseline[key]


class TestBuildEquivalenceProperties:
    @given(zipf_soups())
    @settings(max_examples=25, deadline=None)
    def test_twin_core_agrees_on_random_soups(self, tokens):
        twin = _load_twin()
        default = _parse(tokens, kernel="scalar")
        swapped = _parse_with_core(twin, tokens, kernel="scalar")
        assert _fingerprint(swapped) == _fingerprint(default)

    @given(zipf_soups())
    @settings(max_examples=10, deadline=None)
    def test_twin_core_agrees_on_shipped_grammars(self, tokens):
        """Every shipped grammar, not just the standard one, parses
        identically under a swapped core build."""
        from repro.apps.navmenu import build_menu_grammar
        from repro.grammar.example_g import build_example_grammar

        twin = _load_twin()
        for grammar in (build_example_grammar(), build_menu_grammar()):
            parser = BestEffortParser(grammar, ParserConfig(kernel="scalar"))
            default = parser.parse(tokens)
            previous = use_core(twin)
            try:
                swapped = BestEffortParser(
                    grammar, ParserConfig(kernel="scalar")
                ).parse(tokens)
            finally:
                use_core(previous)
            assert _fingerprint(swapped) == _fingerprint(default)
            _check_interning_invariants(swapped)


@pytest.mark.skipif(
    not parser_core.is_compiled(),
    reason="no mypyc build installed; the CI compiled-build job runs this",
)
def test_compiled_core_is_actually_compiled():
    """When the mypyc build is importable, prove the two legs differ:
    the active core reports compiled, the interpreted twin does not."""
    assert parser_core.is_compiled()
    twin = load_interpreted_core()
    assert twin is not parser_core
    assert not twin.is_compiled()
    result = _parse_with_core(twin, _form_tokens())
    assert result.stats.compiled is False
