"""Tests for partial-tree maximization (paper Section 5.3)."""

from repro.grammar.instance import Instance
from repro.grammar.production import Production
from repro.parser.maximization import candidate_roots, covered_tokens, maximal_roots
from tests.conftest import make_token


def leaf(token_id, left=0.0):
    return Instance.for_token(make_token(token_id, "text", left, 0.0))


def node(symbol, *children):
    production = Production(
        head=symbol, components=tuple(c.symbol for c in children)
    )
    result = production.try_apply(tuple(children))
    assert result is not None
    return result


class TestCandidateRoots:
    def test_parentless_nonterminals_are_candidates(self):
        a = leaf(0)
        wrapper = node("A", a)
        assert candidate_roots([a, wrapper]) == [wrapper]

    def test_instances_with_live_parents_excluded(self):
        a = leaf(0)
        inner = node("A", a)
        outer = node("B", inner)
        assert candidate_roots([a, inner, outer]) == [outer]

    def test_dead_parent_does_not_block(self):
        a = leaf(0)
        inner = node("A", a)
        outer = node("B", inner)
        outer.alive = False
        assert candidate_roots([a, inner, outer]) == [inner]

    def test_dead_instances_excluded(self):
        a = leaf(0)
        wrapper = node("A", a)
        wrapper.alive = False
        assert candidate_roots([a, wrapper]) == []

    def test_bare_terminals_are_not_roots(self):
        a = leaf(0)
        assert candidate_roots([a]) == []


class TestMaximalRoots:
    def test_subsumed_root_dropped(self):
        shared = leaf(0)
        extra = leaf(1, 100)
        big = node("A", shared, extra)
        small_production = Production(head="B", components=("text",))
        small = small_production.try_apply((shared,))
        kept = maximal_roots([shared, extra, big, small])
        assert kept == [big]

    def test_overlapping_incomparable_roots_both_kept(self):
        # Paper Figure 14: partial trees overlap but none subsumes another;
        # all are kept.
        a, b, c = leaf(0), leaf(1, 100), leaf(2, 200)
        first = node("A", a, b)
        second = node("B", b, c)  # shares b with first: overlapping roots
        kept = maximal_roots([first, second])
        assert set(kept) == {first, second}

    def test_equal_coverage_keeps_first_derived(self):
        shared = leaf(0)
        first = node("A", shared)
        second_production = Production(head="B", components=("text",))
        second = second_production.try_apply((shared,))
        kept = maximal_roots([first, second])
        assert kept == [first]

    def test_reading_order(self):
        upper = node("A", leaf(0))
        lower_leaf = make_token(1, "text", 0.0, 100.0)
        lower = node("B", Instance.for_token(lower_leaf))
        kept = maximal_roots([lower, upper])
        assert kept == [upper, lower]

    def test_complete_parse_is_sole_root(self):
        a, b = leaf(0), leaf(1, 100)
        inner = node("A", a)
        complete = node("QI", inner, b)
        kept = maximal_roots([inner, complete])
        assert kept == [complete]


class TestCoveredTokens:
    def test_union(self):
        first = node("A", leaf(0))
        second = node("B", leaf(3, 300))
        assert covered_tokens([first, second]) == frozenset({0, 3})

    def test_empty(self):
        assert covered_tokens([]) == frozenset()
