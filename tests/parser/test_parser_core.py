"""Tests for the best-effort parser core: fix-point, pruning, rollback."""

from repro.grammar.dsl import GrammarBuilder
from repro.grammar.preference import subsumes
from repro.parser.parser import BestEffortParser, ExhaustiveParser, ParserConfig
from repro.spatial import left_of
from tests.conftest import make_token


def row_tokens(*terminals, start_x=0.0, gap=5.0, width=40.0):
    """Tokens laid out left to right on one line."""
    tokens = []
    x = start_x
    for index, terminal in enumerate(terminals):
        tokens.append(make_token(index, terminal, x, 0.0, width=width))
        x += width + gap
    return tokens


def list_grammar():
    """A minimal recursive-list grammar (the RBList shape)."""
    g = GrammarBuilder(start="S")
    g.terminals("radiobutton", "text")
    g.production(
        "U", ["radiobutton", "text"],
        constraint=lambda rb, tx: left_of(rb.bbox, tx.bbox),
        name="unit",
    )
    g.production("L", ["U"], name="seed")
    g.production(
        "L", ["L", "U"],
        constraint=lambda lst, unit: left_of(lst.bbox, unit.bbox),
        name="extend",
    )
    g.production("S", ["L"], name="top")
    return g


class TestFixpoint:
    def test_recursive_list_builds_full_chain(self):
        grammar = list_grammar().build()
        tokens = row_tokens(
            "radiobutton", "text", "radiobutton", "text",
            "radiobutton", "text",
        )
        result = BestEffortParser(grammar).parse(tokens)
        lists = [i for i in result.instances if i.symbol == "L"]
        assert any(len(lst.coverage) == 6 for lst in lists)

    def test_no_duplicate_instances(self):
        grammar = list_grammar().build()
        tokens = row_tokens("radiobutton", "text")
        result = BestEffortParser(grammar).parse(tokens)
        keys = [
            (i.production.name, tuple(c.uid for c in i.children))
            for i in result.instances
            if i.production is not None
        ]
        assert len(keys) == len(set(keys))

    def test_empty_input(self):
        grammar = list_grammar().build()
        result = BestEffortParser(grammar).parse([])
        assert result.trees == []
        assert result.stats.instances_created == 0

    def test_uncovered_tokens_reported(self):
        grammar = list_grammar().build()
        tokens = row_tokens("text")  # a text with no radio: only noise
        result = BestEffortParser(grammar).parse(tokens)
        assert [t.id for t in result.uncovered_tokens] == [0]


class TestJustInTimePruning:
    def grammar_with_preference(self):
        g = list_grammar()
        g.prefer("L", over="L", when=subsumes, name="longer-wins")
        return g.build()

    def test_sublists_pruned(self):
        grammar = self.grammar_with_preference()
        tokens = row_tokens(
            "radiobutton", "text", "radiobutton", "text",
            "radiobutton", "text",
        )
        result = BestEffortParser(grammar).parse(tokens)
        alive_lists = [
            i for i in result.instances if i.symbol == "L" and i.alive
        ]
        # Only the full chain [and its derivation spine] survives; the
        # spine's members are components, not conflicts.
        top = max(alive_lists, key=lambda i: len(i.coverage))
        assert len(top.coverage) == 6
        for lst in alive_lists:
            assert not top.conflicts_with(lst)

    def test_preference_statistics_recorded(self):
        grammar = self.grammar_with_preference()
        tokens = row_tokens(
            "radiobutton", "text", "radiobutton", "text",
        )
        result = BestEffortParser(grammar).parse(tokens)
        assert result.stats.preference_applications > 0
        assert result.stats.instances_pruned > 0

    def test_rollback_kills_ancestors(self):
        grammar = self.grammar_with_preference()
        tokens = row_tokens(
            "radiobutton", "text", "radiobutton", "text",
        )
        result = BestEffortParser(grammar).parse(tokens)
        for instance in result.instances:
            if not instance.alive:
                # No live instance may sit above a dead one.
                for parent in instance.parents:
                    assert not parent.alive

    def test_terminals_never_killed(self):
        grammar = self.grammar_with_preference()
        tokens = row_tokens(
            "radiobutton", "text", "radiobutton", "text",
        )
        result = BestEffortParser(grammar).parse(tokens)
        for instance in result.instances:
            if instance.is_terminal:
                assert instance.alive

    def test_preferences_disabled_keeps_everything(self):
        grammar = self.grammar_with_preference()
        tokens = row_tokens(
            "radiobutton", "text", "radiobutton", "text",
        )
        result = ExhaustiveParser(grammar).parse(tokens)
        assert result.stats.instances_pruned == 0
        assert all(i.alive for i in result.instances)


class TestBudget:
    def test_budget_truncates_gracefully(self):
        grammar = list_grammar().build()
        tokens = row_tokens(*(["radiobutton", "text"] * 6))
        config = ParserConfig(max_instances=10)
        result = BestEffortParser(grammar, config).parse(tokens)
        assert result.stats.truncated
        # Still returns whatever trees were built.
        assert isinstance(result.trees, list)

    def test_unbounded_run_not_truncated(self):
        grammar = list_grammar().build()
        tokens = row_tokens("radiobutton", "text")
        result = BestEffortParser(grammar).parse(tokens)
        assert not result.stats.truncated


class TestResultAccounting:
    def test_alive_count_consistent(self):
        g = list_grammar()
        g.prefer("L", over="L", when=subsumes)
        grammar = g.build()
        tokens = row_tokens(
            "radiobutton", "text", "radiobutton", "text",
            "radiobutton", "text",
        )
        result = BestEffortParser(grammar).parse(tokens)
        alive = sum(
            1 for i in result.instances if i.alive and not i.is_terminal
        )
        assert alive == result.stats.instances_alive

    def test_elapsed_time_positive(self):
        grammar = list_grammar().build()
        result = BestEffortParser(grammar).parse(row_tokens("text"))
        assert result.stats.elapsed_seconds >= 0

    def test_complete_parse_detection(self):
        grammar = list_grammar().build()
        tokens = row_tokens("radiobutton", "text")
        result = BestEffortParser(grammar).parse(tokens)
        assert result.is_complete
        assert len(result.complete_parses("S")) >= 1

    def test_temporary_instances_subset(self):
        grammar = list_grammar().build()
        tokens = row_tokens(
            "radiobutton", "text", "radiobutton", "text",
        )
        result = ExhaustiveParser(grammar).parse(tokens)
        temporary = result.temporary_instances()
        uids = {i.uid for i in result.instances}
        assert all(t.uid in uids for t in temporary)
