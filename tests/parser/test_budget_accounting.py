"""Combination-budget accounting: per-parse reset, per-symbol caps.

Two regressions are pinned here:

* ``ExhaustiveParser`` used to rebuild its config from scratch, silently
  dropping a caller-supplied ``max_combos_per_instance``.
* the combination budget used to be burnable in full by one pathological
  production, starving every later symbol in the schedule; it is now a
  per-``parse()`` global pool plus a per-symbol cap proportional to the
  remaining instance budget.
"""

from __future__ import annotations

import pytest

from repro.grammar.dsl import GrammarBuilder
from repro.parser.parser import (
    BestEffortParser,
    ExhaustiveParser,
    ParserConfig,
)
from tests.conftest import make_token


def explosive_grammar():
    """``B`` enumerates |A|^3 combinations and never matches; ``Y`` is a
    cheap later symbol that must still get its turn."""
    g = GrammarBuilder(start="S")
    g.terminals("radiobutton", "text")
    g.production("A", ["radiobutton"], name="seed-a")
    g.production(
        "B", ["A", "A", "A"],
        constraint=lambda x, y, z: False,
        name="explode",
    )
    g.production("Y", ["A", "text"], name="victim")
    g.production("S", ["B"], name="top-b")
    g.production("S", ["Y"], name="top-y")
    return g.build()


def explosive_tokens(a_count=8):
    tokens = [
        make_token(i, "radiobutton", 50.0 * i, 0.0) for i in range(a_count)
    ]
    tokens.append(make_token(a_count, "text", 50.0 * a_count, 0.0))
    return tokens


class TestExhaustiveParserConfig:
    def test_caller_combo_budget_preserved(self):
        grammar = explosive_grammar()
        config = ParserConfig(max_combos_per_instance=7, max_instances=123)
        parser = ExhaustiveParser(grammar, config)
        assert parser.config.max_combos_per_instance == 7
        assert parser.config.max_instances == 123
        assert parser.config.enable_preferences is False

    def test_default_config_still_disables_preferences(self):
        parser = ExhaustiveParser(explosive_grammar())
        defaults = ParserConfig()
        assert parser.config.enable_preferences is False
        assert (
            parser.config.max_combos_per_instance
            == defaults.max_combos_per_instance
        )

    def test_evaluation_mode_validated(self):
        with pytest.raises(ValueError):
            ParserConfig(evaluation="magic")


@pytest.mark.parametrize("mode", ["seminaive", "naive"])
class TestPerSymbolCap:
    def test_pathological_symbol_cannot_starve_later_symbols(self, mode):
        grammar = explosive_grammar()
        schedule = BestEffortParser(grammar).schedule
        # Precondition: the explosive symbol really runs first.
        assert schedule.order.index("B") < schedule.order.index("Y")
        config = ParserConfig(
            max_instances=20, max_combos_per_instance=4, evaluation=mode
        )
        result = BestEffortParser(grammar, config).parse(explosive_tokens())
        stats = result.stats
        # B blew its per-symbol cap ...
        assert stats.symbol_truncations >= 1
        assert stats.truncated
        # ... yet Y still instantiated from the remaining global budget.
        victims = [
            inst
            for inst in result.instances
            if inst.symbol == "Y" and inst.alive
        ]
        assert len(victims) == 8

    def test_unbudgeted_parse_finds_everything(self, mode):
        grammar = explosive_grammar()
        config = ParserConfig(evaluation=mode)
        result = BestEffortParser(grammar, config).parse(explosive_tokens())
        assert not result.stats.truncated
        assert result.stats.symbol_truncations == 0
        assert (
            len([i for i in result.instances if i.symbol == "Y" and i.alive])
            == 8
        )

    def test_budget_resets_between_parses(self, mode):
        """The combo pool is per-``parse()``, not per parser lifetime."""
        grammar = explosive_grammar()
        config = ParserConfig(
            max_instances=20, max_combos_per_instance=4, evaluation=mode
        )
        parser = BestEffortParser(grammar, config)
        tokens = explosive_tokens()
        first = parser.parse(tokens)
        second = parser.parse(tokens)
        assert second.stats.combos_examined == first.stats.combos_examined
        assert second.stats.instances_created == first.stats.instances_created
        assert len(second.trees) == len(first.trees)

    def test_global_budget_still_bounds_the_parse(self, mode):
        grammar = explosive_grammar()
        config = ParserConfig(
            max_instances=3, max_combos_per_instance=2, evaluation=mode
        )
        result = BestEffortParser(grammar, config).parse(explosive_tokens())
        stats = result.stats
        assert stats.truncated
        assert stats.combos_examined <= config.max_combos
