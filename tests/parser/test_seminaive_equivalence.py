"""Semi-naive vs naive fix-point equivalence.

The semi-naive evaluator (frontier deltas + declarative spatial bounds +
band indexing) must be a pure performance transformation: on every input it
has to produce the same instances in the same order as the original
full-product-with-dedup loop, hence identical maximal trees and an
identical merged semantic model.  These tests check that end to end over
generated forms from every domain, plus the truncation paths and the
conservativeness of the declarative bounds themselves.
"""

from __future__ import annotations

import pytest

from repro.datasets.domains import DOMAINS
from repro.datasets.generator import GeneratorProfile, SourceGenerator
from repro.grammar.standard import build_standard_grammar
from repro.html.parser import parse_html
from repro.merger import merge_parse_result
from repro.parser.parser import BestEffortParser, ParserConfig
from repro.parser.spatial_index import h_allows, v_allows

FORMS_PER_DOMAIN = 4  # 8 domains -> 32 generated forms

_PROFILE = GeneratorProfile(min_conditions=2, max_conditions=7)


def _generate_token_sets():
    """A mixed corpus: FORMS_PER_DOMAIN tokenized forms per domain."""
    from repro.tokens.tokenizer import FormTokenizer

    token_sets = []
    for offset, name in enumerate(sorted(DOMAINS)):
        generator = SourceGenerator(DOMAINS[name], _PROFILE)
        for index in range(FORMS_PER_DOMAIN):
            source = generator.generate(seed=9_000 + offset * 100 + index)
            document = parse_html(source.html)
            forms = document.forms
            tokenizer = FormTokenizer(document)
            tokens = tokenizer.tokenize(forms[0] if forms else None)
            token_sets.append((f"{name}-{index}", tokens))
    return token_sets


_TOKEN_SETS = _generate_token_sets()
_GRAMMAR = build_standard_grammar()


def _fingerprint(result):
    """Everything that must match between evaluation modes."""
    model = merge_parse_result(result)
    return {
        "trees": [tree.pretty() for tree in result.trees],
        "instances_created": result.stats.instances_created,
        "instances_alive": result.stats.instances_alive,
        "truncated": result.stats.truncated,
        # uid values are globally monotonic across parses; creation ORDER
        # plus symbol plus liveness is the portable identity.
        "creation_order": [
            (inst.symbol, inst.alive)
            for inst in result.instances
            if not inst.is_terminal
        ],
        "conditions": [str(condition) for condition in model.conditions],
    }


@pytest.mark.parametrize(
    "label,tokens", _TOKEN_SETS, ids=[label for label, _ in _TOKEN_SETS]
)
def test_modes_agree_on_generated_forms(label, tokens):
    """Byte-identical forests, accounting, and merger output per form."""
    naive = BestEffortParser(_GRAMMAR, ParserConfig(evaluation="naive"))
    seminaive = BestEffortParser(
        _GRAMMAR, ParserConfig(evaluation="seminaive")
    )
    base = _fingerprint(naive.parse(tokens))
    fast = _fingerprint(seminaive.parse(tokens))
    assert fast == base


def test_corpus_is_large_and_mixed():
    assert len(_TOKEN_SETS) >= 30
    assert len({label.rsplit("-", 1)[0] for label, _ in _TOKEN_SETS}) == len(
        DOMAINS
    )


def test_seminaive_examines_fewer_combos():
    """The point of the rewrite: strictly less enumeration, never more."""
    naive_total = fast_total = prefiltered = 0
    for _, tokens in _TOKEN_SETS:
        naive = BestEffortParser(_GRAMMAR, ParserConfig(evaluation="naive"))
        fast = BestEffortParser(_GRAMMAR, ParserConfig(evaluation="seminaive"))
        naive_total += naive.parse(tokens).stats.combos_examined
        result = fast.parse(tokens)
        fast_total += result.stats.combos_examined
        prefiltered += result.stats.combos_prefiltered
    assert fast_total < naive_total
    assert prefiltered > 0
    # The acceptance bar for the optimization is >=3x on a mixed corpus.
    assert naive_total / max(1, fast_total) >= 3.0


def test_instance_budget_truncation_is_identical():
    """Instance-budget exhaustion hits both modes at the same point.

    Instance creation order is identical in both modes, so truncating on
    ``max_instances`` must yield the same partial forest.
    """
    _, tokens = max(_TOKEN_SETS, key=lambda pair: len(pair[1]))
    for budget in (10, 40, 120):
        config = ParserConfig(max_instances=budget)
        naive = BestEffortParser(
            _GRAMMAR, ParserConfig(max_instances=budget, evaluation="naive")
        ).parse(tokens)
        fast = BestEffortParser(_GRAMMAR, config).parse(tokens)
        assert naive.stats.truncated and fast.stats.truncated
        assert _fingerprint(fast) == _fingerprint(naive)


def test_combo_budget_truncation_invariants():
    """Combo-budget truncation may diverge (prefiltered combinations cost
    nothing in semi-naive mode) but every structural invariant must hold."""
    _, tokens = max(_TOKEN_SETS, key=lambda pair: len(pair[1]))
    for mode in ("naive", "seminaive"):
        config = ParserConfig(max_combos_per_instance=2, evaluation=mode)
        result = BestEffortParser(_GRAMMAR, config).parse(tokens)
        stats = result.stats
        alive = [
            inst
            for inst in result.instances
            if inst.alive and not inst.is_terminal
        ]
        assert stats.instances_alive == len(alive)
        assert stats.combos_examined <= config.max_combos
        assert stats.instances_created <= config.max_instances
        for tree in result.trees:
            assert tree.alive


class _BoundsAuditParser(BestEffortParser):
    """Naive-mode parser asserting the declarative bounds are conservative.

    Every combination the *constraint* accepts must also pass the
    production's declarative ``bounds`` -- otherwise the semi-naive
    pre-filter could drop a real instance.
    """

    def __init__(self, grammar):
        super().__init__(grammar, ParserConfig(evaluation="naive"))
        self.audited = 0

    def _apply_naive(self, production, state, seen_keys, cap, stats, budget,
                     guard=None):
        created = super()._apply_naive(
            production, state, seen_keys, cap, stats, budget, guard
        )
        for instance in created:
            combo = instance.children
            for i, j, h_spec, v_spec in production.bounds:
                anchor, candidate = combo[i].bbox, combo[j].bbox
                assert h_allows(h_spec, anchor, candidate) and v_allows(
                    v_spec, anchor, candidate
                ), (
                    f"{production.name} bound ({i},{j}) rejects a "
                    f"constraint-accepted combination"
                )
                self.audited += 1
        return created


def test_declarative_bounds_are_conservative():
    """No bound may reject a combination the spatial constraint accepts."""
    parser = _BoundsAuditParser(_GRAMMAR)
    for _, tokens in _TOKEN_SETS[:: max(1, len(_TOKEN_SETS) // 12)]:
        parser.parse(tokens)
    assert parser.audited > 100
