"""Paper-faithful parsing scenarios: Figures 5, 7-9 and Section 4.2.1.

These tests exercise the example grammar G of Figure 6 against the
amazon.com fragment of Figure 5, asserting the behaviours the paper
describes: the RBU-vs-Attr ambiguity (Example 2, Figure 7), the radio-list
grouping ambiguity (Example 3, Figures 8-9), the 42-instance correct
parse, and the brute-force blow-up that just-in-time pruning controls.
"""

import pytest

from repro.datasets.fixtures import QAM_FRAGMENT_HTML
from repro.parser.parser import BestEffortParser, ExhaustiveParser
from repro.tokens.tokenizer import tokenize_html


@pytest.fixture(scope="module")
def fragment_tokens():
    return tokenize_html(QAM_FRAGMENT_HTML)


@pytest.fixture(scope="module")
def best_effort_result(example_grammar, fragment_tokens):
    return BestEffortParser(example_grammar).parse(fragment_tokens)


@pytest.fixture(scope="module")
def exhaustive_result(example_grammar, fragment_tokens):
    return ExhaustiveParser(example_grammar).parse(fragment_tokens)


class TestFigure5Tokens:
    def test_sixteen_tokens(self, fragment_tokens):
        # Figure 5: the fragment tokenizes into 16 tokens.
        assert len(fragment_tokens) == 16

    def test_token_mix(self, fragment_tokens):
        from collections import Counter

        counts = Counter(t.terminal for t in fragment_tokens)
        assert counts == {"text": 8, "radiobutton": 6, "textbox": 2}

    def test_author_token_attributes(self, fragment_tokens):
        author = next(t for t in fragment_tokens if t.sval == "Author")
        assert author.terminal == "text"
        # pos is the universal attribute (Figure 5).
        assert author.bbox.width > 0


class TestCorrectParse:
    def test_single_complete_tree(self, best_effort_result):
        assert best_effort_result.is_complete
        assert len(best_effort_result.trees) == 1

    def test_paper_instance_count(self, best_effort_result):
        # Section 4.2.1: "one correct parse tree containing 42 instances
        # (26 non-terminals and 16 terminals)".
        tree = best_effort_result.trees[0]
        assert tree.size() == 42
        terminals = sum(1 for n in tree.descendants() if n.is_terminal)
        assert terminals == 16
        assert tree.size() - terminals == 26

    def test_textop_interpretation_wins(self, best_effort_result):
        # Figure 9 parse tree 1: the radio list is the author's operator.
        tree = best_effort_result.trees[0]
        textops = list(tree.find_all("TextOp"))
        assert len(textops) == 2  # author and title
        enums = list(tree.find_all("EnumRB"))
        assert enums == []

    def test_operator_payloads(self, best_effort_result):
        tree = best_effort_result.trees[0]
        operator_sets = {
            textop.payload["operators"]
            for textop in tree.find_all("TextOp")
        }
        assert (
            "first name/initials and last name",
            "start(s) of last name",
            "exact name",
        ) in operator_sets


class TestAmbiguityControl:
    def test_rbu_beats_attr_on_radio_labels(
        self, best_effort_result, fragment_tokens
    ):
        # Example 2 / Example 5: the Attr reading of a radio label is
        # pruned by the RBU interpretation (preference R1).
        label_ids = {
            t.id for t in fragment_tokens
            if t.sval.startswith(("first name", "start(s)", "exact name"))
        }
        for instance in best_effort_result.instances:
            if instance.symbol == "Attr" and instance.coverage <= label_ids:
                assert not instance.alive

    def test_full_rblist_survives_r2(self, best_effort_result):
        # Example 3 / Figure 8: the length-3 list interpretation wins.
        alive_lists = [
            i
            for i in best_effort_result.instances
            if i.symbol == "RBList" and i.alive
        ]
        assert max(len(i.coverage) for i in alive_lists) == 6

    def test_pruning_reduces_instances(
        self, best_effort_result, exhaustive_result
    ):
        # Section 4.2.1's headline: brute force explodes, pruning doesn't.
        pruned = best_effort_result.stats.instances_created
        brute = exhaustive_result.stats.instances_created
        assert brute > 10 * pruned

    def test_exhaustive_has_many_complete_parses(self, exhaustive_result):
        # The paper reports 25 parse trees for its grammar; the exact count
        # depends on thresholds, but global ambiguity must be plural.
        assert len(exhaustive_result.complete_parses("QI")) > 1

    def test_exhaustive_temporary_instances_dominate(self, exhaustive_result):
        # Paper: 645 of 773 instances were temporary.
        temporary = len(exhaustive_result.temporary_instances())
        created = exhaustive_result.stats.instances_created
        assert temporary > created / 2

    def test_best_effort_same_final_tree_as_exhaustive_max(
        self, best_effort_result, exhaustive_result
    ):
        # Pruning must not change the chosen maximal interpretation.
        best = best_effort_result.trees[0]
        exhaustive_best = exhaustive_result.trees[0]
        assert best.coverage == exhaustive_best.coverage
