"""Spatial-predicate memoization: pure speedup, identical output."""

from __future__ import annotations

from repro.datasets.domains import DOMAINS
from repro.datasets.generator import GeneratorProfile, SourceGenerator
from repro.extractor import FormExtractor
from repro.grammar.standard import build_standard_grammar
from repro.html.parser import parse_html
from repro.parser.parser import BestEffortParser, ParserConfig
from repro.semantics.serialize import model_to_dict
from repro.tokens.tokenizer import FormTokenizer


def _token_corpus(count=10):
    profile = GeneratorProfile(min_conditions=3, max_conditions=7)
    names = sorted(DOMAINS)
    corpus = []
    for i in range(count):
        source = SourceGenerator(
            DOMAINS[names[i % len(names)]], profile
        ).generate(seed=51_000 + i)
        document = parse_html(source.html)
        forms = document.forms
        corpus.append(
            FormTokenizer(document).tokenize(forms[0] if forms else None)
        )
    return corpus


class TestSpatialMemo:
    def test_enabled_by_default_and_reported_separately(self):
        assert ParserConfig().memoize_spatial is True
        parser = BestEffortParser(build_standard_grammar())
        stats_counters = parser.parse(_token_corpus(1)[0]).stats.counters()
        assert "spatial_memo_hits" in stats_counters
        # Reported apart from combos_examined: the 7.48x combo-reduction
        # baseline stays comparable whether the memo is on or off.
        assert "combos_examined" in stats_counters

    def test_memo_changes_no_counter_but_its_own(self):
        grammar = build_standard_grammar()
        on = BestEffortParser(grammar, ParserConfig(memoize_spatial=True))
        off = BestEffortParser(grammar, ParserConfig(memoize_spatial=False))
        total_hits = 0
        for tokens in _token_corpus():
            with_memo = on.parse(tokens)
            without = off.parse(tokens)
            hits = with_memo.stats.spatial_memo_hits
            total_hits += hits
            assert without.stats.spatial_memo_hits == 0
            counters_on = dict(with_memo.stats.counters())
            counters_off = dict(without.stats.counters())
            counters_on.pop("spatial_memo_hits")
            counters_off.pop("spatial_memo_hits")
            assert counters_on == counters_off
            assert len(with_memo.trees) == len(without.trees)
        assert total_hits > 0  # the memo actually fired somewhere

    def test_memo_does_not_change_extracted_models(self):
        profile = GeneratorProfile(min_conditions=3, max_conditions=7)
        names = sorted(DOMAINS)
        sources = [
            SourceGenerator(DOMAINS[names[i % len(names)]], profile)
            .generate(seed=52_000 + i)
            .html
            for i in range(6)
        ]
        on = FormExtractor(parser_config=ParserConfig(memoize_spatial=True))
        off = FormExtractor(
            parser_config=ParserConfig(memoize_spatial=False)
        )
        for html in sources:
            assert model_to_dict(on.extract(html)) == model_to_dict(
                off.extract(html)
            )
