"""Property-based tests for the 2P schedule graph on random grammars."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar.dsl import GrammarBuilder
from repro.parser.schedule import build_schedule

_SYMBOLS = [f"N{i}" for i in range(8)]


@st.composite
def random_grammars(draw):
    """Random layered grammars (d-edges acyclic by construction) with
    arbitrary preferences."""
    layer_count = draw(st.integers(min_value=2, max_value=4))
    layers: list[list[str]] = [["t"]]
    symbol_iter = iter(_SYMBOLS)
    for _ in range(layer_count):
        size = draw(st.integers(min_value=1, max_value=2))
        layers.append([next(symbol_iter) for _ in range(size)])

    g = GrammarBuilder(start=layers[-1][0])
    g.terminals("t")
    for depth in range(1, len(layers)):
        below = [s for layer in layers[:depth] for s in layer]
        for symbol in layers[depth]:
            component_count = draw(st.integers(min_value=1, max_value=2))
            components = [
                below[draw(st.integers(0, len(below) - 1))]
                for _ in range(component_count)
            ]
            g.production(symbol, components)
    # Ensure the start symbol can reach everything is not required; the
    # scheduler works on the production set alone.
    nonterminals = [s for layer in layers[1:] for s in layer]
    preference_count = draw(st.integers(min_value=0, max_value=6))
    for _ in range(preference_count):
        winner = nonterminals[draw(st.integers(0, len(nonterminals) - 1))]
        loser = nonterminals[draw(st.integers(0, len(nonterminals) - 1))]
        g.prefer(winner, over=loser)
    return g.build()


class TestScheduleProperties:
    @given(random_grammars())
    @settings(max_examples=120, deadline=None)
    def test_schedules_without_error(self, grammar):
        schedule = build_schedule(grammar)
        assert set(schedule.order) == {
            production.head for production in grammar.productions
        }

    @given(random_grammars())
    @settings(max_examples=120, deadline=None)
    def test_components_always_precede_heads(self, grammar):
        schedule = build_schedule(grammar)
        position = {s: i for i, s in enumerate(schedule.order)}
        for production in grammar.productions:
            for component in production.components:
                if component in position and component != production.head:
                    assert position[component] < position[production.head]

    @given(random_grammars())
    @settings(max_examples=120, deadline=None)
    def test_honoured_preferences_ordered(self, grammar):
        schedule = build_schedule(grammar)
        position = {s: i for i, s in enumerate(schedule.order)}
        weakened = {p.name for p in schedule.relaxed} | {
            p.name for p in schedule.transformed
        }
        for preference in grammar.preferences:
            if preference.winner_symbol == preference.loser_symbol:
                continue
            if preference.name in weakened:
                continue
            assert (
                position[preference.winner_symbol]
                < position[preference.loser_symbol]
            ), preference.name

    @given(random_grammars())
    @settings(max_examples=60, deadline=None)
    def test_transformed_preferences_order_losers_parents(self, grammar):
        schedule = build_schedule(grammar)
        position = {s: i for i, s in enumerate(schedule.order)}
        for preference in schedule.transformed:
            winner = preference.winner_symbol
            for parent in grammar.component_heads(preference.loser_symbol):
                if parent in (winner, preference.loser_symbol):
                    continue
                assert position[winner] < position[parent], (
                    preference.name, parent,
                )

    @given(random_grammars())
    @settings(max_examples=60, deadline=None)
    def test_deterministic(self, grammar):
        assert build_schedule(grammar).order == build_schedule(grammar).order
