"""Property-based tests: parser invariants over random token soups.

The best-effort contract: *any* token arrangement parses without errors,
and the structural invariants hold -- coverage sets are consistent, dead
instances never sit below live ones in the derivation DAG, maximal trees
are mutually non-subsuming, and extracted conditions within one tree claim
disjoint tokens.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grammar.standard import build_standard_grammar
from repro.layout.box import BBox
from repro.merger.merger import Merger
from repro.parser.parser import BestEffortParser, ParserConfig
from repro.tokens.model import SelectOption, Token

_GRAMMAR = build_standard_grammar()
_PARSER = BestEffortParser(_GRAMMAR, ParserConfig(max_instances=20_000))

_WORDS = ("Author", "Title", "from", "to", "exact name", "contains",
          "Price", "Search", "miles", "New", "Used", "x", "Keywords:",
          "starts with", "Any", "2004")


@st.composite
def token_soups(draw):
    """Random plausible form layouts: tokens on a loose grid."""
    count = draw(st.integers(min_value=0, max_value=14))
    tokens = []
    for index in range(count):
        terminal = draw(st.sampled_from(
            ("text", "textbox", "selectlist", "radiobutton", "checkbox",
             "submitbutton")
        ))
        column = draw(st.integers(min_value=0, max_value=3))
        row = draw(st.integers(min_value=0, max_value=5))
        left = 10.0 + column * 120 + draw(st.integers(0, 30))
        top = 10.0 + row * 24 + draw(st.integers(0, 4))
        width = {"text": 60.0, "textbox": 110.0, "selectlist": 80.0,
                 "radiobutton": 13.0, "checkbox": 13.0,
                 "submitbutton": 60.0}[terminal]
        height = 13.0 if terminal in ("radiobutton", "checkbox") else 20.0
        attrs = {}
        if terminal == "text":
            attrs["sval"] = draw(st.sampled_from(_WORDS))
        elif terminal == "selectlist":
            attrs["name"] = f"sel{index}"
            attrs["options"] = (
                SelectOption("a", "a"), SelectOption("b", "b"),
            )
        elif terminal != "submitbutton":
            attrs["name"] = f"f{index}"
            if terminal in ("radiobutton", "checkbox"):
                attrs["value"] = f"v{index}"
        tokens.append(Token(
            id=index, terminal=terminal,
            bbox=BBox(left, left + width, top, top + height),
            attrs=attrs,
        ))
    return tokens


class TestParserInvariants:
    @given(token_soups())
    @settings(max_examples=60, deadline=None)
    def test_never_raises(self, tokens):
        _PARSER.parse(tokens)

    @given(token_soups())
    @settings(max_examples=40, deadline=None)
    def test_tree_coverage_within_input(self, tokens):
        result = _PARSER.parse(tokens)
        token_ids = {token.id for token in tokens}
        for tree in result.trees:
            assert tree.coverage <= token_ids

    @given(token_soups())
    @settings(max_examples=40, deadline=None)
    def test_coverage_equals_leaf_tokens(self, tokens):
        result = _PARSER.parse(tokens)
        for tree in result.trees:
            leaves = {
                node.token.id
                for node in tree.descendants()
                if node.token is not None
            }
            assert leaves == tree.coverage

    @given(token_soups())
    @settings(max_examples=40, deadline=None)
    def test_trees_alive_and_parentless(self, tokens):
        result = _PARSER.parse(tokens)
        for tree in result.trees:
            assert tree.alive
            assert not any(parent.alive for parent in tree.parents)

    @given(token_soups())
    @settings(max_examples=40, deadline=None)
    def test_maximal_trees_mutually_nonsubsuming(self, tokens):
        result = _PARSER.parse(tokens)
        for i, first in enumerate(result.trees):
            for second in result.trees[i + 1:]:
                assert not first.coverage < second.coverage
                assert not second.coverage < first.coverage

    @given(token_soups())
    @settings(max_examples=40, deadline=None)
    def test_no_live_parent_of_dead_child(self, tokens):
        result = _PARSER.parse(tokens)
        for instance in result.instances:
            if not instance.alive and not instance.is_terminal:
                assert not any(p.alive for p in instance.parents)

    @given(token_soups())
    @settings(max_examples=40, deadline=None)
    def test_conditions_disjoint_within_tree(self, tokens):
        result = _PARSER.parse(tokens)
        for tree in result.trees:
            seen: set[int] = set()
            stack = [tree]
            while stack:
                node = stack.pop()
                if node.payload.get("condition") is not None:
                    assert not (seen & node.coverage)
                    seen |= node.coverage
                    continue
                stack.extend(node.children)

    @given(token_soups())
    @settings(max_examples=30, deadline=None)
    def test_merger_never_raises_and_is_consistent(self, tokens):
        result = _PARSER.parse(tokens)
        report = Merger().merge(result)
        token_ids = {token.id for token in tokens}
        for entry in report.extracted:
            assert entry.coverage <= token_ids
        # missing + unclaimed + claimed text partition the text tokens.
        claimed: set[int] = set()
        for entry in report.extracted:
            claimed |= entry.coverage
        missing_ids = {t.id for t in report.missing_tokens}
        unclaimed_ids = {t.id for t in report.unclaimed_text_tokens}
        assert not (missing_ids & unclaimed_ids)
        for token in tokens:
            if token.terminal == "text":
                assert (
                    token.id in claimed
                    or token.id in missing_ids
                    or token.id in unclaimed_ids
                )

    @given(token_soups())
    @settings(max_examples=20, deadline=None)
    def test_deterministic(self, tokens):
        first = _PARSER.parse(tokens)
        second = _PARSER.parse(tokens)
        assert [t.coverage for t in first.trees] == [
            t.coverage for t in second.trees
        ]
