"""Tests for the admission gate (repro.analysis.admit)."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    AdmissionReport,
    CandidateError,
    CandidateProduction,
    GrammarView,
    admit_production,
    as_view,
)
from repro.grammar.production import Production
from repro.grammar.standard import build_standard_grammar

CANDIDATES_DIR = (
    Path(__file__).resolve().parent.parent.parent
    / "examples"
    / "candidates"
)


def view(*productions, terminals=("t", "u"), preferences=(), start=None):
    return GrammarView.from_parts(
        terminals=terminals,
        productions=productions,
        start=start if start is not None else productions[0].head,
        preferences=preferences,
    )


class TestCandidateParsing:
    def test_minimal_payload(self):
        candidate = CandidateProduction.from_dict(
            {"head": "A", "components": ["t"]}
        )
        assert candidate.head == "A"
        assert candidate.components == ("t",)
        assert candidate.display_name() == "A<-t"

    def test_full_payload(self):
        candidate = CandidateProduction.from_dict(
            {
                "head": "CP",
                "components": ["Attr", "Val"],
                "name": "cand-cp",
                "bounds": [[0, 1, 12.0, [0, 5]], [0, 1, None, [None, 8]]],
                "terminals": ["newclass"],
                "preferences": [
                    {"winner": "CP", "loser": "CP", "when": "subsumes"}
                ],
            }
        )
        assert candidate.display_name() == "cand-cp"
        assert candidate.bounds == (
            (0, 1, 12.0, (0.0, 5.0)),
            (0, 1, None, (None, 8.0)),
        )
        assert candidate.terminals == frozenset({"newclass"})
        assert candidate.preferences == (
            ("CP", "CP", "subsumes", ""),
        )

    def test_from_json_round_trip(self):
        payload = {"head": "A", "components": ["t"], "name": "n"}
        assert CandidateProduction.from_json(
            json.dumps(payload)
        ) == CandidateProduction.from_dict(payload)

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {"components": ["t"]},                        # no head
            {"head": "", "components": ["t"]},            # empty head
            {"head": "A"},                                # no components
            {"head": "A", "components": []},              # empty components
            {"head": "A", "components": ["t", 3]},        # non-string comp
            {"head": "A", "components": ["t"], "zoo": 1},  # unknown key
            {"head": "A", "components": ["t"], "name": 7},
            {"head": "A", "components": ["t"], "terminals": "x"},
            {"head": "A", "components": ["t"], "bounds": "x"},
            {"head": "A", "components": ["t"], "bounds": [[0, 1, 2]]},
            {"head": "A", "components": ["t"],
             "bounds": [[0.5, 1, None, None]]},           # float position
            {"head": "A", "components": ["t"],
             "bounds": [[True, 1, None, None]]},          # bool position
            {"head": "A", "components": ["t", "u"],
             "bounds": [[0, 1, True, None]]},             # bool axis
            {"head": "A", "components": ["t", "u"],
             "bounds": [[0, 1, [1, 2, 3], None]]},        # 3-long interval
            {"head": "A", "components": ["t", "u"],
             "bounds": [[0, 1, ["lo", 2], None]]},        # non-number end
            {"head": "A", "components": ["t"], "preferences": "x"},
            {"head": "A", "components": ["t"], "preferences": [[]]},
            {"head": "A", "components": ["t"],
             "preferences": [{"winner": "A"}]},           # no loser
            {"head": "A", "components": ["t"],
             "preferences": [
                 {"winner": "A", "loser": "B", "when": "sometimes"}
             ]},                                          # unknown criteria
        ],
    )
    def test_malformed_payloads_raise_candidate_error(self, payload):
        with pytest.raises(CandidateError):
            CandidateProduction.from_dict(payload)

    def test_bad_json_text_raises_candidate_error(self):
        with pytest.raises(CandidateError, match="not valid JSON"):
            CandidateProduction.from_json("{nope")

    def test_bad_bound_positions_surface_as_candidate_error(self):
        # 0 <= i < j is a Production invariant; through the gate it is a
        # payload defect, not a crash.
        candidate = CandidateProduction.from_dict(
            {
                "head": "A",
                "components": ["t", "u"],
                "bounds": [[1, 0, 5.0, None]],
            }
        )
        with pytest.raises(CandidateError):
            admit_production(
                view(Production("S", ("t",)), start="S"), candidate
            )


class TestVerdicts:
    def _base(self):
        return view(
            Production("S", ("A",)),
            Production("A", ("t",)),
            start="S",
        )

    def test_accept_when_no_new_findings(self):
        report = admit_production(
            self._base(),
            CandidateProduction.from_dict(
                {"head": "B", "components": ["u"], "name": "cand-b"}
            ),
        )
        # B <- u introduces only info-severity findings (an unreachable
        # head is a warning -- checked below -- but u's consumer *is*
        # this new head, so here it is C002-free only if reachable).
        assert isinstance(report, AdmissionReport)
        assert report.verdict in ("accept", "accept-with-warnings")
        assert report.admitted

    def test_accept_with_warnings_on_new_warning(self):
        # The candidate head is unreachable from the start symbol: a new
        # G00x-family warning, but nothing blocking.
        report = admit_production(
            self._base(),
            CandidateProduction.from_dict(
                {"head": "B", "components": ["u"]}
            ),
        )
        assert report.verdict == "accept-with-warnings"
        assert report.admitted
        assert not report.blocking
        assert any(
            d.severity == "warning" for d in report.new_diagnostics
        )

    def test_reject_on_duplicate_fire(self):
        # An exact copy of an existing unconstrained production: G020 is
        # in BLOCKING_CODES even though its severity is warning.
        report = admit_production(
            self._base(),
            CandidateProduction.from_dict(
                {"head": "A", "components": ["t"]}
            ),
        )
        assert report.verdict == "reject"
        assert not report.admitted
        assert {d.code for d in report.blocking} >= {"G020"}

    def test_companion_self_preference_lifts_p010(self):
        # Overlapping same-head variants need arbitration; a candidate
        # that ships its own self-preference clears P010 (G020 still
        # rejects exact duplicates, so use differing components).
        base = view(
            Production("S", ("A",)),
            Production("A", ("B",)),
            Production("B", ("t",)),
            start="S",
        )
        bare = admit_production(
            base,
            CandidateProduction.from_dict(
                {"head": "A", "components": ["C"],
                 "terminals": [], "name": "cand"}
            ),
        )
        # A <- C with C undefined: C is underivable -- error territory.
        assert bare.verdict == "reject"

    def test_delta_excludes_preexisting_diagnostics(self):
        # The base grammar already carries a G023 (two roles on 't');
        # a candidate touching only 'u' must not be charged for it.
        base = view(
            Production("S", ("A", "B")),
            Production("A", ("t",)),
            Production("B", ("t",)),
            start="S",
        )
        report = admit_production(
            base,
            CandidateProduction.from_dict(
                {"head": "S", "components": ["A", "B", "A"],
                 "name": "cand-wide"}
            ),
        )
        base_codes = {d.code for d in report.base_report.diagnostics}
        assert "G023" in base_codes
        for diagnostic in report.new_diagnostics:
            assert (
                json.dumps(diagnostic.to_dict(), sort_keys=True)
                not in {
                    json.dumps(d.to_dict(), sort_keys=True)
                    for d in report.base_report.diagnostics
                }
            )

    def test_new_terminals_are_declared(self):
        # Declaring the terminal with the candidate avoids the
        # unknown-symbol error an undeclared class would trigger.
        report = admit_production(
            self._base(),
            CandidateProduction.from_dict(
                {
                    "head": "S",
                    "components": ["newclass"],
                    "terminals": ["newclass"],
                }
            ),
        )
        undeclared = admit_production(
            self._base(),
            CandidateProduction.from_dict(
                {"head": "S", "components": ["newclass"]}
            ),
        )
        assert report.admitted
        assert not undeclared.admitted


class TestReportShape:
    def _report(self):
        return admit_production(
            view(
                Production("S", ("A",)),
                Production("A", ("t",)),
                start="S",
            ),
            CandidateProduction.from_dict(
                {"head": "A", "components": ["t"], "name": "dup"}
            ),
        )

    def test_to_dict_schema(self):
        payload = self._report().to_dict()
        assert payload["schema"] == 2
        assert payload["candidate"] == "dup"
        assert payload["verdict"] == "reject"
        assert payload["admitted"] is False
        assert isinstance(payload["new_diagnostics"], list)
        assert isinstance(payload["blocking"], list)
        assert "base_summary" in payload
        assert "extended_summary" in payload

    def test_to_json_is_valid(self):
        payload = json.loads(self._report().to_json())
        assert payload["schema"] == 2

    def test_describe_names_the_blocking_findings(self):
        text = self._report().describe()
        assert "reject" in text
        assert "blocking:" in text
        assert "G020" in text

    def test_describe_clean_candidate(self):
        report = admit_production(
            view(
                Production("S", ("A",)),
                Production("A", ("t",)),
                start="S",
            ),
            CandidateProduction.from_dict(
                {"head": "S", "components": ["A", "A"], "name": "pair"}
            ),
        )
        assert report.verdict in ("accept", "accept-with-warnings")
        assert "pair" in report.describe()


class TestVendoredCandidates:
    """The CI smoke pair under examples/candidates/ must keep working."""

    def _standard_view(self):
        return as_view(build_standard_grammar())

    def test_good_candidate_is_admitted(self):
        candidate = CandidateProduction.from_json(
            (CANDIDATES_DIR / "good_candidate.json").read_text()
        )
        report = admit_production(self._standard_view(), candidate)
        assert report.verdict == "accept"
        assert report.admitted
        # Every delta finding is informational.
        assert all(
            d.severity == "info" for d in report.new_diagnostics
        )

    def test_bad_candidate_is_rejected(self):
        candidate = CandidateProduction.from_json(
            (CANDIDATES_DIR / "bad_candidate.json").read_text()
        )
        report = admit_production(self._standard_view(), candidate)
        assert report.verdict == "reject"
        codes = {d.code for d in report.blocking}
        # The duplicate of the unconstrained P-note double-fires (G020)
        # and the new overlap has no arbitration (P010).
        assert codes == {"G020", "P010"}

    def test_gate_leaves_the_base_grammar_clean(self):
        # Pre-existing standard-grammar findings never count against a
        # candidate: the bad candidate's delta must not include the
        # long-known G006/S003 warnings.
        candidate = CandidateProduction.from_json(
            (CANDIDATES_DIR / "bad_candidate.json").read_text()
        )
        report = admit_production(self._standard_view(), candidate)
        delta_codes = {d.code for d in report.new_diagnostics}
        assert "G006" not in delta_codes
        assert "S003" not in delta_codes
