"""The ``validate_grammar`` opt-in on the parser and extractor."""

import pytest

from repro.analysis import GrammarDiagnosticsError
from repro.extractor import FormExtractor
from repro.grammar.dsl import GrammarBuilder
from repro.grammar.standard import build_standard_grammar
from repro.parser.parser import BestEffortParser, ExhaustiveParser


def grammar_with_arity_defect():
    """Builds fine (construction validates shape, not callables) but the
    analyzer flags the nullary constructor as G012."""
    g = GrammarBuilder(start="QI")
    g.terminals("text")
    g.production("QI", ["text"], constructor=lambda: {})
    return g.build()


class TestValidateGrammarWiring:
    def test_parser_fast_fails_on_error_diagnostics(self):
        bad = grammar_with_arity_defect()
        with pytest.raises(GrammarDiagnosticsError) as excinfo:
            BestEffortParser(bad, validate_grammar=True)
        assert "G012" in excinfo.value.report.codes()

    def test_exhaustive_parser_fast_fails_too(self):
        bad = grammar_with_arity_defect()
        with pytest.raises(GrammarDiagnosticsError):
            ExhaustiveParser(bad, validate_grammar=True)

    def test_extractor_fast_fails(self):
        bad = grammar_with_arity_defect()
        with pytest.raises(GrammarDiagnosticsError):
            FormExtractor(grammar=bad, validate_grammar=True)

    def test_default_is_permissive(self):
        # Best-effort by design: a defective grammar still constructs a
        # parser unless validation is requested.
        parser = BestEffortParser(grammar_with_arity_defect())
        assert parser is not None

    def test_clean_grammar_passes_validation(self):
        parser = BestEffortParser(
            build_standard_grammar(), validate_grammar=True
        )
        assert parser is not None

    def test_error_carries_full_report(self):
        bad = grammar_with_arity_defect()
        with pytest.raises(GrammarDiagnosticsError) as excinfo:
            BestEffortParser(bad, validate_grammar=True)
        report = excinfo.value.report
        assert report.has_errors
        assert report.grammar
