"""Seeded-defect tests for the production pass (G010-G013)."""

from repro.analysis import GrammarView, analyze_grammar
from repro.grammar.production import Production


def view(*productions):
    return GrammarView.from_parts(
        terminals=("t", "u"),
        productions=productions,
        start=productions[0].head,
    )


class TestBoundSatisfiability:
    def test_g010_negative_symmetric_gap(self):
        report = analyze_grammar(
            view(Production("A", ("t", "u"), bounds=((0, 1, -2.0, None),)))
        )
        hits = report.by_code("G010")
        assert len(hits) == 1
        assert hits[0].severity == "error"
        assert hits[0].data["axis"] == "horizontal"

    def test_g010_inverted_signed_interval(self):
        report = analyze_grammar(
            view(Production("A", ("t", "u"), bounds=((0, 1, None, (3.0, 1.0)),)))
        )
        hits = report.by_code("G010")
        assert len(hits) == 1
        assert hits[0].data["axis"] == "vertical"
        assert hits[0].data["spec"] == [3.0, 1.0]

    def test_g010_reports_each_empty_axis(self):
        report = analyze_grammar(
            view(
                Production(
                    "A", ("t", "u"), bounds=((0, 1, -1.0, (5.0, 2.0)),)
                )
            )
        )
        assert len(report.by_code("G010")) == 2

    def test_satisfiable_bounds_are_clean(self):
        report = analyze_grammar(
            view(
                Production(
                    "A", ("t", "u"),
                    bounds=(
                        (0, 1, 4.0, (-2.0, 10.0)),
                        (0, 1, (None, 3.0), None),
                    ),
                )
            )
        )
        assert not report.by_code("G010")
        assert not report.by_code("G011")

    def test_g011_contradictory_signed_intervals(self):
        report = analyze_grammar(
            view(
                Production(
                    "A", ("t", "u"),
                    bounds=(
                        (0, 1, (5.0, None), None),
                        (0, 1, (None, 2.0), None),
                    ),
                )
            )
        )
        hits = report.by_code("G011")
        assert len(hits) == 1
        assert hits[0].severity == "error"
        assert hits[0].data["axis"] == "horizontal"

    def test_g011_displacement_floor_exceeds_symmetric_gap(self):
        # displacement >= 10 forces a gap of >= 10, but the symmetric
        # bound caps the gap at 4: jointly unsatisfiable.
        report = analyze_grammar(
            view(
                Production(
                    "A", ("t", "u"),
                    bounds=((0, 1, 4.0, None), (0, 1, (10.0, None), None)),
                )
            )
        )
        assert len(report.by_code("G011")) == 1

    def test_g011_compatible_conjunction_is_clean(self):
        report = analyze_grammar(
            view(
                Production(
                    "A", ("t", "u"),
                    bounds=((0, 1, 8.0, None), (0, 1, (2.0, 6.0), None)),
                )
            )
        )
        assert not report.by_code("G011")

    def test_different_pairs_never_conjoin(self):
        report = analyze_grammar(
            view(
                Production(
                    "A", ("t", "u", "t"),
                    bounds=((0, 1, (5.0, None), None), (1, 2, (None, 2.0), None)),
                )
            )
        )
        assert not report.by_code("G011")


class TestCallableArity:
    def test_g012_constructor_takes_too_few(self):
        report = analyze_grammar(
            view(Production("A", ("t", "u"), constructor=lambda a: {}))
        )
        hits = report.by_code("G012")
        assert len(hits) == 1
        assert hits[0].severity == "error"
        assert hits[0].data == {"role": "constructor", "arity": 2}

    def test_g013_constraint_takes_too_many(self):
        report = analyze_grammar(
            view(Production("A", ("t",), constraint=lambda a, b: True))
        )
        assert len(report.by_code("G013")) == 1

    def test_variadic_callables_accept_any_arity(self):
        report = analyze_grammar(
            view(
                Production(
                    "A", ("t", "u"),
                    constraint=lambda *parts: True,
                    constructor=lambda *parts: {},
                )
            )
        )
        assert not report.by_code("G012")
        assert not report.by_code("G013")

    def test_defaults_absorb_extra_components(self):
        report = analyze_grammar(
            view(Production("A", ("t", "u"), constraint=lambda a, b=None: True))
        )
        assert not report.by_code("G013")

    def test_required_keyword_only_parameter_is_an_error(self):
        def constructor(a, b, *, tag):
            return {}

        report = analyze_grammar(
            view(Production("A", ("t", "u"), constructor=constructor))
        )
        hits = report.by_code("G012")
        assert len(hits) == 1
        assert "tag" in hits[0].message

    def test_default_callables_are_clean(self):
        report = analyze_grammar(view(Production("A", ("t", "u", "t"))))
        assert not report.by_code("G012")
        assert not report.by_code("G013")
