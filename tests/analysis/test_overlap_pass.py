"""Seeded-defect tests for the ambiguity/overlap pass (G020-G024)."""

from repro.analysis import GrammarView, analyze_grammar
from repro.grammar.preference import Preference
from repro.grammar.production import Production


def view(*productions, terminals=("t", "u"), preferences=(), start=None):
    return GrammarView.from_parts(
        terminals=terminals,
        productions=productions,
        start=start if start is not None else productions[0].head,
        preferences=preferences,
    )


def _opaque(*_args):
    return False


class TestG020DuplicateFires:
    def test_g020_identical_unconstrained_productions(self):
        report = analyze_grammar(
            view(
                Production("A", ("t", "u"), name="first"),
                Production("A", ("t", "u"), name="second"),
            )
        )
        hits = report.by_code("G020")
        assert len(hits) == 1
        assert hits[0].severity == "warning"
        assert hits[0].symbol == "A"
        assert hits[0].data["other"] == "second"
        assert sorted(hits[0].data["witness"]) == ["t", "u"]

    def test_opaque_constraint_downgrades_to_g021(self):
        report = analyze_grammar(
            view(
                Production("A", ("t", "u"), name="first"),
                Production(
                    "A", ("t", "u"), constraint=_opaque, name="second"
                ),
            )
        )
        assert not report.by_code("G020")
        assert len(report.by_code("G021")) == 1

    def test_contradictory_bounds_suppress_the_pair(self):
        # Jointly unsatisfiable bounds mean the two can never fire on
        # one combination: no ambiguity to report.
        report = analyze_grammar(
            view(
                Production(
                    "A", ("t", "u"),
                    bounds=((0, 1, (5.0, 10.0), None),),
                    name="first",
                ),
                Production(
                    "A", ("t", "u"),
                    bounds=((0, 1, (-10.0, -5.0), None),),
                    name="second",
                ),
            )
        )
        assert not report.by_code("G020")
        assert not report.by_code("G021")


class TestG021SameHeadOverlap:
    def test_g021_differing_components_same_yield(self):
        # A <- B and A <- C where B and C both derive a 't': the two A
        # productions can cover the same token via different routes.
        report = analyze_grammar(
            view(
                Production("A", ("B",), name="via-b"),
                Production("A", ("C",), name="via-c"),
                Production("B", ("t",)),
                Production("C", ("t",)),
            )
        )
        hits = report.by_code("G021")
        assert len(hits) == 1
        assert hits[0].symbol == "A"
        assert "differing components" in hits[0].message

    def test_disjoint_yields_are_clean(self):
        report = analyze_grammar(
            view(
                Production("A", ("t",), name="first"),
                Production("A", ("u",), name="second"),
            )
        )
        assert not report.by_code("G020")
        assert not report.by_code("G021")


class TestG022CrossHeadOverlap:
    def test_g022_multi_token_witness(self):
        report = analyze_grammar(
            view(
                Production("A", ("t", "u")),
                Production("B", ("t", "u")),
            )
        )
        hits = report.by_code("G022")
        assert len(hits) == 1
        assert hits[0].symbol == "A"
        assert hits[0].data["other_symbol"] == "B"
        assert sorted(hits[0].data["witness"]) == ["t", "u"]

    def test_g022_deduped_per_head_pair(self):
        # Four overlapping production pairs, one head pair: one finding.
        report = analyze_grammar(
            view(
                Production("A", ("t", "u"), name="a1"),
                Production("A", ("u", "t"), name="a2"),
                Production("B", ("t", "u"), name="b1"),
                Production("B", ("u", "t"), name="b2"),
            )
        )
        assert len(report.by_code("G022")) == 1

    def test_derivation_chains_are_not_ambiguity(self):
        # QI <- HQI covers whatever HQI covers -- the normal shape of a
        # grammar, not a conflict.
        report = analyze_grammar(
            view(
                Production("QI", ("HQI",)),
                Production("HQI", ("t",)),
                start="QI",
            )
        )
        assert not report.by_code("G022")
        assert not report.by_code("G023")


class TestG023SingleTokenCompetition:
    def test_g023_two_roles_one_token(self):
        report = analyze_grammar(
            view(
                Production("Attr", ("t",)),
                Production("Note", ("t",)),
            )
        )
        hits = report.by_code("G023")
        assert len(hits) == 1
        assert {hits[0].symbol, hits[0].data["other_symbol"]} == {
            "Attr", "Note",
        }
        assert hits[0].data["witness"] == ["t"]


class TestG024Truncation:
    def test_g024_recursive_symbol_truncates(self):
        report = analyze_grammar(
            view(
                Production("A", ("t",), name="seed"),
                Production("A", ("A", "t"), name="grow"),
            )
        )
        hits = report.by_code("G024")
        assert len(hits) == 1
        assert "A" in hits[0].data["symbols"]

    def test_finite_grammars_do_not_truncate(self):
        report = analyze_grammar(
            view(
                Production("A", ("t", "u")),
                Production("B", ("A",)),
                start="B",
            )
        )
        assert not report.by_code("G024")


class TestArbitratedOverlapStillReported:
    def test_self_preference_does_not_hide_g021(self):
        # G021 is the *overlap* fact; P010 is the missing-arbitration
        # fact.  A self-preference removes the latter, never the former.
        report = analyze_grammar(
            view(
                Production("A", ("t", "u"), name="first"),
                Production(
                    "A", ("t", "u"), constraint=_opaque, name="second"
                ),
                preferences=(Preference("A", "A"),),
            )
        )
        assert len(report.by_code("G021")) == 1
        assert not report.by_code("P010")
