"""Seeded-defect tests for the preference pass (P001-P007)."""

from repro.analysis import GrammarView, analyze_grammar
from repro.grammar.preference import Preference, subsumes
from repro.grammar.production import Production


def view(preferences, productions=None, terminals=("t",), nonterminals=None):
    if productions is None:
        productions = (Production("A", ("t",)), Production("B", ("t",)))
    return GrammarView.from_parts(
        terminals=terminals,
        productions=productions,
        start=productions[0].head,
        preferences=preferences,
        nonterminals=nonterminals,
    )


class TestPreferencePass:
    def test_p001_undeclared_winner_and_loser(self):
        report = analyze_grammar(view([Preference("X", "Y", name="xy")]))
        hits = report.by_code("P001")
        assert {(d.symbol, d.data["role"]) for d in hits} == {
            ("X", "winner"), ("Y", "loser"),
        }
        assert all(d.severity == "error" for d in hits)

    def test_p002_preference_between_terminals_never_fires(self):
        report = analyze_grammar(
            view([Preference("t", "u", name="tu")], terminals=("t", "u"))
        )
        hits = report.by_code("P002")
        assert len(hits) == 1
        assert hits[0].severity == "warning"

    def test_p002_not_reported_when_one_side_is_a_head(self):
        report = analyze_grammar(
            view([Preference("A", "t", name="at")])
        )
        assert not report.by_code("P002")

    def test_p002_not_stacked_on_p001(self):
        # An undeclared symbol is P001; P002 only fires for declared pairs.
        report = analyze_grammar(view([Preference("X", "t", name="xt")]))
        assert report.by_code("P001")
        assert not report.by_code("P002")

    def test_p003_trivial_self_preference(self):
        report = analyze_grammar(view([Preference("A", "A", name="aa")]))
        hits = report.by_code("P003")
        assert len(hits) == 1
        assert hits[0].symbol == "A"

    def test_p003_not_reported_with_nontrivial_criteria(self):
        report = analyze_grammar(
            view([Preference("A", "A", condition=subsumes, name="aa")])
        )
        assert not report.by_code("P003")

    def test_p004_mutually_contradictory_trivial_pair(self):
        report = analyze_grammar(
            view([
                Preference("A", "B", name="ab"),
                Preference("B", "A", name="ba"),
            ])
        )
        hits = report.by_code("P004")
        assert len(hits) == 1
        assert hits[0].preference == "ba"
        assert hits[0].data["contradicts"] == "ab"

    def test_p004_not_reported_for_conditional_reverse(self):
        report = analyze_grammar(
            view([
                Preference("A", "B", name="ab"),
                Preference("B", "A", condition=subsumes, name="ba"),
            ])
        )
        assert not report.by_code("P004")

    def test_p005_shadowed_by_earlier_trivial_same_pair(self):
        report = analyze_grammar(
            view([
                Preference("A", "B", name="first"),
                Preference("A", "B", condition=subsumes, name="second"),
            ])
        )
        hits = report.by_code("P005")
        assert len(hits) == 1
        assert hits[0].preference == "second"
        assert hits[0].data["shadowed_by"] == "first"

    def test_p005_conditional_first_does_not_shadow(self):
        report = analyze_grammar(
            view([
                Preference("A", "B", condition=subsumes, name="first"),
                Preference("A", "B", name="second"),
            ])
        )
        assert not report.by_code("P005")

    def test_p006_duplicate_preference_name(self):
        report = analyze_grammar(
            view([
                Preference("A", "B", name="dup"),
                Preference("B", "A", condition=subsumes, name="dup"),
            ])
        )
        hits = report.by_code("P006")
        assert hits[0].preference == "dup"
        assert hits[0].data["count"] == 2

    def test_p007_non_binary_condition(self):
        report = analyze_grammar(
            view([Preference("A", "B", condition=lambda v: True, name="ab")])
        )
        hits = report.by_code("P007")
        assert len(hits) == 1
        assert hits[0].severity == "error"
        assert hits[0].data["role"] == "condition"

    def test_p007_non_binary_criteria(self):
        report = analyze_grammar(
            view([
                Preference("A", "B", criteria=lambda a, b, c: True, name="ab"),
            ])
        )
        assert report.by_code("P007")[0].data["role"] == "criteria"

    def test_clean_preferences(self):
        report = analyze_grammar(
            view([
                Preference("A", "B", name="ab"),
                Preference("A", "A", condition=subsumes, name="aa"),
            ])
        )
        preference_codes = {"P001", "P002", "P003", "P004", "P005", "P006",
                            "P007"}
        assert not (report.codes() & preference_codes)
