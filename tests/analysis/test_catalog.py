"""The diagnostic catalogue stays in sync with what the passes emit."""

import re
from pathlib import Path

import pytest

from repro.analysis import CATALOG, SEVERITIES, CatalogEntry, explain

ANALYSIS_DIR = (
    Path(__file__).resolve().parent.parent.parent
    / "src"
    / "repro"
    / "analysis"
)

#: Code literals in the pass sources.  Most are ``code="G0xx"`` keyword
#: arguments; G012/G013 are bound through a loop variable, so the
#: pattern matches any quoted code literal.
_CODE_PATTERN = re.compile(r'"([A-Z]\d{3})"')

#: Files that *reference* codes without emitting them.
_NON_PASS_FILES = {"catalog.py", "admit.py"}


def emittable_codes():
    codes = set()
    for path in ANALYSIS_DIR.glob("*.py"):
        if path.name in _NON_PASS_FILES:
            continue
        codes.update(_CODE_PATTERN.findall(path.read_text()))
    return codes


class TestCatalogSync:
    def test_every_emittable_code_is_catalogued(self):
        emitted = emittable_codes()
        assert emitted, "no Diagnostic constructions found -- regex stale?"
        missing = emitted - set(CATALOG)
        assert not missing, f"codes emitted but not catalogued: {missing}"

    def test_every_catalogued_code_is_emittable(self):
        # The reverse direction: a catalogue entry nothing can emit is a
        # leftover from a removed pass.
        stale = set(CATALOG) - emittable_codes()
        assert not stale, f"catalogued but never emitted: {stale}"

    def test_expected_families_are_present(self):
        for code in (
            "G001", "G010", "G020", "G021", "G022", "G023", "G024",
            "G030", "G031", "P001", "P010", "P011", "P012", "P013",
            "C001", "C002", "C003", "C004", "C005", "S001", "S003",
        ):
            assert code in CATALOG, code

    def test_entries_are_complete(self):
        for code, entry in CATALOG.items():
            assert isinstance(entry, CatalogEntry)
            assert entry.code == code
            assert entry.severity in SEVERITIES, code
            assert entry.summary, code
            assert entry.fix, code


class TestExplain:
    def test_known_code(self):
        entry = explain("G020")
        assert entry is not None
        assert entry.code == "G020"
        assert entry.severity == "warning"

    def test_lookup_is_case_insensitive(self):
        assert explain("g030") is explain("G030")

    def test_unknown_code_is_none(self):
        assert explain("Z999") is None

    @pytest.mark.parametrize("code", sorted(CATALOG))
    def test_describe_renders_every_entry(self, code):
        text = explain(code).describe()
        assert text.startswith(code)
        assert "finding:" in text
        assert "fix:" in text


class TestCatalogMatchesDocs:
    def test_grammar_md_documents_every_code(self):
        # docs/GRAMMAR.md renders the same catalogue for humans; every
        # stable code must appear there.
        docs = (
            Path(__file__).resolve().parent.parent.parent
            / "docs"
            / "GRAMMAR.md"
        ).read_text()
        missing = [code for code in sorted(CATALOG) if code not in docs]
        assert not missing, f"codes absent from docs/GRAMMAR.md: {missing}"
