"""Property: a grammar that passes overlap + totality is order-stable.

The semantic passes' promise, stated operationally: when the analyzer
reports no errors and none of the ambiguity/totality findings
(G020-G023, P010, P011), the grammar has no unarbitrated competition --
so the parse of any token soup cannot depend on the order productions
were *declared* in.  Permuting the declaration order must yield the
identical (symbol, coverage) tree multiset and the identical merger
output.

The generator builds grammars that are conflict-free **by construction**
(each token class feeds exactly one leaf production; leaf heads have
disjoint yields) and then *verifies* that the analyzer agrees before
relying on the property -- if the analyzer ever started missing real
overlap in these grammars, the guard assertion fails first.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import analyze_grammar
from repro.grammar.dsl import GrammarBuilder
from repro.layout.box import BBox
from repro.merger.merger import Merger
from repro.parser.parser import BestEffortParser, ParserConfig
from repro.tokens.model import Token

#: Findings that would void the order-stability guarantee.
_AMBIGUITY_CODES = frozenset(
    {"G020", "G021", "G022", "G023", "P010", "P011"}
)


@st.composite
def clean_grammar_specs(draw):
    """A conflict-free grammar spec: leaf productions + one top rule.

    Returns ``(terminals, productions, order)`` where *productions* is a
    list of ``(head, components)`` rows and *order* is a permutation of
    their indices (the declaration order under test).
    """
    # Token.__post_init__ only accepts the paper's terminal types.
    pool = ("text", "textbox", "selectlist", "radiobutton")
    n_terminals = draw(st.integers(min_value=2, max_value=len(pool)))
    terminals = pool[:n_terminals]
    n_heads = draw(st.integers(min_value=1, max_value=n_terminals))
    heads = tuple(f"L{i}" for i in range(n_heads))
    # Partition: terminal i feeds leaf head (i mod n_heads) -- each
    # class has exactly one consumer, so leaf yields are disjoint.
    productions = [
        (heads[i % n_heads], (terminal,))
        for i, terminal in enumerate(terminals)
    ]
    productions.append(("S", heads))
    order = draw(st.permutations(range(len(productions))))
    return terminals, productions, order


@st.composite
def token_soups(draw, terminals):
    count = draw(st.integers(min_value=0, max_value=8))
    tokens = []
    for index in range(count):
        terminal = draw(st.sampled_from(terminals))
        column = draw(st.integers(min_value=0, max_value=3))
        row = draw(st.integers(min_value=0, max_value=3))
        left = 10.0 + column * 100
        top = 10.0 + row * 24
        tokens.append(
            Token(
                id=index,
                terminal=terminal,
                bbox=BBox(left, left + 60.0, top, top + 20.0),
                attrs={},
            )
        )
    return tokens


def _build(terminals, productions, order):
    builder = GrammarBuilder("S", name="prop")
    builder.terminals(*terminals)
    for index in order:
        head, components = productions[index]
        builder.production(head, components, name=f"p{index}")
    return builder.build()


def _parse_signature(grammar, tokens):
    result = BestEffortParser(
        grammar, ParserConfig(max_instances=5_000)
    ).parse(tokens)
    trees = sorted(
        (tree.symbol, tuple(sorted(tree.coverage)))
        for tree in result.trees
    )
    merged = sorted(
        tuple(sorted(entry.coverage))
        for entry in Merger().merge(result).extracted
    )
    return trees, merged


@st.composite
def grammar_and_soup(draw):
    terminals, productions, order = draw(clean_grammar_specs())
    tokens = draw(token_soups(terminals))
    return terminals, productions, order, tokens


class TestOrderStability:
    @given(grammar_and_soup())
    @settings(max_examples=40, deadline=None)
    def test_clean_grammars_are_declaration_order_stable(self, case):
        terminals, productions, order, tokens = case
        declared = _build(terminals, productions, range(len(productions)))
        permuted = _build(terminals, productions, order)

        # Guard: the analyzer must agree these grammars are conflict-free
        # -- the property below is only promised for grammars that pass.
        for grammar in (declared, permuted):
            report = analyze_grammar(grammar)
            assert not report.has_errors, report.describe()
            found = {d.code for d in report} & _AMBIGUITY_CODES
            assert not found, report.describe()

        assert _parse_signature(declared, tokens) == _parse_signature(
            permuted, tokens
        )

    @given(grammar_and_soup())
    @settings(max_examples=20, deadline=None)
    def test_repeat_parse_is_stable(self, case):
        terminals, productions, order, tokens = case
        grammar = _build(terminals, productions, order)
        assert _parse_signature(grammar, tokens) == _parse_signature(
            grammar, tokens
        )
