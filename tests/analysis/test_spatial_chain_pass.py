"""Seeded-defect tests for the cross-production spatial pass (G030-G031)."""

from repro.analysis import GrammarView, analyze_grammar
from repro.analysis.spatial_chain import min_extents
from repro.grammar.production import Production


def view(*productions, terminals=("t", "u"), start=None):
    return GrammarView.from_parts(
        terminals=terminals,
        productions=productions,
        start=start if start is not None else productions[0].head,
    )


class TestG030ChainedInfeasibility:
    def _chained_contradiction(self):
        # Each pairwise bound is satisfiable on its own (so G010/G011
        # cannot fire), but the chain forces S_2 - E_0 >= 0 while the
        # direct bound caps it at -1: a negative cycle.
        return view(
            Production(
                "A",
                ("t", "u", "t"),
                bounds=(
                    (0, 1, (0.0, None), None),
                    (1, 2, (0.0, None), None),
                    (0, 2, (None, -1.0), None),
                ),
            )
        )

    def test_g030_transitive_contradiction(self):
        report = analyze_grammar(self._chained_contradiction())
        hits = report.by_code("G030")
        assert len(hits) == 1
        assert hits[0].severity == "error"
        assert hits[0].symbol == "A"
        assert hits[0].data["axes"] == ["horizontal"]
        # And no double-report through the per-pair checks.
        assert not report.by_code("G010")
        assert not report.by_code("G011")

    def test_locally_empty_bound_is_g010_not_g030(self):
        # A per-pair defect is the per-production pass's finding; the
        # chain solver must not re-derive it as a second error.
        report = analyze_grammar(
            view(
                Production(
                    "A",
                    ("t", "u"),
                    bounds=((0, 1, (5.0, 2.0), None),),
                )
            )
        )
        assert report.by_code("G010")
        assert not report.by_code("G030")

    def test_min_extent_makes_the_chain_infeasible(self):
        # B is at least 40 wide (its only production forces a 40-pt
        # spread); A demands its two components sit within 10 points
        # end-to-end.  Each bound alone is fine -- only the extent
        # fix-point exposes the contradiction.
        report = analyze_grammar(
            view(
                Production(
                    "A",
                    ("t", "B"),
                    bounds=(
                        (0, 1, (0.0, 5.0), None),
                        (0, 1, (None, None), (0.0, 5.0)),
                    ),
                ),
                Production(
                    "B",
                    ("t", "u"),
                    bounds=((0, 1, (40.0, 50.0), None),),
                ),
                start="A",
            )
        )
        # Width propagates through min_extents but A's bounds only
        # constrain the *gap* between components, not their extents:
        # a wide B still fits a small gap.  Sanity-check the extent
        # table rather than expecting a (wrong) diagnostic.
        assert not report.by_code("G030")
        extents = min_extents(
            view(
                Production(
                    "B",
                    ("t", "u"),
                    bounds=((0, 1, (40.0, 50.0), None),),
                )
            )
        )
        assert extents["horizontal"]["B"] == 40.0

    def test_satisfiable_chain_is_clean(self):
        report = analyze_grammar(
            view(
                Production(
                    "A",
                    ("t", "u", "t"),
                    bounds=(
                        (0, 1, (0.0, 5.0), None),
                        (1, 2, (0.0, 5.0), None),
                        (0, 2, (None, 20.0), None),
                    ),
                )
            )
        )
        assert not report.by_code("G030")

    def test_vertical_axis_is_checked_too(self):
        report = analyze_grammar(
            view(
                Production(
                    "A",
                    ("t", "u", "t"),
                    bounds=(
                        (0, 1, None, (0.0, None)),
                        (1, 2, None, (0.0, None)),
                        (0, 2, None, (None, -1.0)),
                    ),
                )
            )
        )
        hits = report.by_code("G030")
        assert len(hits) == 1
        assert hits[0].data["axes"] == ["vertical"]


class TestG031UnplaceableProduction:
    def _parent_child(self, *, wide_bounds):
        return view(
            Production(
                "P",
                ("t", "C", "t"),
                bounds=(
                    (0, 1, (0.0, 5.0), None),
                    (1, 2, (0.0, 5.0), None),
                    (0, 2, (None, 20.0), None),
                ),
            ),
            Production("C", ("t", "t"), bounds=wide_bounds, name="wide"),
            Production("C", ("t",), name="thin"),
            start="P",
        )

    def test_g031_oversized_production_cannot_join_any_parent(self):
        # The "wide" C production builds instances at least 50 points
        # across; P's chain caps the span at 20.  The "thin" variant
        # keeps min_extent[C] at 0, so P itself stays feasible -- only
        # the wide production is dead weight.
        report = analyze_grammar(
            self._parent_child(
                wide_bounds=((0, 1, (50.0, 60.0), None),)
            )
        )
        hits = report.by_code("G031")
        assert len(hits) == 1
        assert hits[0].severity == "warning"
        assert hits[0].production == "wide"
        assert hits[0].symbol == "C"
        assert hits[0].data["parents"] == ["P<-t+C+t"]
        assert hits[0].data["min_extent"]["horizontal"] == 50.0
        assert not report.by_code("G030")

    def test_fitting_production_is_clean(self):
        report = analyze_grammar(
            self._parent_child(
                wide_bounds=((0, 1, (2.0, 3.0), None),)
            )
        )
        assert not report.by_code("G031")

    def test_start_symbol_needs_no_parent(self):
        # The start symbol's productions never join a larger pattern;
        # size alone is not dead weight there.
        report = analyze_grammar(
            view(
                Production(
                    "S",
                    ("t", "t"),
                    bounds=((0, 1, (50.0, 60.0), None),),
                ),
                Production("S", ("t",)),
                start="S",
            )
        )
        assert not report.by_code("G031")

    def test_broken_parent_takes_the_blame_itself(self):
        # When the parent is infeasible on its own (G030), the child
        # production must not also be flagged G031 for failing to fit
        # a context that never existed.
        report = analyze_grammar(
            view(
                Production(
                    "P",
                    ("t", "C", "t"),
                    bounds=(
                        (0, 1, (0.0, None), None),
                        (1, 2, (0.0, None), None),
                        (0, 2, (None, -1.0), None),
                    ),
                ),
                Production(
                    "C", ("t", "t"),
                    bounds=((0, 1, (50.0, 60.0), None),),
                    name="wide",
                ),
                Production("C", ("t",), name="thin"),
                start="P",
            )
        )
        assert report.by_code("G030")
        assert not report.by_code("G031")


class TestMinExtents:
    def test_terminals_have_zero_extent(self):
        extents = min_extents(view(Production("A", ("t",))))
        assert extents["horizontal"]["t"] == 0.0
        assert extents["vertical"]["t"] == 0.0

    def test_symbol_takes_minimum_over_productions(self):
        extents = min_extents(
            view(
                Production(
                    "A", ("t", "t"),
                    bounds=((0, 1, (30.0, 40.0), None),),
                    name="wide",
                ),
                Production("A", ("t",), name="thin"),
            )
        )
        assert extents["horizontal"]["A"] == 0.0

    def test_chained_lower_bounds_stretch_the_head(self):
        # A contains B after t by >= 10; B contains t after t by >= 30:
        # A is at least 10 + 0 + 30 = 40 wide.
        extents = min_extents(
            view(
                Production(
                    "A", ("t", "B"),
                    bounds=((0, 1, (10.0, None), None),),
                ),
                Production(
                    "B", ("t", "t"),
                    bounds=((0, 1, (30.0, None), None),),
                ),
            )
        )
        assert extents["horizontal"]["B"] == 30.0
        assert extents["horizontal"]["A"] == 40.0

    def test_recursive_heads_terminate(self):
        extents = min_extents(
            view(
                Production("A", ("t",), name="seed"),
                Production(
                    "A", ("A", "t"),
                    bounds=((0, 1, (1.0, None), None),),
                    name="grow",
                ),
            )
        )
        # The seed production keeps the minimum at 0 despite the
        # recursive stretcher.
        assert extents["horizontal"]["A"] == 0.0
