"""The analyzer's schedule preview must agree with the runtime scheduler.

Both consume :func:`build_schedule_graph`, so agreement holds by
construction -- these tests guard that property against a future fork of
the two code paths.
"""

import pytest
from hypothesis import given, settings

from repro.analysis import GrammarView, analyze_grammar
from repro.apps.navmenu import build_menu_grammar
from repro.grammar.example_g import build_example_grammar
from repro.grammar.standard import build_standard_grammar
from repro.parser.schedule import (
    ScheduleError,
    build_schedule,
    build_schedule_graph,
    edge_list,
)

from tests.parser.test_schedule_properties import random_grammars

GRAMMARS = {
    "standard": build_standard_grammar,
    "example": build_example_grammar,
    "navmenu": build_menu_grammar,
}


def assert_preview_matches_runtime(grammar):
    graph = build_schedule_graph(GrammarView.from_grammar(grammar))
    report = analyze_grammar(grammar)
    if graph.cycles:
        with pytest.raises(ScheduleError):
            build_schedule(grammar)
        assert report.by_code("S001")
        return
    schedule = build_schedule(grammar)
    assert edge_list(graph.edges) == edge_list(schedule.edges)
    assert [p.name for p in graph.transformed] == [
        p.name for p in schedule.transformed
    ]
    assert [p.name for p in graph.relaxed] == [
        p.name for p in schedule.relaxed
    ]
    # Reports are sorted by provenance, schedules by declaration order;
    # compare the sets of preference names.
    assert sorted(d.preference for d in report.by_code("S002")) == sorted(
        p.name for p in schedule.transformed
    )
    assert sorted(d.preference for d in report.by_code("S003")) == sorted(
        p.name for p in schedule.relaxed
    )
    assert not report.by_code("S001")


class TestScheduleEquivalence:
    @pytest.mark.parametrize("name", sorted(GRAMMARS))
    def test_shipped_grammars(self, name):
        assert_preview_matches_runtime(GRAMMARS[name]())

    @given(random_grammars())
    @settings(max_examples=80, deadline=None)
    def test_random_grammars(self, grammar):
        assert_preview_matches_runtime(grammar)
