"""Seeded-defect tests for the preference-totality pass (P010-P013)."""

from repro.analysis import GrammarView, analyze_grammar
from repro.grammar.preference import Preference, subsumes
from repro.grammar.production import Production


def view(*productions, terminals=("t", "u"), preferences=(), start=None):
    return GrammarView.from_parts(
        terminals=terminals,
        productions=productions,
        start=start if start is not None else productions[0].head,
        preferences=preferences,
    )


def _opaque(*_args):
    return False


def _overlapping_head(preferences=()):
    return view(
        Production("A", ("t", "u"), name="first"),
        Production("A", ("t", "u"), constraint=_opaque, name="second"),
        preferences=preferences,
    )


class TestP010MissingSelfPreference:
    def test_p010_overlap_without_self_preference(self):
        report = analyze_grammar(_overlapping_head())
        hits = report.by_code("P010")
        assert len(hits) == 1
        assert hits[0].severity == "warning"
        assert hits[0].symbol == "A"

    def test_self_preference_clears_p010(self):
        report = analyze_grammar(
            _overlapping_head(
                preferences=(Preference("A", "A", criteria=subsumes),)
            )
        )
        assert not report.by_code("P010")

    def test_p010_deduped_per_head(self):
        report = analyze_grammar(
            view(
                Production("A", ("t", "u"), name="p1"),
                Production("A", ("t", "u"), constraint=_opaque, name="p2"),
                Production("A", ("t", "u"), constraint=_opaque, name="p3"),
            )
        )
        assert len(report.by_code("P010")) == 1

    def test_non_overlapping_head_needs_no_self_preference(self):
        report = analyze_grammar(
            view(
                Production("A", ("t",), name="first"),
                Production("A", ("u",), name="second"),
            )
        )
        assert not report.by_code("P010")


class TestP011UnorderedCompetitors:
    def _competitors(self, preferences=()):
        return view(
            Production("A", ("t",)),
            Production("B", ("t",)),
            preferences=preferences,
        )

    def test_p011_no_preference_path(self):
        report = analyze_grammar(self._competitors())
        hits = report.by_code("P011")
        assert len(hits) == 1
        assert {hits[0].symbol, hits[0].data.get("other", hits[0].symbol)}

    def test_direct_preference_clears_p011(self):
        report = analyze_grammar(
            self._competitors(preferences=(Preference("A", "B"),))
        )
        assert not report.by_code("P011")

    def test_transitive_preference_path_clears_p011(self):
        # A > C and C > B orders A before B through the closure.
        report = analyze_grammar(
            view(
                Production("A", ("t",)),
                Production("B", ("t",)),
                Production("C", ("u",)),
                preferences=(
                    Preference("A", "C"),
                    Preference("C", "B"),
                ),
            )
        )
        assert not report.by_code("P011")


class TestP012DeadPreference:
    def test_p012_disjoint_yield_classes(self):
        report = analyze_grammar(
            view(
                Production("A", ("t",)),
                Production("B", ("u",)),
                preferences=(Preference("A", "B"),),
            )
        )
        hits = report.by_code("P012")
        assert len(hits) == 1
        assert hits[0].severity == "warning"
        assert hits[0].preference == "A>B"

    def test_sharing_a_class_is_alive(self):
        report = analyze_grammar(
            view(
                Production("A", ("t",)),
                Production("B", ("t",)),
                preferences=(Preference("A", "B"),),
            )
        )
        assert not report.by_code("P012")

    def test_truncated_symbols_are_skipped(self):
        # A's yields truncate (recursive); the checker must treat its
        # class set as unknown, not empty -- no dead-rule claim.
        report = analyze_grammar(
            view(
                Production("A", ("t",), name="seed"),
                Production("A", ("A", "t"), name="grow"),
                Production("B", ("u",)),
                preferences=(Preference("A", "B"),),
            )
        )
        assert not report.by_code("P012")


class TestP013PreferenceCycle:
    def test_p013_three_cycle(self):
        report = analyze_grammar(
            view(
                Production("A", ("t",)),
                Production("B", ("t",)),
                Production("C", ("t",)),
                preferences=(
                    Preference("A", "B"),
                    Preference("B", "C"),
                    Preference("C", "A"),
                ),
            )
        )
        hits = report.by_code("P013")
        assert len(hits) == 1
        cycle = hits[0].data["cycle"]
        assert set(cycle) >= {"A", "B", "C"}

    def test_self_loops_are_not_cycles(self):
        # prefer(A, over=A, when=subsumes) is the standard arbitration
        # idiom, not a cycle.
        report = analyze_grammar(
            view(
                Production("A", ("t", "u"), name="p1"),
                Production("A", ("t", "u"), constraint=_opaque, name="p2"),
                preferences=(Preference("A", "A", criteria=subsumes),),
            )
        )
        assert not report.by_code("P013")

    def test_acyclic_chain_is_clean(self):
        report = analyze_grammar(
            view(
                Production("A", ("t",)),
                Production("B", ("t",)),
                Production("C", ("t",)),
                preferences=(
                    Preference("A", "B"),
                    Preference("B", "C"),
                ),
            )
        )
        assert not report.by_code("P013")
