"""Seeded-defect tests for the coverage pass (C001-C005) + the matrix."""

from repro.analysis import (
    GrammarView,
    analyze_grammar,
    coverage_matrix,
    render_coverage_matrix,
)
from repro.grammar.production import Production
from repro.grammar.vocabulary import TokenVocabulary, tokenizer_vocabulary


def view(*productions, terminals, start):
    return GrammarView.from_parts(
        terminals=terminals, productions=productions, start=start
    )


def vocab(classes, inputs):
    return TokenVocabulary(
        classes=frozenset(classes), input_classes=frozenset(inputs)
    )


def _pattern_grammar():
    """V <- textbox; CP <- text V; S <- CP: covers (textbox), (text,textbox)."""
    return view(
        Production("S", ("CP",)),
        Production("CP", ("text", "V")),
        Production("V", ("textbox",)),
        terminals=("text", "textbox"),
        start="S",
    )


VOCAB = vocab(("text", "textbox"), ("textbox",))


class TestC001UndeclaredClass:
    def test_c001_tokenizer_class_not_declared(self):
        report = analyze_grammar(
            _pattern_grammar(),
            vocabulary=vocab(
                ("text", "textbox", "filebox"), ("textbox", "filebox")
            ),
        )
        hits = report.by_code("C001")
        assert len(hits) == 1
        assert hits[0].symbol == "filebox"

    def test_no_vocabulary_means_no_c001(self):
        report = analyze_grammar(_pattern_grammar())
        assert not report.by_code("C001")


class TestC002UnreachableConsumer:
    def test_c002_terminal_feeds_only_unreachable_head(self):
        report = analyze_grammar(
            view(
                Production("S", ("t",)),
                Production("X", ("u",)),
                terminals=("t", "u"),
                start="S",
            )
        )
        hits = report.by_code("C002")
        assert len(hits) == 1
        assert hits[0].symbol == "u"
        assert hits[0].data["heads"] == ["X"]

    def test_c002_runs_without_vocabulary(self):
        # C002 is a pure grammar property; it must not be gated on the
        # tokenizer vocabulary.
        report = analyze_grammar(
            view(
                Production("S", ("t",)),
                Production("X", ("u",)),
                terminals=("t", "u"),
                start="S",
            )
        )
        assert report.by_code("C002")

    def test_reachable_consumer_is_clean(self):
        report = analyze_grammar(_pattern_grammar())
        assert not report.by_code("C002")


class TestC003UncoveredShape:
    def test_c003_missing_two_label_shapes(self):
        report = analyze_grammar(_pattern_grammar(), vocabulary=VOCAB)
        shapes = {
            tuple(d.data["shape"]) for d in report.by_code("C003")
        }
        # (textbox) and (text, textbox) are covered; the two-label and
        # two-control skeletons are not.
        assert shapes == {
            ("text", "textbox", "textbox"),
            ("text", "text", "textbox"),
        }

    def test_full_pattern_tier_has_no_c003(self):
        full = view(
            Production("S", ("CP",)),
            Production("CP", ("text", "V")),
            Production("CP", ("text", "V", "V")),
            Production("CP", ("text", "text", "V")),
            Production("V", ("textbox",)),
            terminals=("text", "textbox"),
            start="S",
        )
        report = analyze_grammar(full, vocabulary=VOCAB)
        assert not report.by_code("C003")


class TestC004AssemblyOnlyShape:
    def test_c004_shape_reached_only_by_recursion(self):
        # T and V are pattern-level singletons; only the recursive L
        # can assemble {text, textbox} -- so that shape parses as
        # disjoint items, never as one condition.
        grammar = view(
            Production("S", ("L",)),
            Production("L", ("T", "V"), name="seed"),
            Production("L", ("L", "V"), name="grow"),
            Production("T", ("text",)),
            Production("V", ("textbox",)),
            terminals=("text", "textbox"),
            start="S",
        )
        report = analyze_grammar(grammar, vocabulary=VOCAB)
        shapes = {
            tuple(d.data["shape"]) for d in report.by_code("C004")
        }
        assert ("text", "textbox") in shapes
        for diagnostic in report.by_code("C004"):
            assert "L" in diagnostic.data["symbols"]

    def test_pattern_level_derivation_beats_assembly(self):
        report = analyze_grammar(_pattern_grammar(), vocabulary=VOCAB)
        assert not report.by_code("C004")


class TestC005Truncation:
    def test_c005_on_truncated_yields(self):
        grammar = view(
            Production("S", ("V",), name="seed"),
            Production("S", ("S", "V"), name="grow"),
            Production("V", ("textbox",)),
            terminals=("text", "textbox"),
            start="S",
        )
        report = analyze_grammar(grammar, vocabulary=VOCAB)
        hits = report.by_code("C005")
        assert len(hits) == 1
        assert "S" in hits[0].data["symbols"]

    def test_finite_grammar_has_no_c005(self):
        report = analyze_grammar(_pattern_grammar(), vocabulary=VOCAB)
        assert not report.by_code("C005")


class TestCoverageMatrix:
    def test_matrix_statuses(self):
        matrix = coverage_matrix(_pattern_grammar(), VOCAB)
        by_shape = {
            tuple(row["shape"]): row["status"]
            for row in matrix["shapes"]
        }
        assert by_shape[("textbox",)] == "covered"
        assert by_shape[("text", "textbox")] == "covered"
        assert by_shape[("text", "textbox", "textbox")] == "uncovered"
        assert by_shape[("text", "text", "textbox")] == "uncovered"

    def test_matrix_lists_pattern_level_symbols(self):
        matrix = coverage_matrix(_pattern_grammar(), VOCAB)
        row = next(
            row
            for row in matrix["shapes"]
            if row["shape"] == ["text", "textbox"]
        )
        assert row["symbols"] == ["CP"]

    def test_render_is_human_readable(self):
        rendered = render_coverage_matrix(
            coverage_matrix(_pattern_grammar(), VOCAB)
        )
        assert "covered" in rendered
        assert "uncovered" in rendered
        assert "total:" in rendered

    def test_standard_grammar_matrix_is_pinned(self):
        # The paper-scale regression: the standard grammar's coverage
        # against the real tokenizer vocabulary.  Changing the grammar
        # or the tokenizer moves these totals -- deliberately visible.
        from repro.grammar.standard import build_standard_grammar
        from repro.analysis import as_view

        matrix = coverage_matrix(
            as_view(build_standard_grammar()), tokenizer_vocabulary()
        )
        counts = {"covered": 0, "assembly-only": 0, "uncovered": 0}
        for row in matrix["shapes"]:
            counts[row["status"]] += 1
        assert counts == {
            "covered": 23, "assembly-only": 0, "uncovered": 9,
        }
        uncovered = {
            tuple(row["shape"])
            for row in matrix["shapes"]
            if row["status"] == "uncovered"
        }
        # The known §6.4 gaps: bare radio/checkbox groups, filebox
        # patterns, and a few two-label skeletons.
        assert ("radiobutton",) in uncovered
        assert ("checkbox",) in uncovered
        assert ("filebox", "text") in uncovered
