"""Regression: the shipped grammars' lint output is pinned exactly.

The bar for *errors* stays zero.  The semantic passes (G02x/G03x/P01x,
PR 10) additionally surface warnings and infos on the shipped grammars;
every one of them is enumerated here -- **not** wildcarded -- so any
grammar or analyzer change that shifts the inventory fails loudly and
must re-justify the new output:

* ``standard`` -- the long-known G006 (``hiddenfield`` tokenized, never
  consumed) and S003 (R8's r-edge relies on rollback), plus: G021 infos
  (same-head CP/RangeVal/... variants separated only by opaque spatial
  constraints -- all arbitrated by self-preferences, hence no P010),
  G023 infos (role symbols competing for single ``text``/``selectlist``
  tokens), P011 infos (role pairs with no preference path, resolved by
  maximization), and one G024 (yield truncation on the recursive
  assembly symbols).
* ``example`` -- the paper's Figure 6 grammar G, kept verbatim: its
  ``TextVal`` variants rely on mutually-exclusive opaque constraints
  with no self-preference, a genuine P010 the paper resolves by
  construction (left/above/below attachments cannot fire together).
* ``navmenu`` -- ``Block <- Menu | Noise`` has no Block self-preference
  (P010); Menu/Noise/Item role overlaps account for the G023s.
"""

from collections import Counter

import pytest

from repro.analysis import analyze_grammar
from repro.apps.navmenu import build_menu_grammar
from repro.grammar.example_g import build_example_grammar
from repro.grammar.standard import build_standard_grammar

GRAMMARS = {
    "standard": build_standard_grammar,
    "example": build_example_grammar,
    "navmenu": build_menu_grammar,
}

#: The exact diagnostic inventory (code -> count) per shipped grammar.
PINNED = {
    "standard": {
        "G006": 1,
        "S003": 1,
        "G021": 29,
        "G023": 11,
        "G024": 1,
        "P011": 11,
    },
    "example": {"G021": 5, "G022": 1, "G024": 1, "P010": 1, "P011": 1},
    "navmenu": {"G021": 8, "G023": 9, "G024": 1, "P010": 1, "P011": 8},
}


class TestShippedGrammarsLintClean:
    @pytest.mark.parametrize("name", sorted(GRAMMARS))
    def test_no_error_diagnostics(self, name):
        report = analyze_grammar(GRAMMARS[name]())
        assert not report.has_errors, report.describe()

    @pytest.mark.parametrize("name", sorted(GRAMMARS))
    def test_diagnostic_inventory_is_pinned(self, name):
        report = analyze_grammar(GRAMMARS[name]())
        inventory = dict(Counter(d.code for d in report))
        assert inventory == PINNED[name], report.describe()

    def test_standard_grammar_known_warnings_are_stable(self):
        report = analyze_grammar(build_standard_grammar())
        assert [d.symbol for d in report.by_code("G006")] == ["hiddenfield"]
        assert [d.preference for d in report.by_code("S003")] == [
            "R8-cp-over-attr"
        ]
        # Yield truncation hits exactly the recursive assembly symbols
        # and the wide CP head.
        (g024,) = report.by_code("G024")
        assert g024.data["symbols"] == [
            "CBList", "CP", "HQI", "Item", "QI", "RBList",
        ]

    def test_standard_grammar_has_no_unarbitrated_overlap(self):
        # Every overlapping head in the standard grammar carries a
        # self-preference; P010 anywhere here means a preference was
        # dropped or an overlap was introduced.
        report = analyze_grammar(build_standard_grammar())
        assert report.by_code("P010") == ()
        assert report.by_code("G020") == ()

    def test_example_grammar_p010_is_the_paper_textval(self):
        # Figure 6's TextVal left/above/below variants share components
        # and rely on mutually-exclusive opaque constraints; the paper
        # grammar has no TextVal self-preference.  Documented, expected.
        report = analyze_grammar(build_example_grammar())
        (p010,) = report.by_code("P010")
        assert p010.symbol == "TextVal"

    def test_navmenu_p010_is_block(self):
        report = analyze_grammar(build_menu_grammar())
        (p010,) = report.by_code("P010")
        assert p010.symbol == "Block"

    @pytest.mark.parametrize("name", sorted(GRAMMARS))
    def test_no_spatial_chain_findings(self, name):
        # The shipped grammars' bounds admit every production somewhere:
        # no chained infeasibility (G030) and no unplaceable-in-parent
        # production (G031).
        report = analyze_grammar(GRAMMARS[name]())
        assert report.by_code("G030") == ()
        assert report.by_code("G031") == ()

    def test_analysis_accepts_open_builders(self):
        from repro.grammar.standard import standard_builder

        report = analyze_grammar(standard_builder())
        assert not report.has_errors
