"""Regression: the shipped grammars lint clean (zero error diagnostics).

The bar is *errors*, not warnings: the standard grammar legitimately
carries a G006 (the ``hiddenfield`` terminal is tokenized but no pattern
consumes it) and an S003 (preference R8's r-edge cannot be scheduled and
relies on rollback) -- both documented behaviours, not defects.
"""

import pytest

from repro.analysis import analyze_grammar
from repro.apps.navmenu import build_menu_grammar
from repro.grammar.example_g import build_example_grammar
from repro.grammar.standard import build_standard_grammar

GRAMMARS = {
    "standard": build_standard_grammar,
    "example": build_example_grammar,
    "navmenu": build_menu_grammar,
}


class TestShippedGrammarsLintClean:
    @pytest.mark.parametrize("name", sorted(GRAMMARS))
    def test_no_error_diagnostics(self, name):
        report = analyze_grammar(GRAMMARS[name]())
        assert not report.has_errors, report.describe()

    def test_example_grammar_is_fully_clean(self):
        assert len(analyze_grammar(build_example_grammar())) == 0

    def test_standard_grammar_known_warnings_are_stable(self):
        report = analyze_grammar(build_standard_grammar())
        assert report.codes() == {"G006", "S003"}
        assert [d.symbol for d in report.by_code("G006")] == ["hiddenfield"]
        assert [d.preference for d in report.by_code("S003")] == [
            "R8-cp-over-attr"
        ]

    def test_analysis_accepts_open_builders(self):
        from repro.grammar.standard import standard_builder

        report = analyze_grammar(standard_builder())
        assert not report.has_errors
