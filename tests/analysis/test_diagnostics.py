"""Tests for the diagnostics vocabulary (Diagnostic / AnalysisReport)."""

import json

import pytest

from repro.analysis import (
    AnalysisReport,
    Diagnostic,
    GrammarDiagnosticsError,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
)


def _diag(code, severity, **kwargs):
    return Diagnostic(code=code, severity=severity, message=f"m-{code}", **kwargs)


class TestDiagnostic:
    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError, match="severity"):
            Diagnostic(code="G001", severity="fatal", message="boom")

    def test_str_includes_code_severity_and_provenance(self):
        diagnostic = _diag("P003", SEVERITY_WARNING, symbol="RBList",
                           preference="R2")
        rendered = str(diagnostic)
        assert "P003" in rendered
        assert "warning" in rendered
        assert "symbol=RBList" in rendered
        assert "preference=R2" in rendered

    def test_to_dict_is_json_serializable(self):
        diagnostic = _diag(
            "S001", SEVERITY_ERROR, symbol="A", data={"cycle": ["A", "B", "A"]}
        )
        payload = json.loads(json.dumps(diagnostic.to_dict()))
        assert payload["code"] == "S001"
        assert payload["data"]["cycle"] == ["A", "B", "A"]


class TestAnalysisReport:
    def test_sorted_gravest_first(self):
        report = AnalysisReport(
            grammar="g",
            diagnostics=(
                _diag("S002", SEVERITY_INFO),
                _diag("G006", SEVERITY_WARNING),
                _diag("G001", SEVERITY_ERROR),
            ),
        )
        assert [d.severity for d in report] == ["error", "warning", "info"]

    def test_selectors(self):
        report = AnalysisReport(
            grammar="g",
            diagnostics=(
                _diag("G001", SEVERITY_ERROR),
                _diag("G001", SEVERITY_ERROR),
                _diag("G006", SEVERITY_WARNING),
            ),
        )
        assert len(report.errors) == 2
        assert len(report.warnings) == 1
        assert report.has_errors
        assert report.codes() == {"G001", "G006"}
        assert len(report.by_code("G001")) == 2
        assert report.summary() == {"error": 2, "warning": 1, "info": 0}

    def test_describe_mentions_counts(self):
        report = AnalysisReport(grammar="g", diagnostics=(_diag("G001", "error"),))
        assert "1 error(s)" in report.describe()

    def test_to_json_round_trips(self):
        report = AnalysisReport(grammar="g", diagnostics=(_diag("G006", "warning"),))
        payload = json.loads(report.to_json())
        assert payload["grammar"] == "g"
        assert payload["diagnostics"][0]["code"] == "G006"

    def test_raise_if_errors_raises_and_carries_report(self):
        report = AnalysisReport(grammar="g", diagnostics=(_diag("G001", "error"),))
        with pytest.raises(GrammarDiagnosticsError) as excinfo:
            report.raise_if_errors()
        assert excinfo.value.report is report
        assert "G001" in str(excinfo.value)

    def test_raise_if_errors_chains_when_clean(self):
        report = AnalysisReport(grammar="g", diagnostics=(_diag("G006", "warning"),))
        assert report.raise_if_errors() is report
