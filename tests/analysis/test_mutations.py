"""Property-style mutation tests: seed a defect into the *standard*
grammar, assert the analyzer pins it with the documented code.

Each mutation starts from the pristine standard grammar view (which has
zero error diagnostics) and perturbs exactly one declaration, so any new
error the report shows is attributable to the seeded defect.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import GrammarView, analyze_grammar
from repro.grammar.preference import Preference, always
from repro.grammar.standard import build_standard_grammar


def standard_view():
    return GrammarView.from_grammar(build_standard_grammar())


def _mutate(view, productions=None, preferences=None, terminals=None):
    return GrammarView.from_parts(
        terminals=view.terminals if terminals is None else terminals,
        productions=view.productions if productions is None else productions,
        start=view.start,
        preferences=view.preferences if preferences is None else preferences,
        nonterminals=view.nonterminals,
        name=view.name,
    )


_VIEW = standard_view()
_HEADS = sorted({p.head for p in _VIEW.productions if p.head != _VIEW.start})
_TRIVIAL = [
    p for p in _VIEW.preferences
    if p.condition is always and p.criteria is always
    and p.winner_symbol != p.loser_symbol
]
_BOUNDED = [i for i, p in enumerate(_VIEW.productions) if p.bounds]


class TestSeededMutations:
    @given(st.sampled_from(_HEADS))
    @settings(max_examples=20, deadline=None)
    def test_dropping_all_productions_of_a_head_is_g003(self, head):
        productions = tuple(
            p for p in _VIEW.productions if p.head != head
        )
        report = analyze_grammar(_mutate(_VIEW, productions=productions))
        assert head in {d.symbol for d in report.by_code("G003")}
        assert report.has_errors

    @given(st.integers(min_value=0, max_value=len(_VIEW.productions) - 1))
    @settings(max_examples=25, deadline=None)
    def test_undefined_component_is_g001(self, index):
        target = _VIEW.productions[index]
        corrupted = replace(
            target,
            components=target.components[:-1] + ("ghost-symbol",),
        )
        productions = list(_VIEW.productions)
        productions[index] = corrupted
        report = analyze_grammar(_mutate(_VIEW, productions=tuple(productions)))
        hits = report.by_code("G001")
        assert any(
            d.symbol == "ghost-symbol" and d.production == corrupted.name
            for d in hits
        )

    @given(st.sampled_from(_BOUNDED))
    @settings(max_examples=25, deadline=None)
    def test_corrupted_bound_is_g010(self, index):
        target = _VIEW.productions[index]
        i, j, _h, _v = target.bounds[0]
        corrupted = replace(
            target,
            bounds=((i, j, (9.0, 1.0), None),) + target.bounds[1:],
        )
        productions = list(_VIEW.productions)
        productions[index] = corrupted
        report = analyze_grammar(_mutate(_VIEW, productions=tuple(productions)))
        assert any(
            d.production == corrupted.name for d in report.by_code("G010")
        )

    @given(st.integers(min_value=0, max_value=len(_VIEW.productions) - 1))
    @settings(max_examples=25, deadline=None)
    def test_nullary_constructor_is_g012(self, index):
        target = _VIEW.productions[index]
        corrupted = replace(target, constructor=lambda: {})
        productions = list(_VIEW.productions)
        productions[index] = corrupted
        report = analyze_grammar(_mutate(_VIEW, productions=tuple(productions)))
        assert any(
            d.production == corrupted.name for d in report.by_code("G012")
        )

    @given(st.sampled_from(_TRIVIAL))
    @settings(max_examples=10, deadline=None)
    def test_inverted_trivial_preference_is_p004(self, preference):
        inverted = Preference(
            winner_symbol=preference.loser_symbol,
            loser_symbol=preference.winner_symbol,
            name="inverted",
        )
        report = analyze_grammar(
            _mutate(_VIEW, preferences=_VIEW.preferences + (inverted,))
        )
        assert any(
            d.preference == "inverted" for d in report.by_code("P004")
        )

    @given(st.sampled_from(_TRIVIAL))
    @settings(max_examples=10, deadline=None)
    def test_duplicated_trivial_preference_is_p005(self, preference):
        duplicate = Preference(
            winner_symbol=preference.winner_symbol,
            loser_symbol=preference.loser_symbol,
            name="duplicate",
        )
        report = analyze_grammar(
            _mutate(_VIEW, preferences=_VIEW.preferences + (duplicate,))
        )
        assert any(
            d.preference == "duplicate" for d in report.by_code("P005")
        )

    def test_pristine_view_is_error_free(self):
        assert not analyze_grammar(_VIEW).has_errors
