"""Tests for the code-side lint (metrics catalogue + blocking calls)."""

import textwrap
from pathlib import Path

from repro.analysis.codelint import (
    CodeLintFinding,
    _names_match,
    check_blocking_calls,
    check_metrics_catalog,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _tree(tmp_path, sources, doc=""):
    """Build a throwaway src tree + doc file; return (src_root, doc_path)."""
    src_root = tmp_path / "src"
    for rel, text in sources.items():
        target = src_root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    doc_path = tmp_path / "OBSERVABILITY.md"
    doc_path.write_text(textwrap.dedent(doc))
    return src_root, doc_path


class TestNameMatching:
    def test_exact_match(self):
        assert _names_match("serve.requests", "serve.requests")
        assert not _names_match("serve.requests", "serve.errors")

    def test_doc_placeholder_matches_dynamic_segment(self):
        assert _names_match("degrade.<level>", "degrade.<dyn>")
        assert _names_match("degrade.<level>", "degrade.full")

    def test_wildcard_absorbs_multiple_segments(self):
        # Span stage names contain dots: the emitted span.<dyn>.<dyn>
        # must cover a four-segment documented name.
        assert _names_match(
            "span.parse.construct.instances_created", "span.<dyn>.<dyn>"
        )
        assert _names_match("serve.*", "serve.timeout.header")

    def test_wildcard_matches_at_least_one_segment(self):
        assert not _names_match("serve.<x>", "serve")
        assert not _names_match("serve", "serve.<dyn>")

    def test_segment_count_still_matters_without_wildcards(self):
        assert not _names_match("a.b", "a.b.c")


class TestMetricsCatalog:
    def test_clean_tree(self, tmp_path):
        src, doc = _tree(
            tmp_path,
            {"m.py": 'metrics.inc("serve.requests")\n'},
            doc="The counter `serve.requests` counts requests.\n",
        )
        assert check_metrics_catalog(src, doc) == []

    def test_undocumented_metric_is_flagged(self, tmp_path):
        src, doc = _tree(
            tmp_path,
            {"m.py": 'metrics.inc("serve.sneaky")\n'},
            doc="The counter `serve.requests` counts requests.\n"
                'Plus `serve.requests` emitted elsewhere.\n',
        )
        findings = check_metrics_catalog(src, doc)
        kinds = {(f.kind, f.name) for f in findings}
        assert ("undocumented-name", "serve.sneaky") in kinds

    def test_orphaned_doc_entry_is_flagged(self, tmp_path):
        src, doc = _tree(
            tmp_path,
            {"m.py": 'metrics.inc("serve.requests")\n'},
            doc="`serve.requests` and the stale `serve.renamed_away`.\n",
        )
        findings = check_metrics_catalog(src, doc)
        orphans = [f for f in findings if f.kind == "orphaned-name"]
        assert [f.name for f in orphans] == ["serve.renamed_away"]
        assert orphans[0].path.endswith("OBSERVABILITY.md")

    def test_fstring_names_become_dyn_wildcards(self, tmp_path):
        src, doc = _tree(
            tmp_path,
            {"m.py": 'metrics.inc(f"degrade.{level}")\n'},
            doc="Gauge `degrade.<level>` tracks the degrade level.\n",
        )
        assert check_metrics_catalog(src, doc) == []

    def test_log_event_third_arg_is_collected(self, tmp_path):
        src, doc = _tree(
            tmp_path,
            {"m.py": 'log_event(logger, logging.INFO, "serve.started")\n'},
            doc="",
        )
        findings = check_metrics_catalog(src, doc)
        assert [(f.kind, f.name) for f in findings] == [
            ("undocumented-name", "serve.started")
        ]

    def test_observe_and_count_hooks_are_collected(self, tmp_path):
        src, doc = _tree(
            tmp_path,
            {
                "m.py": 'metrics.observe("lat.ms", 3)\n'
                        'self._count("conn.rejected")\n',
            },
            doc="",
        )
        names = {f.name for f in check_metrics_catalog(src, doc)}
        assert names == {"lat.ms", "conn.rejected"}

    def test_dotless_and_computed_names_are_skipped(self, tmp_path):
        src, doc = _tree(
            tmp_path,
            {"m.py": 'metrics.inc("plain")\nmetrics.inc(key)\n'},
            doc="",
        )
        assert check_metrics_catalog(src, doc) == []

    def test_non_name_backticks_in_doc_are_ignored(self, tmp_path):
        src, doc = _tree(
            tmp_path,
            {"m.py": "x = 1\n"},
            doc="See `repro.server.http` and `MetricsRegistry` and "
                "`serve.py` -- none are catalogue names.\n",
        )
        assert check_metrics_catalog(src, doc) == []

    def test_finding_str_is_path_line_message(self, tmp_path):
        src, doc = _tree(
            tmp_path, {"m.py": 'metrics.inc("a.b")\n'}, doc=""
        )
        (finding,) = check_metrics_catalog(src, doc)
        assert isinstance(finding, CodeLintFinding)
        assert str(finding).startswith(f"{finding.path}:{finding.line}:")
        assert "[undocumented-name]" in str(finding)


class TestBlockingCalls:
    def test_sleep_in_async_def_is_flagged(self, tmp_path):
        src, _ = _tree(
            tmp_path,
            {
                "s.py": """\
                import time

                async def handler():
                    time.sleep(1)
                """
            },
        )
        (finding,) = check_blocking_calls(src)
        assert finding.kind == "blocking-call"
        assert finding.name == "time.sleep"
        assert finding.line == 4

    def test_open_socket_subprocess_are_flagged(self, tmp_path):
        src, _ = _tree(
            tmp_path,
            {
                "s.py": """\
                async def handler():
                    open("f")
                    socket.create_connection(("h", 1))
                    subprocess.run(["ls"])
                """
            },
        )
        names = {f.name for f in check_blocking_calls(src)}
        assert names == {
            "open", "socket.create_connection", "subprocess.run",
        }

    def test_blocking_ok_marker_suppresses(self, tmp_path):
        src, _ = _tree(
            tmp_path,
            {
                "s.py": """\
                async def handler():
                    open("f")  # blocking-ok: tiny local read
                """
            },
        )
        assert check_blocking_calls(src) == []

    def test_sync_functions_are_not_flagged(self, tmp_path):
        src, _ = _tree(
            tmp_path,
            {
                "s.py": """\
                import time

                def worker():
                    time.sleep(1)
                """
            },
        )
        assert check_blocking_calls(src) == []

    def test_nested_sync_def_is_an_executor_target(self, tmp_path):
        src, _ = _tree(
            tmp_path,
            {
                "s.py": """\
                import time

                async def handler(loop):
                    def work():
                        time.sleep(1)
                    await loop.run_in_executor(None, work)
                """
            },
        )
        assert check_blocking_calls(src) == []

    def test_nested_async_def_is_still_loop_code(self, tmp_path):
        src, _ = _tree(
            tmp_path,
            {
                "s.py": """\
                import time

                def factory():
                    async def handler():
                        time.sleep(1)
                    return handler
                """
            },
        )
        (finding,) = check_blocking_calls(src)
        assert finding.name == "time.sleep"

    def test_lambda_inside_async_is_skipped(self, tmp_path):
        src, _ = _tree(
            tmp_path,
            {
                "s.py": """\
                async def handler(loop):
                    await loop.run_in_executor(
                        None, lambda: open("f")
                    )
                """
            },
        )
        assert check_blocking_calls(src) == []


class TestRealTreeIsClean:
    """The CI wrappers' exact invocations, pinned as tests."""

    def test_metrics_catalog_is_in_sync(self):
        findings = check_metrics_catalog(
            REPO_ROOT / "src" / "repro",
            REPO_ROOT / "docs" / "OBSERVABILITY.md",
        )
        assert findings == [], "\n".join(str(f) for f in findings)

    def test_server_tier_has_no_blocking_calls(self):
        findings = check_blocking_calls(
            REPO_ROOT / "src" / "repro" / "server"
        )
        assert findings == [], "\n".join(str(f) for f in findings)
