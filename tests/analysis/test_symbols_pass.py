"""Seeded-defect tests for the symbol-hygiene pass (G001-G008)."""

from repro.analysis import GrammarView, analyze_grammar
from repro.grammar.production import Production


def view(productions, terminals=("t",), start=None, nonterminals=None,
         preferences=()):
    productions = tuple(productions)
    if start is None:
        start = productions[0].head
    return GrammarView.from_parts(
        terminals=terminals,
        productions=productions,
        start=start,
        preferences=preferences,
        nonterminals=nonterminals,
    )


class TestSymbolHygiene:
    def test_g001_undeclared_component(self):
        report = analyze_grammar(view([Production("A", ("t", "ghost"))]))
        hits = report.by_code("G001")
        assert len(hits) == 1
        assert hits[0].severity == "error"
        assert hits[0].symbol == "ghost"
        assert hits[0].production == "A<-t+ghost"

    def test_g002_start_is_terminal(self):
        report = analyze_grammar(view([Production("A", ("t",))], start="t"))
        assert report.by_code("G002")[0].severity == "error"

    def test_g002_start_undeclared(self):
        report = analyze_grammar(view([Production("A", ("t",))], start="Z"))
        assert "not declared" in report.by_code("G002")[0].message

    def test_g003_headless_nonterminal(self):
        report = analyze_grammar(
            view(
                [Production("A", ("t", "B"))],
                nonterminals=("A", "B"),
            )
        )
        hits = report.by_code("G003")
        assert len(hits) == 1
        assert hits[0].symbol == "B"
        assert hits[0].severity == "error"

    def test_g004_unreachable_nonterminal(self):
        report = analyze_grammar(
            view([Production("A", ("t",)), Production("Orphan", ("t",))])
        )
        hits = report.by_code("G004")
        assert [d.symbol for d in hits] == ["Orphan"]
        assert hits[0].severity == "warning"

    def test_g005_unproductive_cycle(self):
        # A and B only derive each other; neither bottoms out in terminals.
        report = analyze_grammar(
            view(
                [
                    Production("S", ("t",)),
                    Production("A", ("B", "t")),
                    Production("B", ("A", "t")),
                ],
                start="S",
            )
        )
        assert {d.symbol for d in report.by_code("G005")} == {"A", "B"}

    def test_g006_unused_terminal(self):
        report = analyze_grammar(
            view([Production("A", ("t",))], terminals=("t", "spare"))
        )
        hits = report.by_code("G006")
        assert [d.symbol for d in hits] == ["spare"]
        assert hits[0].severity == "warning"

    def test_g007_duplicate_production_name(self):
        report = analyze_grammar(
            view(
                [
                    Production("A", ("t",), name="dup"),
                    Production("A", ("t", "t"), name="dup"),
                ]
            )
        )
        hits = report.by_code("G007")
        assert hits[0].production == "dup"
        assert hits[0].data["count"] == 2

    def test_g008_production_with_dead_component(self):
        report = analyze_grammar(
            view(
                [Production("A", ("t", "B"))],
                nonterminals=("A", "B"),
            )
        )
        hits = report.by_code("G008")
        assert len(hits) == 1
        assert hits[0].data["components"] == ["B"]

    def test_g008_not_reported_for_undeclared_symbols(self):
        # 'ghost' is a G001 error; it must not double as a G008.
        report = analyze_grammar(view([Production("A", ("t", "ghost"))]))
        assert not report.by_code("G008")

    def test_clean_grammar_has_no_symbol_diagnostics(self):
        report = analyze_grammar(
            view([Production("A", ("t",)), Production("S", ("A", "t"))],
                 start="S")
        )
        symbol_codes = {"G001", "G002", "G003", "G004", "G005", "G006",
                        "G007", "G008"}
        assert not (report.codes() & symbol_codes)
