"""Seeded-defect tests for the schedule-graph pass (S001-S003)."""

from repro.analysis import GrammarView, analyze_grammar
from repro.grammar.dsl import GrammarBuilder
from repro.grammar.preference import Preference
from repro.grammar.production import Production


class TestSchedulePass:
    def test_s001_d_edge_cycle(self):
        # A needs B and B needs A: unschedulable.
        view = GrammarView.from_parts(
            terminals=("t",),
            productions=(
                Production("A", ("B", "t"), name="pa"),
                Production("B", ("A", "t"), name="pb"),
            ),
            start="A",
        )
        report = analyze_grammar(view)
        hits = report.by_code("S001")
        assert len(hits) == 1
        assert hits[0].severity == "error"
        cycle = hits[0].data["cycle"]
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {"A", "B"}
        # Edge provenance names the contributing productions.
        productions = {
            name for edge in hits[0].data["edges"] for name in edge["productions"]
        }
        assert productions == {"pa", "pb"}

    def test_s001_reports_multiple_cycles(self):
        view = GrammarView.from_parts(
            terminals=("t",),
            productions=(
                Production("A", ("B",), name="p1"),
                Production("B", ("A",), name="p2"),
                Production("C", ("D",), name="p3"),
                Production("D", ("C",), name="p4"),
            ),
            start="A",
        )
        report = analyze_grammar(view)
        assert len(report.by_code("S001")) == 2

    def test_s002_transformed_r_edge_preview(self):
        # winner <- loser d-edge forces the direct r-edge into a cycle;
        # the loser has another parent, so the edge is transformed.
        g = GrammarBuilder(start="W")
        g.terminals("t")
        g.production("L", ["t"])
        g.production("W", ["L"])
        g.production("P", ["L", "t"])
        g.prefer("W", over="L", name="r")
        report = analyze_grammar(g)
        hits = report.by_code("S002")
        assert len(hits) == 1
        assert hits[0].severity == "info"
        assert hits[0].preference == "r"
        assert hits[0].data["parents"] == ["P"]

    def test_s003_relaxed_r_edge(self):
        # The loser's only parent is the winner itself: nothing to
        # transform through, so the r-edge is dropped.
        g = GrammarBuilder(start="W")
        g.terminals("t")
        g.production("L", ["t"])
        g.production("W", ["L"])
        g.prefer("W", over="L", name="r")
        report = analyze_grammar(g)
        hits = report.by_code("S003")
        assert len(hits) == 1
        assert hits[0].severity == "warning"
        assert "cycle" in hits[0].data["reason"]

    def test_s003_missing_symbol_relaxation(self):
        view = GrammarView.from_parts(
            terminals=("t",),
            productions=(Production("A", ("t",)),),
            start="A",
            preferences=(Preference("A", "Ghost", name="r"),),
        )
        report = analyze_grammar(view)
        hits = report.by_code("S003")
        assert len(hits) == 1
        assert "Ghost" in hits[0].data["reason"]

    def test_self_preferences_produce_no_schedule_diagnostics(self):
        g = GrammarBuilder(start="A")
        g.terminals("t")
        g.production("A", ["t"])
        g.prefer("A", over="A", name="self")
        report = analyze_grammar(g)
        assert not report.by_code("S002")
        assert not report.by_code("S003")

    def test_acyclic_grammar_with_honoured_preferences_is_clean(self):
        g = GrammarBuilder(start="S")
        g.terminals("t")
        g.production("A", ["t"])
        g.production("B", ["t"])
        g.production("S", ["A", "B"])
        g.prefer("A", over="B", name="ab")
        report = analyze_grammar(g)
        assert not (report.codes() & {"S001", "S002", "S003"})
