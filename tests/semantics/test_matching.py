"""Tests for condition matching and label normalization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.semantics.condition import Condition, Domain
from repro.semantics.matching import ConditionMatcher, normalize_attribute


class TestNormalization:
    def test_case_folded(self):
        assert normalize_attribute("AUTHOR") == "author"

    def test_trailing_colon(self):
        assert normalize_attribute("Author:") == "author"

    def test_asterisk_and_whitespace(self):
        assert normalize_attribute("  Author*: ") == "author"

    def test_parenthesised_hint_removed(self):
        assert normalize_attribute("Price (USD)") == "price"

    def test_inner_whitespace_collapsed(self):
        assert normalize_attribute("departure   date") == "departure date"

    def test_dollar_kept(self):
        assert normalize_attribute("$5 to $20") == "$5 to $20"

    @given(st.text(max_size=40))
    def test_idempotent(self, text):
        once = normalize_attribute(text)
        assert normalize_attribute(once) == once


def cond(attribute="Author", operators=("contains",), kind="text",
         values=(), fields=("f",)):
    return Condition(attribute, operators, Domain(kind, values), fields)


class TestMatcher:
    def setup_method(self):
        self.matcher = ConditionMatcher()

    def test_exact_match(self):
        assert self.matcher.matches(cond(), cond())

    def test_label_decoration_ignored(self):
        assert self.matcher.matches(cond("Author*:"), cond("author"))

    def test_fields_ignored(self):
        assert self.matcher.matches(cond(fields=("a",)), cond(fields=("b",)))

    def test_attribute_mismatch(self):
        assert not self.matcher.matches(cond("Author"), cond("Title"))

    def test_domain_kind_mismatch(self):
        assert not self.matcher.matches(cond(kind="text"), cond(kind="range"))

    def test_enum_values_as_sets(self):
        a = cond(kind="enum", values=("New", "Used"), operators=("=",))
        b = cond(kind="enum", values=("used", "NEW"), operators=("=",))
        assert self.matcher.matches(a, b)

    def test_enum_values_mismatch(self):
        a = cond(kind="enum", values=("New",), operators=("=",))
        b = cond(kind="enum", values=("New", "Used"), operators=("=",))
        assert not self.matcher.matches(a, b)

    def test_operator_mismatch(self):
        assert not self.matcher.matches(
            cond(operators=("contains",)), cond(operators=("exact",))
        )

    def test_lenient_matcher_ignores_operators(self):
        lenient = ConditionMatcher(require_operators=False)
        assert lenient.matches(
            cond(operators=("contains",)), cond(operators=("exact",))
        )

    def test_lenient_domain_values(self):
        lenient = ConditionMatcher(require_domain_values=False)
        a = cond(kind="enum", values=("x",), operators=("=",))
        b = cond(kind="enum", values=("y",), operators=("=",))
        assert lenient.matches(a, b)


class TestMatchSets:
    def setup_method(self):
        self.matcher = ConditionMatcher()

    def test_one_to_one(self):
        truth = [cond("A"), cond("B")]
        extracted = [cond("B"), cond("A")]
        pairs = self.matcher.match_sets(extracted, truth)
        assert len(pairs) == 2

    def test_duplicates_not_double_counted(self):
        truth = [cond("A")]
        extracted = [cond("A"), cond("A")]
        pairs = self.matcher.match_sets(extracted, truth)
        assert len(pairs) == 1

    def test_empty_sides(self):
        assert self.matcher.match_sets([], [cond()]) == []
        assert self.matcher.match_sets([cond()], []) == []

    def test_partial_overlap(self):
        truth = [cond("A"), cond("B"), cond("C")]
        extracted = [cond("B"), cond("X")]
        pairs = self.matcher.match_sets(extracted, truth)
        assert len(pairs) == 1
        assert pairs[0][1].attribute == "B"
