"""Tests for semantic-model JSON serialization."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.fixtures import QAM_HTML
from repro.extractor import FormExtractor
from repro.semantics.condition import Condition, Domain, SemanticModel
from repro.semantics.serialize import (
    condition_from_dict,
    condition_to_dict,
    model_from_dict,
    model_from_json,
    model_to_json,
)

labels = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=24
)
label_tuples = st.lists(labels, max_size=4).map(tuple)


def conditions():
    domains = st.one_of(
        st.just(Domain("text")),
        st.just(Domain("range")),
        st.just(Domain("datetime")),
        label_tuples.map(lambda values: Domain("enum", values)),
    )
    triples = st.lists(
        st.tuples(labels, labels, labels), max_size=3
    ).map(tuple)
    pairs = st.lists(st.tuples(labels, labels), max_size=3).map(tuple)
    return st.builds(
        Condition,
        attribute=labels,
        operators=label_tuples,
        domain=domains,
        fields=label_tuples,
        operator_bindings=triples,
        value_bindings=triples,
        field_roles=pairs,
    )


class TestRoundTrip:
    @given(conditions())
    def test_condition_round_trip(self, condition):
        assert condition_from_dict(condition_to_dict(condition)) == condition

    @given(st.lists(conditions(), max_size=6))
    def test_model_round_trip(self, condition_list):
        model = SemanticModel(conditions=condition_list)
        rebuilt = model_from_json(model_to_json(model))
        assert rebuilt.conditions == model.conditions

    def test_extraction_round_trips(self):
        model = FormExtractor().extract(QAM_HTML)
        rebuilt = model_from_json(model_to_json(model))
        assert rebuilt.conditions == list(model.conditions)

    def test_error_reports_round_trip(self):
        model = SemanticModel(
            conditions=[Condition("A")],
            conflicts=["selectlist 'n'"],
            missing=["text 'x'"],
        )
        rebuilt = model_from_json(model_to_json(model))
        assert rebuilt.conflicts == model.conflicts
        assert rebuilt.missing == model.missing


class TestFormat:
    def test_valid_json(self):
        model = SemanticModel(conditions=[Condition("Author")])
        document = json.loads(model_to_json(model))
        assert document["format"] == 1
        assert document["conditions"][0]["attribute"] == "Author"

    def test_compact_mode(self):
        model = SemanticModel(conditions=[Condition("A")])
        assert "\n" not in model_to_json(model, indent=None)

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            model_from_dict({"format": 99, "conditions": []})

    def test_optional_keys_omitted_when_empty(self):
        data = condition_to_dict(Condition("A"))
        assert "operator_bindings" not in data
        assert "value_bindings" not in data
        assert "field_roles" not in data

    def test_lenient_defaults(self):
        condition = condition_from_dict({"attribute": "X"})
        assert condition.operators == ("contains",)
        assert condition.domain.kind == "text"
