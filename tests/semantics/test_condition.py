"""Tests for the condition/domain/semantic-model types."""

import pytest

from repro.semantics.condition import Condition, Domain, SemanticModel


class TestDomain:
    def test_valid_kinds(self):
        for kind in ("text", "enum", "range", "datetime"):
            Domain(kind)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Domain("bool")

    def test_str_text(self):
        assert str(Domain("text")) == "text"

    def test_str_enum_preview(self):
        domain = Domain("enum", ("a", "b", "c", "d", "e"))
        rendered = str(domain)
        assert rendered.startswith("{a, b, c, d")
        assert "..." in rendered

    def test_enum_values_preserved(self):
        domain = Domain("enum", ("New", "Used"))
        assert domain.values == ("New", "Used")

    def test_hashable(self):
        assert hash(Domain("enum", ("a",))) == hash(Domain("enum", ("a",)))


class TestCondition:
    def test_defaults(self):
        condition = Condition("Author")
        assert condition.operators == ("contains",)
        assert condition.domain.kind == "text"

    def test_str_matches_paper_notation(self):
        condition = Condition("Author", ("exact name",), Domain("text"))
        assert str(condition) == "[Author; {exact name}; text]"

    def test_equality_and_hash(self):
        a = Condition("X", ("=",), Domain("enum", ("1",)), ("f",))
        b = Condition("X", ("=",), Domain("enum", ("1",)), ("f",))
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_fields(self):
        a = Condition("X", fields=("f1",))
        b = Condition("X", fields=("f2",))
        assert a != b


class TestSemanticModel:
    def test_iteration_and_len(self):
        model = SemanticModel(conditions=[Condition("A"), Condition("B")])
        assert len(model) == 2
        assert [c.attribute for c in model] == ["A", "B"]

    def test_attributes(self):
        model = SemanticModel(conditions=[Condition("A"), Condition("B")])
        assert model.attributes() == ["A", "B"]

    def test_describe_includes_errors(self):
        model = SemanticModel(
            conditions=[Condition("A")],
            conflicts=["selectlist 'n'"],
            missing=["text 'orphan'"],
        )
        text = model.describe()
        assert "[A;" in text
        assert "conflicts" in text
        assert "missing" in text

    def test_describe_clean_model_has_no_error_lines(self):
        model = SemanticModel(conditions=[Condition("A")])
        assert "!" not in model.describe()
