"""Deterministic mutation fuzzer over the seed corpus.

:func:`mutations` derives documents from the seeds in
:mod:`tests.fuzz.corpus` with a seeded :class:`random.Random` -- the same
``seed`` always yields the same documents, so a failing mutation index
reproduces exactly (``mutant(seed, index)`` rebuilds just that one).

Mutation operators are the classic byte/structure set: delete, duplicate
or swap a slice, flip characters, truncate mid-tag, splice two seeds
together, inject hostile fragments (unterminated tags, null bytes,
entity fragments), and wrap in extra nesting.  Operators are composed --
each mutant applies 1..4 operators in sequence -- so shapes no single
operator produces still appear.
"""

from __future__ import annotations

import random
from typing import Iterator

from tests.fuzz.corpus import SEEDS

#: Hostile fragments spliced into documents by ``_inject``.
_PAYLOADS = [
    "<form",
    "</form><form>",
    "<input name=",
    "\x00\x00",
    "&#x",
    "<!--",
    "]]>",
    "<select><option",
    "<table><td",
    "��",
    "<div " + "x" * 64,
    "=>'\"<>",
]


def _delete(rng: random.Random, doc: str) -> str:
    if len(doc) < 2:
        return doc
    start = rng.randrange(len(doc))
    end = min(len(doc), start + rng.randrange(1, max(2, len(doc) // 4)))
    return doc[:start] + doc[end:]


def _duplicate(rng: random.Random, doc: str) -> str:
    if not doc:
        return doc
    start = rng.randrange(len(doc))
    end = min(len(doc), start + rng.randrange(1, 200))
    at = rng.randrange(len(doc) + 1)
    return doc[:at] + doc[start:end] + doc[at:]

def _swap(rng: random.Random, doc: str) -> str:
    if len(doc) < 4:
        return doc
    i, j = sorted(rng.randrange(len(doc)) for _ in range(2))
    mid = (i + j) // 2
    return doc[:i] + doc[mid:j] + doc[i:mid] + doc[j:]


def _flip(rng: random.Random, doc: str) -> str:
    if not doc:
        return doc
    chars = list(doc)
    for _ in range(rng.randrange(1, 8)):
        at = rng.randrange(len(chars))
        chars[at] = chr(rng.choice((60, 62, 38, 34, 39, 0, 65, 0xFFFD)))
    return "".join(chars)


def _truncate(rng: random.Random, doc: str) -> str:
    if not doc:
        return doc
    return doc[: rng.randrange(len(doc))]


def _splice(rng: random.Random, doc: str) -> str:
    other = SEEDS[rng.choice(sorted(SEEDS))]
    if not other:
        return doc
    cut = rng.randrange(len(other))
    at = rng.randrange(len(doc) + 1)
    return doc[:at] + other[cut:] + doc[at:]


def _inject(rng: random.Random, doc: str) -> str:
    at = rng.randrange(len(doc) + 1)
    return doc[:at] + rng.choice(_PAYLOADS) + doc[at:]


def _wrap(rng: random.Random, doc: str) -> str:
    depth = rng.randrange(1, 50)
    tag = rng.choice(("div", "b", "form", "table", "font"))
    return f"<{tag}>" * depth + doc + f"</{tag}>" * depth


_OPERATORS = (
    _delete, _duplicate, _swap, _flip,
    _truncate, _splice, _inject, _wrap,
)


def mutant(seed: int, index: int) -> tuple[str, str]:
    """The *index*-th mutant of the run seeded with *seed*.

    Returns ``(label, document)``; the label names the base seed and the
    operators applied, so failures read as e.g.
    ``deep_nesting+_truncate+_inject#37``.
    """
    rng = random.Random(f"{seed}:{index}")
    base = rng.choice(sorted(SEEDS))
    doc = SEEDS[base]
    names = [base]
    for _ in range(rng.randrange(1, 5)):
        op = rng.choice(_OPERATORS)
        doc = op(rng, doc)
        names.append(op.__name__)
    return "+".join(names) + f"#{index}", doc


def mutations(seed: int, count: int) -> Iterator[tuple[str, str]]:
    """*count* deterministic mutants for *seed*, in index order."""
    for index in range(count):
        yield mutant(seed, index)
