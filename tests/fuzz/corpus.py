"""Seed corpus of malformed and adversarial HTML for the fuzz harness.

Each seed is a named, hand-written document exercising one class of
hostility the pipeline must survive: broken markup (unclosed or
misnested tags, garbage attributes), resource attacks (deep nesting,
entity bombs, huge token floods), layout pathologies (zero-area and
overlapping boxes), and encoding trouble (mixed scripts, control
characters, lone surrogates already replaced by U+FFFD).

Seeds are plain strings so the mutator (:mod:`tests.fuzz.mutator`) can
splice them deterministically.  Keep every seed small enough that the
whole corpus extracts in well under a second on the happy path -- the
point is shape, not size (the resource-attack seeds are the exception,
and are still bounded).
"""

from __future__ import annotations

#: name -> malformed HTML document.
SEEDS: dict[str, str] = {
    # -- broken markup ------------------------------------------------------------
    "unclosed_tags": (
        "<html><body><form><b>Title of Book <i>contains"
        '<input type="text" name="title"><select name="fmt">'
        "<option>Hardcover<option>Paperback</form>"
    ),
    "misnested_tags": (
        "<form><b><i>Price</b></i> from <input name=min> to "
        "<input name=max></i></b></form>"
    ),
    "orphan_closers": (
        "</div></span></form><form></p>Author "
        '<input type="text" name="author"></form></body></html>'
    ),
    "attribute_garbage": (
        "<form action==\"'><input type=\"text\" name=title "
        "value=\"a<b>c\" <=> data-x='unterminated>"
        '<input type=submit x y z =></form>'
    ),
    "comment_soup": (
        "<form><!-- <input name=ghost> --><!--->Keyword "
        '<input name="kw"><!-- unterminated comment <input name=lost>'
    ),
    "cdata_and_pi": (
        "<?php echo nope ?><form><![CDATA[<input name=trap>]]>"
        'City <input name="city"></form><?xml version="1.0"?>'
    ),
    "script_with_markup": (
        "<form><script>if (a<b) { document.write('<input name=js>'); }"
        '</script>Departure <input name="depart"></form>'
    ),
    "no_form_element": (
        "<html><body>Search by title <input type=text name=title>"
        "<input type=submit value=Go></body></html>"
    ),
    # -- resource attacks ---------------------------------------------------------
    "deep_nesting": (
        "<form>" + "<div>" * 10_000 + '<input name="deep">'
        + "</div>" * 10_000 + "</form>"
    ),
    "deep_font_stack": (
        "<form>" + "<font size=1>" * 2_000 + "Title <input name=t>"
        + "</font>" * 2_000 + "</form>"
    ),
    "entity_bomb": (
        "<form>" + "&amp;" * 20_000 + "&#x26;&bogus;&#xFFFFFFF;&#55296;"
        '<input name="q"></form>'
    ),
    "token_flood": (
        "<form>"
        + "".join(f"<option>choice {i}</option>" for i in range(3_000))
        + '<select name="flood"><option>a</select></form>'
    ),
    "attribute_flood": (
        "<form><input "
        + " ".join(f"data-a{i}=v{i}" for i in range(5_000))
        + " name=wide></form>"
    ),
    # -- layout pathologies -------------------------------------------------------
    "zero_area_boxes": (
        '<form><span style="width:0;height:0"></span><b></b><i></i>'
        'Title <input name="title"><span></span></form>'
    ),
    "table_misuse": (
        "<form><table><td>Author<table><tr><input name=a>"
        "</table><th rowspan=0 colspan=9999><input name=b></table></form>"
    ),
    # -- encoding trouble ---------------------------------------------------------
    "mixed_encodings": (
        '<form>Tïtle 书名 كتاب '
        '<input name="tïtle">��'
        "Précio <input name=preço></form>"
    ),
    "control_characters": (
        "<form>Ti\x00tle\x08 <input\x0bname=title>\x7f"
        "<input name=\x01weird></form>"
    ),
    "empty_document": "",
    "whitespace_only": "   \n\t\r\n   ",
    "bare_angle": "< <christmas> > << >> <-3 <!>",
}
