"""The fuzz harness's single invariant: resilient extraction never blows up.

For every corpus seed and every deterministic mutant,
``FormExtractor.extract_resilient`` must return an
:class:`~repro.extractor.ExtractionResult` -- possibly degraded, but
structured -- or raise exactly :class:`~repro.extractor.FormNotFoundError`
(the one *typed* refusal, for documents with no query form at all).
Anything else -- any other exception, a hang past the deadline, a result
whose level is off the ladder -- is a bug.

``REPRO_FUZZ_MUTATIONS`` scales the mutation count (default 200; CI runs
more), ``REPRO_FUZZ_SEED`` re-seeds the mutator.  A failure names the
base seed, the operator chain, and the mutant index, so
``mutant(seed, index)`` reproduces the exact document.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.extractor import ExtractionResult, FormExtractor, FormNotFoundError
from repro.resilience.guard import ResourceLimits
from repro.resilience.ladder import LEVELS, ResilienceConfig
from tests.fuzz.corpus import SEEDS
from tests.fuzz.mutator import mutations

#: Wall-clock deadline per document.  Tight enough that a runaway loop
#: fails the suite quickly, loose enough that the resource-attack seeds
#: finish at the ``capped`` level rather than timing out.
DEADLINE_SECONDS = 5.0

#: Generous ceiling on observed wall time per document: the guard is
#: cooperative, so a stage may legitimately overshoot the deadline by the
#: stride between checks -- but never by this much.
WALL_CEILING_SECONDS = 3 * DEADLINE_SECONDS + 5.0

MUTATION_COUNT = int(os.environ.get("REPRO_FUZZ_MUTATIONS", "200"))
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20040613"))


@pytest.fixture(scope="module")
def extractor() -> FormExtractor:
    return FormExtractor(
        resilience=ResilienceConfig(
            limits=ResourceLimits(deadline_seconds=DEADLINE_SECONDS)
        )
    )


def _assert_survives(extractor: FormExtractor, label: str, html: str) -> None:
    started = time.perf_counter()
    try:
        result = extractor.extract_resilient(html)
    except FormNotFoundError:
        # The one acceptable refusal: nothing resembling a form exists.
        return
    elapsed = time.perf_counter() - started
    assert isinstance(result, ExtractionResult), label
    assert result.model is not None, label
    assert result.level in LEVELS, f"{label}: off-ladder level {result.level}"
    for report in result.degradation:
        assert report.level in LEVELS, label
        assert report.describe() in result.warnings, (
            f"{label}: downgrade not surfaced as a warning"
        )
    assert elapsed < WALL_CEILING_SECONDS, (
        f"{label}: took {elapsed:.1f}s against a "
        f"{DEADLINE_SECONDS:g}s deadline"
    )


@pytest.mark.parametrize("name", sorted(SEEDS))
def test_corpus_seed_survives(extractor: FormExtractor, name: str) -> None:
    _assert_survives(extractor, f"seed:{name}", SEEDS[name])


def test_mutations_survive(extractor: FormExtractor) -> None:
    assert MUTATION_COUNT >= 1
    for label, html in mutations(FUZZ_SEED, MUTATION_COUNT):
        _assert_survives(extractor, label, html)


def test_mutator_is_deterministic() -> None:
    first = list(mutations(FUZZ_SEED, 20))
    second = list(mutations(FUZZ_SEED, 20))
    assert first == second
