"""Tests for the query planner."""

import pytest

from repro.query.planner import Constraint, PlanError, QueryPlanner
from repro.semantics.condition import Condition, Domain, SemanticModel


def model():
    return SemanticModel(conditions=[
        Condition(
            "Author", ("first name", "exact name"), Domain("text"),
            fields=("author", "author_mode"),
            operator_bindings=(
                ("first name", "author_mode", "fl"),
                ("exact name", "author_mode", "ex"),
            ),
        ),
        Condition(
            "Subject", ("=",), Domain("enum", ("Arts", "Fiction")),
            fields=("subject",),
            value_bindings=(
                ("Arts", "subject", "Arts"),
                ("Fiction", "subject", "Fiction"),
            ),
        ),
        Condition(
            "Features", ("in",), Domain("enum", ("Pool", "Gym")),
            fields=("features",),
            value_bindings=(
                ("Pool", "features", "v0"),
                ("Gym", "features", "v1"),
            ),
        ),
        Condition(
            "Price", ("between",), Domain("range"),
            fields=("price_lo", "price_hi"),
            field_roles=(("price_lo", "lo"), ("price_hi", "hi")),
        ),
        Condition(
            "Departure date", ("=",), Domain("datetime"),
            fields=("dep_m", "dep_d"),
            field_roles=(("dep_m", "month"), ("dep_d", "day")),
        ),
    ])


@pytest.fixture()
def planner():
    return QueryPlanner(model())


class TestLookup:
    def test_condition_for_normalizes(self, planner):
        assert planner.condition_for("author:").attribute == "Author"
        assert planner.condition_for("AUTHOR").attribute == "Author"
        assert planner.condition_for("publisher") is None


class TestTextPlanning:
    def test_simple_fill(self, planner):
        plan = planner.plan([Constraint("Author", "tom clancy")])
        assert plan.complete
        assert plan.params == {"author": ["tom clancy"]}

    def test_operator_selection(self, planner):
        plan = planner.plan(
            [Constraint("Author", "tom clancy", operator="exact name")]
        )
        assert plan.params == {
            "author": ["tom clancy"], "author_mode": ["ex"],
        }

    def test_unknown_operator_unplanned(self, planner):
        plan = planner.plan(
            [Constraint("Author", "x", operator="soundex")]
        )
        assert not plan.complete
        assert "soundex" in plan.unplanned[0][1]


class TestEnumPlanning:
    def test_single_value(self, planner):
        plan = planner.plan([Constraint("Subject", "Fiction")])
        assert plan.params == {"subject": ["Fiction"]}

    def test_value_matching_normalized(self, planner):
        plan = planner.plan([Constraint("Subject", "fiction")])
        assert plan.complete

    def test_multi_value(self, planner):
        plan = planner.plan([Constraint("Features", ("Pool", "Gym"))])
        assert plan.params == {"features": ["v0", "v1"]}

    def test_out_of_domain_value(self, planner):
        plan = planner.plan([Constraint("Subject", "Cooking")])
        assert not plan.complete


class TestRangePlanning:
    def test_both_endpoints(self, planner):
        plan = planner.plan([Constraint("Price", (5, 20))])
        assert plan.params == {"price_lo": ["5"], "price_hi": ["20"]}

    def test_open_endpoint(self, planner):
        plan = planner.plan([Constraint("Price", (None, 20))])
        assert plan.params == {"price_hi": ["20"]}

    def test_malformed_value(self, planner):
        plan = planner.plan([Constraint("Price", 12)])
        assert not plan.complete


class TestDatePlanning:
    def test_full_date(self, planner):
        plan = planner.plan(
            [Constraint("Departure date", ("March", 15, 2005))]
        )
        # The model only exposes month/day fields; the year is dropped.
        assert plan.params == {"dep_m": ["March"], "dep_d": ["15"]}
        assert plan.complete

    def test_partial_date(self, planner):
        plan = planner.plan([Constraint("Departure date", ("March", None, None))])
        assert plan.params == {"dep_m": ["March"]}


class TestErrorHandling:
    def test_unknown_attribute_collected(self, planner):
        plan = planner.plan([Constraint("Publisher", "x")])
        assert len(plan.unplanned) == 1
        assert plan.planned == []

    def test_strict_mode_raises(self, planner):
        with pytest.raises(PlanError):
            planner.plan([Constraint("Publisher", "x")], strict=True)

    def test_mixed_outcome(self, planner):
        plan = planner.plan([
            Constraint("Author", "x"),
            Constraint("Publisher", "y"),
        ])
        assert len(plan.planned) == 1
        assert len(plan.unplanned) == 1
        assert plan.params == {"author": ["x"]}
