"""End-to-end integration: extract → plan → submit → verify records.

The full deep-Web integration loop the paper motivates: the extractor sees
only HTML; queries planned through its extracted model must return the
same records as queries planned through the source's own ground truth.
"""

import pytest

from repro.extractor import FormExtractor
from repro.query.planner import Constraint, QueryPlanner
from repro.semantics.condition import SemanticModel
from repro.semantics.matching import normalize_attribute
from repro.webdb.source import SimulatedSource


@pytest.fixture(scope="module")
def extractor():
    return FormExtractor()


def attribute_of(source, condition):
    wanted = normalize_attribute(condition.attribute)
    for spec in source.domain.attributes:
        if normalize_attribute(spec.label) == wanted:
            return spec.label
    return None


def probes_for(source):
    """One probe constraint per usable ground-truth condition."""
    probes = []
    for condition in source.generated.truth:
        attribute = attribute_of(source, condition)
        if attribute is None:
            continue
        kind = condition.domain.kind
        if kind == "text":
            sample = str(source.records[0][attribute]).split()[0]
            probes.append(Constraint(condition.attribute, sample))
        elif kind == "enum":
            real = [
                value for value in condition.domain.values
                if not value.lower().startswith(("all", "any"))
            ]
            if real:
                probes.append(Constraint(condition.attribute, real[0]))
        elif kind == "range":
            values = sorted(record[attribute] for record in source.records)
            probes.append(
                Constraint(
                    condition.attribute,
                    (values[len(values) // 4], values[-len(values) // 4]),
                )
            )
        elif kind == "datetime":
            month, day, year = source.records[0][attribute]
            probes.append(Constraint(condition.attribute, (month, day, year)))
    return probes


@pytest.mark.parametrize("domain,seed", [
    ("Books", 90_100), ("Automobiles", 90_200), ("Airfares", 90_300),
    ("Hotels", 90_400), ("Jobs", 90_500),
])
def test_extracted_model_answers_like_truth(extractor, domain, seed):
    source = SimulatedSource.create(domain, seed=seed, record_count=150)
    truth_planner = QueryPlanner(
        SemanticModel(conditions=list(source.generated.truth))
    )
    extracted_model = extractor.extract(source.html)
    extracted_planner = QueryPlanner(extracted_model)

    probes = probes_for(source)
    assert probes, "the source offers no probe-able conditions"

    agreements = 0
    total = 0
    for probe in probes:
        truth_plan = truth_planner.plan([probe])
        if not truth_plan.complete:
            continue
        total += 1
        expected = source.submit(truth_plan.params)
        extracted_plan = extracted_planner.plan([probe])
        if not extracted_plan.complete:
            continue
        got = source.submit(extracted_plan.params)
        if got == expected:
            agreements += 1
    assert total > 0
    # These seeds produce in-grammar forms; extraction-driven querying must
    # agree with truth-driven querying on (nearly) every probe.
    assert agreements / total >= 0.8, f"{agreements}/{total}"


def test_selective_probe_actually_filters(extractor):
    source = SimulatedSource.create("Books", seed=90_600, record_count=150)
    extracted_planner = QueryPlanner(extractor.extract(source.html))
    probed = False
    for condition in extractor.extract(source.html).conditions:
        if condition.domain.kind == "enum" and condition.attribute:
            real = [
                value for value in condition.domain.values
                if not value.lower().startswith(("all", "any"))
            ]
            if not real:
                continue
            plan = extracted_planner.plan(
                [Constraint(condition.attribute, real[0])]
            )
            if not plan.complete:
                continue
            results = source.submit(plan.params)
            if 0 < len(results) < len(source.records):
                probed = True
                break
    assert probed, "no extracted enum condition filtered the records"


def test_multi_constraint_query(extractor):
    source = SimulatedSource.create("Automobiles", seed=90_700,
                                    record_count=200)
    planner = QueryPlanner(
        SemanticModel(conditions=list(source.generated.truth))
    )
    probes = probes_for(source)
    if len(probes) < 2:
        pytest.skip("need two probe-able conditions")
    plan = planner.plan(probes[:2])
    combined = source.submit(plan.params)
    single_a = source.submit(planner.plan([probes[0]]).params)
    single_b = source.submit(planner.plan([probes[1]]).params)
    # Conjunctive semantics: the combination is the intersection.
    ids = lambda records: {id(record) for record in records}
    assert ids(combined) == ids(single_a) & ids(single_b)
