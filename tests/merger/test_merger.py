"""Tests for the merger: condition union, conflicts, missing elements."""

import pytest

from repro.datasets.fixtures import QAA_VARIANT_HTML, QAM_HTML
from repro.extractor import FormExtractor
from repro.merger.merger import Merger, merge_parse_result


@pytest.fixture(scope="module")
def extractor():
    return FormExtractor()


class TestConditionCollection:
    def test_qam_yields_five_conditions(self, extractor):
        model = extractor.extract(QAM_HTML)
        assert len(model) == 5
        assert model.attributes() == [
            "Author", "Title", "Subject", "ISBN", "Publisher",
        ]

    def test_conditions_in_reading_order(self, extractor):
        model = extractor.extract(QAM_HTML)
        assert model.attributes()[0] == "Author"

    def test_duplicate_conditions_deduped(self, extractor):
        detail = extractor.extract_detailed(QAM_HTML)
        conditions = detail.model.conditions
        assert len(conditions) == len(set(conditions))

    def test_nested_conditions_not_double_reported(self, extractor):
        # Each extracted condition's coverage must be disjoint from every
        # other condition in the same tree.
        detail = extractor.extract_detailed(QAM_HTML)
        entries = detail.report.extracted
        for i, first in enumerate(entries):
            for second in entries[i + 1:]:
                overlap = first.coverage & second.coverage
                # Overlap may only come from *different* trees competing.
                if overlap:
                    assert first.node_uid != second.node_uid


class TestErrorReporting:
    def test_clean_form_has_no_errors(self, extractor):
        model = extractor.extract(QAM_HTML)
        assert model.conflicts == []
        assert model.missing == []

    def test_variant_reports_conflicts(self, extractor):
        # The Figure 14-style variant: the merged label run competes for
        # two selects (paper: "they conflict by competing for the number
        # selection").
        detail = extractor.extract_detailed(QAA_VARIANT_HTML)
        assert detail.model.conflicts
        assert len(detail.parse.trees) > 1

    def test_missing_excludes_decoration(self, extractor):
        # Submit buttons etc. never count as missing content.
        model = extractor.extract(QAM_HTML)
        assert all("submit" not in item for item in model.missing)

    def test_unparseable_junk_reported_missing(self, extractor):
        html = """
        <form>
        Keyword: <input name=q><br><br><br>
        <select name=mystery></select>
        </form>
        """
        detail = extractor.extract_detailed(html)
        # The empty, unattached select may be mis-modelled but the form's
        # real condition must still come out.
        assert any(c.attribute == "Keyword" for c in detail.model.conditions)


class TestMergeParseResult:
    def test_wrapper_returns_model(self, extractor):
        detail = extractor.extract_detailed(QAM_HTML)
        model = merge_parse_result(detail.parse)
        assert model.attributes() == detail.model.attributes()

    def test_merger_reusable(self, extractor):
        merger = Merger()
        first = merger.merge(extractor.extract_detailed(QAM_HTML).parse)
        second = merger.merge(extractor.extract_detailed(QAM_HTML).parse)
        assert first.model.attributes() == second.model.attributes()
