"""Merger error reporting when the parse it merges was degraded.

The paper's best-effort contract is that the merger *reports* what the
parse failed to explain -- conflicts, missing content -- rather than
hiding it.  These tests feed the merger deliberately crippled parses
(truncated tree sets, budget-capped runs) and check the error report
stays faithful.
"""

import dataclasses

import pytest

from repro.datasets.fixtures import QAA_VARIANT_HTML, QAM_HTML
from repro.extractor import FormExtractor
from repro.merger.merger import Merger
from repro.resilience.guard import (
    BudgetExceeded,
    ResourceGuard,
    ResourceLimits,
)


@pytest.fixture(scope="module")
def full_parse():
    return FormExtractor().extract_detailed(QAM_HTML).parse


@pytest.fixture(scope="module")
def forest_parse():
    # The Figure 14-style variant parses into multiple competing trees,
    # so dropping trees actually loses coverage.
    parse = FormExtractor().extract_detailed(QAA_VARIANT_HTML).parse
    assert len(parse.trees) > 1
    return parse


def _without_trees(parse, keep: int):
    return dataclasses.replace(parse, trees=parse.trees[:keep])


class TestDegradedParses:
    def test_dropped_trees_surface_as_missing(self, forest_parse):
        full = Merger().merge(forest_parse)
        assert not full.missing_tokens
        crippled = Merger().merge(_without_trees(forest_parse, keep=1))
        # Whatever the surviving tree does not cover must be reported,
        # not silently dropped.
        assert len(crippled.model.conditions) < len(full.model.conditions)
        assert crippled.missing_tokens
        assert crippled.model.missing
        assert crippled.counters()["missing"] == len(crippled.missing_tokens)

    def test_empty_parse_reports_all_content_missing(self, full_parse):
        report = Merger().merge(_without_trees(full_parse, keep=0))
        assert report.model.conditions == []
        assert report.missing_tokens
        # Every input control of the form is unexplained now.
        terminals = {token.terminal for token in report.missing_tokens}
        assert "textbox" in terminals or "selectlist" in terminals

    def test_counters_reflect_degradation(self, forest_parse):
        full = Merger().merge(forest_parse).counters()
        degraded = Merger().merge(
            _without_trees(forest_parse, keep=1)
        ).counters()
        assert degraded["conditions"] < full["conditions"]
        assert degraded["missing"] > full["missing"]


class TestGuardedMerge:
    def test_degrade_guard_records_but_merges(self, full_parse):
        guard = ResourceGuard(
            limits=ResourceLimits(deadline_seconds=0.0), mode="degrade"
        ).start()
        report = Merger().merge(full_parse, guard=guard)
        # Best-effort: the trees already exist, merging them IS the
        # answer -- the breach is recorded, the model still comes out.
        assert report.model.conditions
        assert guard.breached
        assert guard.events[0].stage == "merge"

    def test_raise_guard_aborts_merge(self, full_parse):
        guard = ResourceGuard(
            limits=ResourceLimits(deadline_seconds=0.0), mode="raise"
        ).start()
        with pytest.raises(BudgetExceeded):
            Merger().merge(full_parse, guard=guard)
