"""Tests for the evaluation harness and the Figure 4 survey functions."""

import pytest

from repro.datasets.repository import build_basic
from repro.evaluation.harness import DatasetResult, EvaluationHarness
from repro.evaluation.survey import (
    cross_domain_reuse,
    pattern_frequencies,
    pattern_occurrence_matrix,
    ranked_frequencies,
    vocabulary_growth,
)
from repro.semantics.condition import Condition


@pytest.fixture(scope="module")
def small_basic():
    return build_basic(sources_per_domain=6)


@pytest.fixture(scope="module")
def evaluated(small_basic):
    return EvaluationHarness().evaluate(small_basic)


class TestHarness:
    def test_result_per_source(self, small_basic, evaluated):
        assert len(evaluated.results) == len(small_basic)

    def test_scores_in_range(self, evaluated):
        for result in evaluated.results:
            assert 0.0 <= result.precision <= 1.0
            assert 0.0 <= result.recall <= 1.0

    def test_overall_consistent_with_counts(self, evaluated):
        overall = evaluated.overall
        assert overall.matched <= overall.extracted
        assert overall.matched <= overall.expected

    def test_accuracy_definition(self, evaluated):
        overall = evaluated.overall
        assert evaluated.accuracy == pytest.approx(
            (overall.precision + overall.recall) / 2
        )

    def test_distributions_shape(self, evaluated):
        for dist in (
            evaluated.precision_distribution(),
            evaluated.recall_distribution(),
        ):
            assert set(dist) == {1.0, 0.9, 0.8, 0.7, 0.6, 0.0}
            assert sum(dist.values()) == pytest.approx(100.0)

    def test_reasonable_accuracy_on_basic(self, evaluated):
        # The paper's headline: around 0.85 overall accuracy.
        assert evaluated.accuracy >= 0.75

    def test_custom_extract_fn(self, small_basic):
        harness = EvaluationHarness(extract=lambda html: [])
        result = harness.evaluate(small_basic)
        assert result.overall.recall == 0.0

    def test_evaluate_all(self, small_basic):
        harness = EvaluationHarness(extract=lambda html: [Condition("X")])
        results = harness.evaluate_all([small_basic])
        assert set(results) == {"Basic"}
        assert isinstance(results["Basic"], DatasetResult)

    def test_timing_recorded(self, evaluated):
        assert evaluated.total_elapsed > 0

    def test_metrics_registry_matches_parse_stats(self, small_basic):
        from repro.batch import BatchExtractor
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        EvaluationHarness(metrics=registry).evaluate(small_basic)
        reference = BatchExtractor(jobs=1).extract_html(
            [source.html for source in small_basic]
        )
        assert registry.counter("evaluate.sources") == len(small_basic)
        assert registry.counter("extract.ok") == len(small_basic)
        for name, expected in reference.stats.counters().items():
            assert registry.counter(f"span.parse.construct.{name}") == expected

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_parallel_evaluation_matches_serial(self, small_basic, jobs):
        serial = EvaluationHarness().evaluate(small_basic)
        other = EvaluationHarness(jobs=jobs).evaluate(small_basic)
        assert other.overall.precision == serial.overall.precision
        assert other.overall.recall == serial.overall.recall


class TestSurvey:
    def test_occurrence_matrix_marks(self, small_basic):
        marks = pattern_occurrence_matrix(small_basic)
        assert marks
        source_indices = {index for index, _ in marks}
        assert max(source_indices) < len(small_basic)
        # Distinct per source: no duplicate marks.
        assert len(marks) == len(set(marks))

    def test_vocabulary_growth_monotone(self, small_basic):
        growth = vocabulary_growth(small_basic)
        assert len(growth) == len(small_basic)
        assert all(b >= a for a, b in zip(growth, growth[1:]))

    def test_vocabulary_flattens(self):
        # Figure 4(a): most of the vocabulary appears early.
        dataset = build_basic(sources_per_domain=25)
        growth = vocabulary_growth(dataset)
        midpoint = growth[len(growth) // 2]
        # Airfares (the last domain) contributes the date patterns, so the
        # curve keeps a small tail; the bulk still appears early.
        assert midpoint >= 0.7 * growth[-1]

    def test_frequencies_total(self, small_basic):
        counts = pattern_frequencies(small_basic)["Total"]
        total_uses = sum(len(s.patterns_used) for s in small_basic)
        assert sum(counts.values()) == total_uses

    def test_frequencies_by_domain(self, small_basic):
        result = pattern_frequencies(small_basic, by_domain=True)
        domain_sum = sum(
            sum(counter.values())
            for name, counter in result.items()
            if name != "Total"
        )
        assert domain_sum == sum(result["Total"].values())

    def test_ranked_frequencies_descending(self, small_basic):
        ranked = ranked_frequencies(small_basic)
        counts = [count for _, count in ranked]
        assert counts == sorted(counts, reverse=True)

    def test_zipf_shape(self):
        # Figure 4(b): the top pattern dominates.
        dataset = build_basic(sources_per_domain=30)
        ranked = ranked_frequencies(dataset)
        assert ranked[0][1] >= 3 * ranked[min(8, len(ranked) - 1)][1]

    def test_cross_domain_reuse(self):
        # Figure 4(a): later domains mostly reuse earlier patterns.
        dataset = build_basic(sources_per_domain=25)
        introduced = cross_domain_reuse(dataset)
        first_domain = dataset.sources[0].domain
        later = [
            count for name, count in introduced.items()
            if name != first_domain
        ]
        assert introduced[first_domain] > sum(later)
