"""Tests for the precision/recall metrics (paper Section 6.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    FIGURE15_THRESHOLDS,
    SourceMetrics,
    average,
    distribution_over_thresholds,
    overall_metrics,
    per_source_metrics,
)
from repro.semantics.condition import Condition, Domain


def cond(attribute, kind="text", operators=("contains",), values=()):
    return Condition(attribute, operators, Domain(kind, values))


class TestSourceMetrics:
    def test_perfect(self):
        metrics = SourceMetrics(matched=4, extracted=4, expected=4)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0
        assert metrics.f1 == 1.0

    def test_partial(self):
        metrics = SourceMetrics(matched=3, extracted=4, expected=6)
        assert metrics.precision == 0.75
        assert metrics.recall == 0.5

    def test_nothing_extracted_from_real_form(self):
        metrics = SourceMetrics(matched=0, extracted=0, expected=3)
        assert metrics.precision == 0.0
        assert metrics.recall == 0.0

    def test_empty_form(self):
        metrics = SourceMetrics(matched=0, extracted=0, expected=0)
        assert metrics.precision == 1.0
        assert metrics.recall == 1.0

    def test_f1_zero_when_both_zero(self):
        metrics = SourceMetrics(matched=0, extracted=2, expected=2)
        assert metrics.f1 == 0.0


class TestPerSource:
    def test_computed_via_matcher(self):
        truth = [cond("A"), cond("B")]
        extracted = [cond("A"), cond("C")]
        metrics = per_source_metrics(extracted, truth)
        assert metrics.matched == 1
        assert metrics.precision == 0.5
        assert metrics.recall == 0.5

    def test_paper_formula(self):
        # Ps = |Cs ∩ Es| / |Es|, Rs = |Cs ∩ Es| / |Cs|.
        truth = [cond(x) for x in "ABCDE"]
        extracted = [cond(x) for x in "ABCX"]
        metrics = per_source_metrics(extracted, truth)
        assert metrics.precision == pytest.approx(3 / 4)
        assert metrics.recall == pytest.approx(3 / 5)


class TestOverall:
    def test_aggregates_counts_not_ratios(self):
        first = SourceMetrics(matched=1, extracted=1, expected=1)
        second = SourceMetrics(matched=0, extracted=3, expected=1)
        overall = overall_metrics([first, second])
        assert overall.precision == pytest.approx(1 / 4)
        assert overall.recall == pytest.approx(1 / 2)

    def test_empty(self):
        overall = overall_metrics([])
        assert overall.precision == 1.0


class TestDistribution:
    def test_figure15_thresholds(self):
        assert FIGURE15_THRESHOLDS == (1.0, 0.9, 0.8, 0.7, 0.6, 0.0)

    def test_bucket_assignment(self):
        scores = [1.0, 0.95, 0.85, 0.5]
        dist = distribution_over_thresholds(scores)
        assert dist[1.0] == 25.0
        assert dist[0.9] == 25.0
        assert dist[0.8] == 25.0
        assert dist[0.0] == 25.0

    def test_percentages_sum_to_100(self):
        scores = [0.1, 0.2, 0.5, 0.77, 0.93, 1.0, 1.0]
        dist = distribution_over_thresholds(scores)
        assert sum(dist.values()) == pytest.approx(100.0)

    def test_empty_scores(self):
        dist = distribution_over_thresholds([])
        assert all(v == 0.0 for v in dist.values())

    @given(st.lists(st.floats(min_value=0, max_value=1,
                              allow_nan=False), min_size=1, max_size=60))
    def test_distribution_total_invariant(self, scores):
        dist = distribution_over_thresholds(scores)
        assert sum(dist.values()) == pytest.approx(100.0)

    @given(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                    min_size=1, max_size=40))
    def test_perfect_bucket_counts_ones(self, scores):
        dist = distribution_over_thresholds(scores)
        ones = sum(1 for s in scores if s >= 1.0)
        assert dist[1.0] == pytest.approx(100.0 * ones / len(scores))


class TestAverage:
    def test_mean(self):
        assert average([1.0, 0.5]) == 0.75

    def test_empty(self):
        assert average([]) == 0.0
