"""Tests for preferences ⟨I, U, W⟩."""

from repro.grammar.instance import Instance
from repro.grammar.preference import (
    Preference,
    covers_more,
    subsumes,
    tighter,
)
from repro.grammar.production import Production
from tests.conftest import make_token


def text_instance(token_id, left=0.0):
    return Instance.for_token(make_token(token_id, "text", left, 0.0))


def wrap(symbol, *leaves):
    production = Production(head=symbol, components=("text",) * len(leaves))
    result = production.try_apply(tuple(leaves))
    assert result is not None
    return result


class TestPredicates:
    def test_subsumes_strict(self):
        shared = text_instance(0)
        extra = text_instance(1, 100)
        big = wrap("A", shared, extra)
        small = wrap("B", shared)
        assert subsumes(big, small)
        assert not subsumes(small, big)
        assert not subsumes(big, big)

    def test_covers_more(self):
        big = wrap("A", text_instance(0), text_instance(1, 100))
        small = wrap("B", text_instance(2, 300))
        assert covers_more(big, small)
        assert not covers_more(small, big)

    def test_tighter_prefers_smaller_spread(self):
        close = wrap("A", text_instance(0, 0), text_instance(1, 70))
        spread = wrap("B", text_instance(2, 0), text_instance(3, 500))
        assert tighter(close, spread)
        assert not tighter(spread, close)


class TestPreferenceApplication:
    def test_auto_name(self):
        assert Preference("RBU", "Attr").name == "RBU>Attr"

    def test_applies_on_conflict(self):
        shared = text_instance(0)
        winner = wrap("RBU", shared)
        loser = wrap("Attr", shared)
        preference = Preference("RBU", "Attr")
        assert preference.applies(winner, loser)

    def test_wrong_symbols_do_not_apply(self):
        shared = text_instance(0)
        winner = wrap("RBU", shared)
        loser = wrap("Attr", shared)
        preference = Preference("CBU", "Attr")
        assert not preference.applies(winner, loser)

    def test_no_conflict_no_application(self):
        winner = wrap("RBU", text_instance(0))
        loser = wrap("Attr", text_instance(1, 200))
        assert not Preference("RBU", "Attr").applies(winner, loser)

    def test_ancestry_never_applies(self):
        leaf = text_instance(0)
        inner = wrap("RBList", leaf)
        outer = Production(
            head="RBList", components=("RBList",)
        ).try_apply((inner,))
        preference = Preference("RBList", "RBList", condition=subsumes)
        assert not preference.applies(outer, inner)

    def test_condition_gates(self):
        shared = text_instance(0)
        first = wrap("RBList", shared)
        second = wrap("RBList", shared)
        preference = Preference("RBList", "RBList", condition=subsumes)
        # Equal coverage: subsumption is strict, so no application.
        assert not preference.applies(first, second)

    def test_criteria_gates(self):
        shared = text_instance(0)
        extra = text_instance(1, 80)
        big = wrap("L", shared, extra)
        small_production = Production(head="L", components=("text",))
        small = small_production.try_apply((shared,))
        preference = Preference(
            "L", "L", condition=subsumes, criteria=lambda a, b: False
        )
        assert not preference.applies(big, small)

    def test_str(self):
        assert "prefer RBU over Attr" in str(Preference("RBU", "Attr"))
