"""Direct pattern tests for the standard grammar on hand-built HTML.

Each test isolates one condition pattern of the catalog in a minimal form
and asserts the extracted condition's full shape -- a finer-grained
regression net than the generator round-trip (which samples layouts).
"""

import pytest

from repro.extractor import FormExtractor
from repro.semantics.condition import Domain

_MONTHS = "".join(
    f"<option>{m}</option>"
    for m in ("January", "February", "March", "April", "May", "June", "July",
              "August", "September", "October", "November", "December")
)
_DAYS = "".join(f"<option>{d}</option>" for d in range(1, 32))
_YEARS = "<option>2004</option><option>2005</option><option>2006</option>"


@pytest.fixture(scope="module")
def extractor():
    return FormExtractor()


def extract(extractor, body):
    html = f"<html><body><form action='/s'>{body}" \
           "<br><input type='submit' value='Go'></form></body></html>"
    return extractor.extract(html)


def the_condition(model, attribute):
    matches = [c for c in model if c.attribute == attribute]
    assert len(matches) == 1, [str(c) for c in model]
    return matches[0]


class TestTextPatterns:
    def test_textval_left(self, extractor):
        model = extract(extractor, "Author: <input name=a size=20>")
        condition = the_condition(model, "Author")
        assert condition.operators == ("contains",)
        assert condition.domain == Domain("text")
        assert condition.fields == ("a",)

    def test_textval_above(self, extractor):
        model = extract(extractor, "Author:<br><input name=a size=20>")
        assert the_condition(model, "Author").domain.kind == "text"

    def test_textval_below(self, extractor):
        model = extract(extractor, "<input name=a size=20><br>Author")
        assert the_condition(model, "Author").domain.kind == "text"

    def test_textarea_counts_as_text(self, extractor):
        model = extract(
            extractor, "Comments: <textarea name=c rows=3 cols=30></textarea>"
        )
        assert the_condition(model, "Comments").fields == ("c",)

    def test_password_counts_as_text(self, extractor):
        model = extract(extractor, "PIN: <input type=password name=p size=8>")
        assert the_condition(model, "PIN").fields == ("p",)

    def test_textval_unit(self, extractor):
        model = extract(
            extractor, "Distance: <input name=d size=6> miles"
        )
        condition = the_condition(model, "Distance")
        assert condition.domain.kind == "text"


class TestOperatorPatterns:
    RADIOS = (
        "<input type=radio name=m value=x checked> exact name "
        "<input type=radio name=m value=s> starts with"
    )

    def test_textop_below(self, extractor):
        model = extract(
            extractor,
            f"Author: <input name=a size=24><br>{self.RADIOS}",
        )
        condition = the_condition(model, "Author")
        assert condition.operators == ("exact name", "starts with")
        assert condition.operator_binding("exact name") == ("m", "x")

    def test_textop_right(self, extractor):
        model = extract(
            extractor, f"Author: <input name=a size=10> {self.RADIOS}"
        )
        assert the_condition(model, "Author").operators == (
            "exact name", "starts with",
        )

    def test_textopsel_mid(self, extractor):
        model = extract(
            extractor,
            "Title: <select name=m><option>contains</option>"
            "<option>exact phrase</option><option>starts with</option>"
            "</select> <input name=t size=20>",
        )
        condition = the_condition(model, "Title")
        assert "exact phrase" in condition.operators
        assert condition.operator_binding("contains") == ("m", "contains")

    def test_textopsel_below(self, extractor):
        model = extract(
            extractor,
            "Title: <input name=t size=20><br>"
            "<select name=m><option>contains</option>"
            "<option>exact phrase</option></select>",
        )
        assert "contains" in the_condition(model, "Title").operators


class TestEnumPatterns:
    def test_sel_left(self, extractor):
        model = extract(
            extractor,
            "Color: <select name=c><option>Red</option>"
            "<option value='b'>Blue</option></select>",
        )
        condition = the_condition(model, "Color")
        assert condition.domain == Domain("enum", ("Red", "Blue"))
        assert condition.value_binding("Blue") == ("c", "b")

    def test_sel_above(self, extractor):
        model = extract(
            extractor,
            "Color:<br><select name=c><option>Red</option>"
            "<option>Blue</option></select>",
        )
        assert the_condition(model, "Color").domain.kind == "enum"

    def test_enumrb_labeled(self, extractor):
        model = extract(
            extractor,
            "Condition: <input type=radio name=k value=n checked> New "
            "<input type=radio name=k value=u> Used",
        )
        condition = the_condition(model, "Condition")
        assert condition.operators == ("=",)
        assert condition.domain.values == ("New", "Used")
        assert condition.value_binding("Used") == ("k", "u")

    def test_enumrb_bare(self, extractor):
        model = extract(
            extractor,
            "<input type=radio name=t value=rt checked> Round trip "
            "<input type=radio name=t value=ow> One way",
        )
        condition = the_condition(model, "")
        assert condition.domain.values == ("Round trip", "One way")

    def test_enumcb_labeled(self, extractor):
        model = extract(
            extractor,
            "Features: <input type=checkbox name=f value=1> Pool "
            "<input type=checkbox name=f value=2> Gym",
        )
        condition = the_condition(model, "Features")
        assert condition.operators == ("in",)

    def test_flag(self, extractor):
        model = extract(
            extractor,
            "<input type=checkbox name=stock value=1> In stock only",
        )
        condition = the_condition(model, "")
        assert condition.operators == ("in",)
        assert condition.domain.values == ("In stock only",)
        assert condition.value_binding("In stock only") == ("stock", "1")

    def test_listbox(self, extractor):
        model = extract(
            extractor,
            "Genres: <select name=g size=3 multiple><option>Jazz</option>"
            "<option>Rock</option><option>Folk</option></select>",
        )
        condition = the_condition(model, "Genres")
        assert condition.domain.values == ("Jazz", "Rock", "Folk")


class TestRangePatterns:
    def test_range_text_row(self, extractor):
        model = extract(
            extractor,
            "Price: from <input name=lo size=6> to <input name=hi size=6>",
        )
        condition = the_condition(model, "Price")
        assert condition.operators == ("between",)
        assert condition.domain.kind == "range"
        assert condition.field_for_role("lo") == "lo"
        assert condition.field_for_role("hi") == "hi"

    def test_range_mid_mark(self, extractor):
        model = extract(
            extractor,
            "Year: <input name=lo size=6> to <input name=hi size=6>",
        )
        assert the_condition(model, "Year").domain.kind == "range"

    def test_range_sel_row(self, extractor):
        model = extract(
            extractor,
            "Price: from <select name=lo><option>$10</option>"
            "<option>$20</option></select> to <select name=hi>"
            "<option>$10</option><option>$20</option></select>",
        )
        assert the_condition(model, "Price").domain.kind == "range"

    def test_range_stacked(self, extractor):
        model = extract(
            extractor,
            "<table><tr><td>Salary:</td><td>"
            "min <input name=lo size=8><br>max <input name=hi size=8>"
            "</td></tr></table>",
        )
        assert the_condition(model, "Salary").domain.kind == "range"

    def test_fused_label_mark(self, extractor):
        model = extract(
            extractor,
            "Price: from <input name=lo size=6> to <input name=hi size=6>"
            "<br>",
        )
        condition = the_condition(model, "Price")
        assert condition.field_roles == (("lo", "lo"), ("hi", "hi"))


class TestDatePatterns:
    def test_date3(self, extractor):
        model = extract(
            extractor,
            f"Departure: <select name=m>{_MONTHS}</select> "
            f"<select name=d>{_DAYS}</select> "
            f"<select name=y>{_YEARS}</select>",
        )
        condition = the_condition(model, "Departure")
        assert condition.domain.kind == "datetime"
        assert condition.field_for_role("month") == "m"
        assert condition.field_for_role("day") == "d"
        assert condition.field_for_role("year") == "y"

    def test_date2(self, extractor):
        model = extract(
            extractor,
            f"Check-in: <select name=m>{_MONTHS}</select> "
            f"<select name=d>{_DAYS}</select>",
        )
        condition = the_condition(model, "Check-in")
        assert condition.domain.kind == "datetime"
        assert condition.field_for_role("year") is None

    def test_day_month_order(self, extractor):
        model = extract(
            extractor,
            f"Date: <select name=d>{_DAYS}</select> "
            f"<select name=m>{_MONTHS}</select>",
        )
        condition = the_condition(model, "Date")
        assert condition.field_for_role("day") == "d"
        assert condition.field_for_role("month") == "m"

    def test_two_generic_selects_are_not_a_date(self, extractor):
        model = extract(
            extractor,
            "X: <select name=a><option>p</option><option>q</option></select> "
            "<select name=b><option>r</option><option>s</option></select>",
        )
        assert all(c.domain.kind != "datetime" for c in model)


class TestBarePatterns:
    def test_bare_keyword_box(self, extractor):
        model = extract(extractor, "<input name=q size=30>")
        condition = the_condition(model, "")
        assert condition.domain.kind == "text"
        assert condition.fields == ("q",)
