"""Structural tests for the paper's example grammar G (Figure 6)."""

import pytest

from repro.grammar.example_g import build_example_grammar
from repro.parser.parser import BestEffortParser
from repro.parser.schedule import build_schedule
from tests.conftest import make_token


@pytest.fixture(scope="module")
def grammar():
    return build_example_grammar()


class TestStructure:
    def test_terminals_match_figure6(self, grammar):
        assert grammar.terminals == frozenset(
            {"text", "textbox", "radiobutton"}
        )

    def test_start_symbol(self, grammar):
        assert grammar.start == "QI"

    def test_nonterminals_match_figure6(self, grammar):
        assert grammar.nonterminals == frozenset(
            {"QI", "HQI", "CP", "TextVal", "TextOp", "Op", "EnumRB",
             "RBList", "RBU", "Attr", "Val"}
        )

    def test_production_numbering(self, grammar):
        names = {production.name for production in grammar.productions}
        # Figure 6's labels P1..P11 appear (alternatives suffixed a/b/c).
        for label in ("P1a", "P1b", "P2a", "P2b", "P4a", "P4b", "P4c",
                      "P5", "P6", "P7", "P8a", "P8b", "P9", "P10", "P11"):
            assert label in names

    def test_preferences_r1_r2(self, grammar):
        names = {preference.name for preference in grammar.preferences}
        assert {"R1", "R2"} <= names

    def test_schedule_rbu_before_attr(self, grammar):
        # Paper Figure 12: RBU must be scheduled before Attr so that R1
        # prunes Attr readings of radio labels at generation time.
        order = build_schedule(grammar).order
        assert order.index("RBU") < order.index("Attr")


class TestSmallParses:
    def row(self, *specs):
        tokens = []
        x = 0.0
        for index, (terminal, width) in enumerate(specs):
            tokens.append(
                make_token(index, terminal, x, 0.0, width=width,
                           height=13.0 if terminal == "radiobutton" else 19.0,
                           sval=f"w{index}", name=f"f{index}")
            )
            x += width + 5.0
        return tokens

    def test_textval_parse(self, grammar):
        tokens = self.row(("text", 50), ("textbox", 140))
        result = BestEffortParser(grammar).parse(tokens)
        assert result.is_complete
        tree = result.trees[0]
        assert list(tree.find_all("TextVal"))

    def test_enumrb_parse(self, grammar):
        tokens = self.row(
            ("radiobutton", 13), ("text", 40),
            ("radiobutton", 13), ("text", 40),
        )
        result = BestEffortParser(grammar).parse(tokens)
        assert result.is_complete
        tree = result.trees[0]
        (enum,) = tree.find_all("EnumRB")
        assert enum.payload["values"] == ("w1", "w3")

    def test_r2_prunes_short_lists(self, grammar):
        tokens = self.row(
            ("radiobutton", 13), ("text", 40),
            ("radiobutton", 13), ("text", 40),
            ("radiobutton", 13), ("text", 40),
        )
        result = BestEffortParser(grammar).parse(tokens)
        alive = [
            i for i in result.instances if i.symbol == "RBList" and i.alive
        ]
        top = max(alive, key=lambda i: len(i.coverage))
        assert len(top.coverage) == 6
        # No surviving list conflicts with the maximal one.
        assert not any(top.conflicts_with(other) for other in alive)

    def test_empty_input(self, grammar):
        result = BestEffortParser(grammar).parse([])
        assert result.trees == []
