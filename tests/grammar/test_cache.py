"""Grammar / schedule memoization (`repro.grammar.cache`)."""

from __future__ import annotations

import gc
from dataclasses import replace

import pytest

from repro.grammar.cache import (
    cache_stats,
    cached_schedule,
    cached_standard_grammar,
    clear_caches,
)
from repro.grammar.standard import build_standard_grammar
from repro.parser.parser import BestEffortParser
from repro.spatial.relations import DEFAULT_SPATIAL


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


class TestGrammarCache:
    def test_same_config_returns_same_object(self):
        first = cached_standard_grammar()
        second = cached_standard_grammar()
        assert first is second
        assert cache_stats()["grammars"] == 1

    def test_distinct_configs_get_distinct_grammars(self):
        base = cached_standard_grammar()
        wider = replace(DEFAULT_SPATIAL, max_horizontal_gap=400.0)
        other = cached_standard_grammar(wider)
        assert other is not base
        assert cache_stats()["grammars"] == 2

    def test_cached_grammar_matches_a_fresh_build(self):
        cached = cached_standard_grammar()
        fresh = build_standard_grammar()
        assert cached.stats() == fresh.stats()
        assert cached.describe() == fresh.describe()


class TestScheduleCache:
    def test_keyed_on_identity(self):
        grammar = cached_standard_grammar()
        assert cached_schedule(grammar) is cached_schedule(grammar)
        assert cache_stats()["schedules"] == 1

    def test_separate_grammars_separate_schedules(self):
        a = build_standard_grammar()
        b = build_standard_grammar()
        schedule_a = cached_schedule(a)
        schedule_b = cached_schedule(b)
        assert schedule_a is not schedule_b
        assert schedule_a.order == schedule_b.order
        assert cache_stats()["schedules"] == 2

    def test_entry_evicted_when_grammar_dies(self):
        grammar = build_standard_grammar()
        cached_schedule(grammar)
        assert cache_stats()["schedules"] == 1
        del grammar
        gc.collect()
        assert cache_stats()["schedules"] == 0

    def test_parsers_sharing_a_grammar_share_the_schedule(self):
        grammar = cached_standard_grammar()
        first = BestEffortParser(grammar)
        second = BestEffortParser(grammar)
        assert first.schedule is second.schedule

    def test_clear_caches(self):
        cached_schedule(cached_standard_grammar())
        clear_caches()
        assert cache_stats() == {"grammars": 0, "schedules": 0}
