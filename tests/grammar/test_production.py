"""Tests for productions ⟨H, M, C, F⟩."""

import pytest

from repro.grammar.instance import Instance
from repro.grammar.production import Production
from tests.conftest import make_token


def text_instance(token_id, left=0.0, sval="x"):
    return Instance.for_token(
        make_token(token_id, "text", left, 0.0, sval=sval)
    )


class TestDefinition:
    def test_empty_components_rejected(self):
        with pytest.raises(ValueError):
            Production(head="X", components=())

    def test_auto_name(self):
        production = Production(head="X", components=("a", "b"))
        assert production.name == "X<-a+b"

    def test_str(self):
        production = Production(head="X", components=("a", "b"))
        assert str(production) == "X -> a b"

    def test_repeated_component_symbols_allowed(self):
        Production(head="Pair", components=("text", "text"))


class TestApplication:
    def test_successful_application(self):
        production = Production(
            head="Attr",
            components=("text",),
            constructor=lambda tx: {"attribute": tx.payload["sval"]},
        )
        source = text_instance(0, sval="Author")
        result = production.try_apply((source,))
        assert result is not None
        assert result.symbol == "Attr"
        assert result.payload == {"attribute": "Author"}
        assert result.coverage == frozenset({0})
        assert result.children == (source,)
        assert result.production is production

    def test_parent_link_established(self):
        production = Production(head="X", components=("text",))
        source = text_instance(0)
        result = production.try_apply((source,))
        assert result in source.parents

    def test_constraint_rejects(self):
        production = Production(
            head="X", components=("text",), constraint=lambda t: False
        )
        assert production.try_apply((text_instance(0),)) is None

    def test_constraint_receives_in_order(self):
        received = []

        def constraint(a, b):
            received.append((a.payload["sval"], b.payload["sval"]))
            return True

        production = Production(
            head="X", components=("text", "text"), constraint=constraint
        )
        production.try_apply(
            (text_instance(0, sval="first"), text_instance(1, 50, "second"))
        )
        assert received == [("first", "second")]

    def test_duplicate_instance_rejected(self):
        production = Production(head="X", components=("text", "text"))
        instance = text_instance(0)
        assert production.try_apply((instance, instance)) is None

    def test_overlapping_coverage_rejected(self):
        production = Production(head="X", components=("text", "text"))
        shared = text_instance(0)
        wrapper = Production(head="W", components=("text",)).try_apply(
            (shared,)
        )
        # wrapper and shared cover the same token.
        mixed = Production(head="X", components=("W", "text"))
        assert mixed.try_apply((wrapper, shared)) is None

    def test_constructor_veto(self):
        production = Production(
            head="X", components=("text",), constructor=lambda t: None
        )
        assert production.try_apply((text_instance(0),)) is None

    def test_bbox_is_union(self):
        production = Production(head="X", components=("text", "text"))
        a = text_instance(0, left=0)
        b = text_instance(1, left=100)
        result = production.try_apply((a, b))
        assert result.bbox == a.bbox.union(b.bbox)

    def test_rejection_leaves_no_parent_links(self):
        production = Production(
            head="X", components=("text",), constraint=lambda t: False
        )
        source = text_instance(0)
        production.try_apply((source,))
        assert source.parents == []
