"""Tests for the lexical cues used by grammar constraints."""

import pytest

from repro.grammar.text_heuristics import (
    clean_label,
    date_signature,
    is_attribute_like,
    is_day_select,
    is_month_select,
    is_operator_select,
    is_operator_text,
    is_range_mark,
    is_time_select,
    is_unit_text,
    is_year_select,
    split_attr_mark,
)
from repro.tokens.model import SelectOption


def options(*labels):
    return tuple(SelectOption(label, label) for label in labels)


class TestCleanLabel:
    @pytest.mark.parametrize("raw,expected", [
        ("Author:", "Author"),
        ("Author*:", "Author"),
        ("  Title  ", "Title"),
        ("Price?", "Price"),
        ("*Required*", "Required"),
        ("Departure date", "Departure date"),
    ])
    def test_decoration_stripped(self, raw, expected):
        assert clean_label(raw) == expected


class TestAttributeLike:
    @pytest.mark.parametrize("text", [
        "Author", "Author:", "Departure date", "Price (USD)", "ZIP",
        "Number of passengers",
    ])
    def test_accepts_labels(self, text):
        assert is_attribute_like(text)

    @pytest.mark.parametrize("text", [
        "", "   ", "***", "Search our catalog of over two million titles.",
        "Click here to browse this week's bestsellers!",
        "a label that runs on for far too many characters to be an attribute",
        "one two three four five six seven",
    ])
    def test_rejects_sentences_and_noise(self, text):
        assert not is_attribute_like(text)


class TestOperatorText:
    @pytest.mark.parametrize("text", [
        "contains", "exact name", "starts with", "all of the words",
        "first name/initials and last name", "less than",
    ])
    def test_operator_phrases(self, text):
        assert is_operator_text(text)

    @pytest.mark.parametrize("text", ["Author", "Fiction", "New", "$5"])
    def test_plain_values(self, text):
        assert not is_operator_text(text)


class TestRangeMark:
    @pytest.mark.parametrize("text", [
        "from", "to", "From", "TO", "min", "Max", "between", "and",
        "under", "over", "-", "up to", "at least",
    ])
    def test_marks(self, text):
        assert is_range_mark(text)

    @pytest.mark.parametrize("text", [
        "From:",  # colon marks an attribute (airfare From:/To:)
        "fromage", "total", "Author", "",
    ])
    def test_non_marks(self, text):
        assert not is_range_mark(text)


class TestSplitAttrMark:
    def test_price_from(self):
        assert split_attr_mark("Price: from") == ("Price", "from")

    def test_year_between(self):
        assert split_attr_mark("Year between") == ("Year", "between")

    def test_decorated(self):
        assert split_attr_mark("Release year*: min") == ("Release year", "min")

    def test_plain_label_is_none(self):
        assert split_attr_mark("Price:") is None

    def test_bare_mark_is_none(self):
        assert split_attr_mark("from") is None


class TestOperatorSelect:
    def test_operator_options(self):
        assert is_operator_select(
            options("contains", "starts with", "exact phrase")
        )

    def test_value_options(self):
        assert not is_operator_select(options("Economy", "Business", "First"))

    def test_mixed_majority_required(self):
        assert not is_operator_select(
            options("contains", "Red", "Blue", "Green", "Black")
        )

    def test_too_few_options(self):
        assert not is_operator_select(options("contains"))


class TestDateSignatures:
    MONTHS = options(
        "January", "February", "March", "April", "May", "June", "July",
        "August", "September", "October", "November", "December",
    )
    DAYS = options(*[str(d) for d in range(1, 32)])
    YEARS = options("2004", "2005", "2006")

    def test_month_select(self):
        assert is_month_select(self.MONTHS)
        assert date_signature(self.MONTHS) == "month"

    def test_month_abbreviations(self):
        abbrev = options("Jan", "Feb", "Mar", "Apr", "May", "Jun",
                         "Jul", "Aug", "Sep", "Oct", "Nov", "Dec")
        assert is_month_select(abbrev)

    def test_month_with_placeholder(self):
        padded = options("Month", *[o.label for o in self.MONTHS])
        assert is_month_select(padded)

    def test_day_select(self):
        assert is_day_select(self.DAYS)
        assert date_signature(self.DAYS) == "day"

    def test_year_select(self):
        assert is_year_select(self.YEARS)
        assert date_signature(self.YEARS) == "year"

    def test_generic_enum_is_none(self):
        assert date_signature(options("Economy", "Business")) is None

    def test_small_numeric_select_not_days(self):
        assert not is_day_select(options("1", "2", "3", "4"))

    def test_prices_are_not_years(self):
        assert not is_year_select(options("$100", "$200", "$300"))

    def test_time_select(self):
        assert is_time_select(options("9:00 am", "12:00 pm", "6:30 pm"))
        assert not is_time_select(options("Morning", "Noon", "Evening"))


class TestUnitText:
    @pytest.mark.parametrize("text", ["miles", "km", "$", "years", "%"])
    def test_units(self, text):
        assert is_unit_text(text)

    @pytest.mark.parametrize("text", ["Author", "from", "", "a bag of words"])
    def test_non_units(self, text):
        assert not is_unit_text(text)
