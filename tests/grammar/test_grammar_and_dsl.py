"""Tests for the TwoPGrammar container and the builder DSL."""

import pytest

from repro.grammar.dsl import GrammarBuilder
from repro.grammar.grammar import GrammarError, TwoPGrammar
from repro.grammar.preference import Preference
from repro.grammar.production import Production


def tiny_grammar():
    g = GrammarBuilder(start="S")
    g.terminals("t")
    g.production("A", ["t"])
    g.production("S", ["A"])
    g.prefer("S", over="A")
    return g.build()


class TestValidation:
    def test_valid_grammar_builds(self):
        grammar = tiny_grammar()
        assert grammar.start == "S"
        assert grammar.terminals == frozenset({"t"})
        assert grammar.nonterminals == frozenset({"A", "S"})

    def test_start_must_be_nonterminal(self):
        with pytest.raises(GrammarError):
            TwoPGrammar(
                terminals=frozenset({"t"}),
                nonterminals=frozenset({"A"}),
                start="t",
                productions=(Production(head="A", components=("t",)),),
            )

    def test_undeclared_component_rejected(self):
        with pytest.raises(GrammarError):
            TwoPGrammar(
                terminals=frozenset({"t"}),
                nonterminals=frozenset({"A"}),
                start="A",
                productions=(Production(head="A", components=("ghost",)),),
            )

    def test_undeclared_head_rejected(self):
        with pytest.raises(GrammarError):
            TwoPGrammar(
                terminals=frozenset({"t"}),
                nonterminals=frozenset({"A"}),
                start="A",
                productions=(
                    Production(head="A", components=("t",)),
                    Production(head="B", components=("t",)),
                ),
            )

    def test_terminal_nonterminal_overlap_rejected(self):
        with pytest.raises(GrammarError):
            TwoPGrammar(
                terminals=frozenset({"A"}),
                nonterminals=frozenset({"A"}),
                start="A",
                productions=(Production(head="A", components=("A",)),),
            )

    def test_preference_symbols_checked(self):
        with pytest.raises(GrammarError):
            TwoPGrammar(
                terminals=frozenset({"t"}),
                nonterminals=frozenset({"A"}),
                start="A",
                productions=(Production(head="A", components=("t",)),),
                preferences=(Preference("A", "ghost"),),
            )

    def test_empty_builder_rejected(self):
        with pytest.raises(GrammarError):
            GrammarBuilder(start="S").build()


class TestLookups:
    def test_productions_for(self):
        grammar = tiny_grammar()
        assert len(grammar.productions_for("A")) == 1
        assert grammar.productions_for("t") == []

    def test_preferences_involving(self):
        grammar = tiny_grammar()
        assert len(grammar.preferences_involving("S")) == 1
        assert len(grammar.preferences_involving("A")) == 1
        assert grammar.preferences_involving("t") == []

    def test_component_heads(self):
        grammar = tiny_grammar()
        assert grammar.component_heads("A") == {"S"}
        assert grammar.component_heads("t") == {"A"}
        assert grammar.component_heads("S") == set()

    def test_stats(self):
        stats = tiny_grammar().stats()
        assert stats == {
            "productions": 2,
            "nonterminals": 2,
            "terminals": 1,
            "preferences": 1,
        }

    def test_describe_lists_rules(self):
        text = tiny_grammar().describe()
        assert "A -> t" in text
        assert "prefer S over A" in text


class TestStandardGrammarShape:
    def test_scale_comparable_to_paper(self, standard_grammar):
        # Paper Section 6: 82 productions, 39 nonterminals, 16 terminals.
        stats = standard_grammar.stats()
        assert stats["terminals"] == 16
        assert 50 <= stats["productions"] <= 110
        assert 15 <= stats["nonterminals"] <= 45
        assert stats["preferences"] >= 10

    def test_start_symbol_is_qi(self, standard_grammar):
        assert standard_grammar.start == "QI"

    def test_validates(self, standard_grammar):
        standard_grammar.validate()

    def test_example_grammar_matches_figure6(self, example_grammar):
        assert example_grammar.start == "QI"
        assert example_grammar.terminals == frozenset(
            {"text", "textbox", "radiobutton"}
        )
        # Figure 6 lists 11 numbered productions; alternatives expand them.
        assert len(example_grammar.productions) >= 11
