"""Tests for parse instances."""

from repro.grammar.instance import Instance
from tests.conftest import make_token


def terminal(token_id=0, terminal_type="text", left=0.0, top=0.0, **attrs):
    return Instance.for_token(
        make_token(token_id, terminal_type, left, top, **attrs)
    )


def parent_of(*children, symbol="X"):
    box = children[0].bbox
    for child in children[1:]:
        box = box.union(child.bbox)
    instance = Instance(symbol=symbol, bbox=box, children=tuple(children))
    for child in children:
        child.parents.append(instance)
    return instance


class TestConstruction:
    def test_terminal_wraps_token(self):
        token = make_token(7, "textbox", 0, 0, name="q")
        instance = Instance.for_token(token)
        assert instance.symbol == "textbox"
        assert instance.coverage == frozenset({7})
        assert instance.token is token
        assert instance.is_terminal
        assert instance.payload["name"] == "q"

    def test_coverage_derived_from_children(self):
        a, b = terminal(0), terminal(1, left=100)
        parent = parent_of(a, b)
        assert parent.coverage == frozenset({0, 1})
        assert not parent.is_terminal

    def test_uids_unique_and_increasing(self):
        a, b = terminal(0), terminal(1)
        assert b.uid > a.uid

    def test_alive_by_default(self):
        assert terminal().alive


class TestTreeStructure:
    def test_descendants_preorder(self):
        a, b = terminal(0), terminal(1, left=100)
        mid = parent_of(a, symbol="M")
        root = parent_of(mid, b, symbol="R")
        symbols = [node.symbol for node in root.descendants()]
        assert symbols[0] == "R"
        assert set(symbols) == {"R", "M", "text"}

    def test_is_ancestor_of(self):
        a = terminal(0)
        mid = parent_of(a, symbol="M")
        root = parent_of(mid, symbol="R")
        assert root.is_ancestor_of(a)
        assert root.is_ancestor_of(mid)
        assert not a.is_ancestor_of(root)
        assert not root.is_ancestor_of(root)

    def test_size_counts_all_nodes(self):
        a, b = terminal(0), terminal(1, left=100)
        root = parent_of(parent_of(a, symbol="M"), b, symbol="R")
        assert root.size() == 4

    def test_tokens_in_id_order(self):
        a, b = terminal(5, left=100), terminal(2)
        root = parent_of(a, b)
        assert [t.id for t in root.tokens()] == [2, 5]

    def test_find_all(self):
        a, b = terminal(0), terminal(1, left=100)
        root = parent_of(parent_of(a, symbol="M"), parent_of(b, symbol="M"),
                         symbol="R")
        assert len(list(root.find_all("M"))) == 2


class TestConflicts:
    def test_disjoint_no_conflict(self):
        a, b = terminal(0), terminal(1, left=100)
        assert not parent_of(a).conflicts_with(parent_of(b))

    def test_shared_token_conflicts(self):
        shared = terminal(0)
        first = parent_of(shared, symbol="A")
        second = Instance(symbol="B", bbox=shared.bbox, children=(shared,))
        shared.parents.append(second)
        assert first.conflicts_with(second)
        assert second.conflicts_with(first)

    def test_ancestry_is_not_conflict(self):
        a = terminal(0)
        mid = parent_of(a, symbol="M")
        root = parent_of(mid, symbol="R")
        assert not root.conflicts_with(mid)
        assert not mid.conflicts_with(root)

    def test_no_conflict_with_self(self):
        instance = parent_of(terminal(0))
        assert not instance.conflicts_with(instance)


class TestPresentation:
    def test_pretty_is_indented_tree(self):
        root = parent_of(terminal(0), symbol="CP")
        rendered = root.pretty()
        lines = rendered.splitlines()
        assert lines[0] == "CP"
        assert lines[1].startswith("  ")

    def test_repr_shows_death(self):
        instance = parent_of(terminal(0))
        instance.alive = False
        assert "DEAD" in repr(instance)
