"""Smoke tests: every example script runs cleanly.

Examples are documentation; these tests keep them from rotting.  Each is
executed in a subprocess (as a user would run it) and must exit 0 with
the output landmarks its docstring promises.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "[Author;" in output
        assert "parse tree" in output

    def test_airfare_form(self):
        output = run_example("airfare_form.py")
        assert "composite date conditions: 2" in output
        assert "conflict" in output.lower()

    def test_custom_grammar(self):
        output = run_example("custom_grammar.py")
        assert "[children; {contains}; text]" in output
        assert "untouched" in output

    def test_survey_vocabulary(self):
        output = run_example("survey_vocabulary.py")
        assert "Figure 4(a)" in output
        assert "Figure 4(b)" in output
        assert "sel-left" in output

    def test_batch_extraction_quick(self):
        output = run_example("batch_extraction.py", "--quick")
        assert "Figure 15(a)" in output
        assert "baseline" in output

    def test_end_to_end_query(self):
        output = run_example("end_to_end_query.py")
        assert "MATCH" in output
        assert "MISMATCH" not in output

    def test_mediator_demo(self):
        output = run_example("mediator_demo.py")
        assert "onboarded" in output
        assert "capable sources" in output
        assert "merged answer" in output

    def test_navigation_menus(self):
        output = run_example("navigation_menus.py")
        assert "sections recovered exactly: 4/4" in output


class TestExampleHygiene:
    @pytest.mark.parametrize(
        "script", sorted(p.name for p in EXAMPLES.glob("*.py"))
    )
    def test_has_docstring_and_main(self, script):
        source = (EXAMPLES / script).read_text(encoding="utf-8")
        assert source.lstrip().startswith(("#!", '"""'))
        assert 'if __name__ == "__main__":' in source
        assert "Run with::" in source
