"""Combining partial parses into the final semantic model.

Since each maximal parse tree covers a different part of the form, taking
the union of their extracted conditions enhances coverage (the paper's
aa.com example in Figure 14: three partial trees whose union spans the whole
interface).  The merger also produces the error report a downstream client
needs:

* **conflict** -- the same token is used by different conditions (the
  paper's example: one tree attaches the number select to "passengers", a
  competing tree to "adults");
* **missing element** -- a token covered by no (informative) parse tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.grammar.instance import Instance
from repro.parser.parser import ParseResult
from repro.semantics.condition import Condition, SemanticModel
from repro.tokens.model import Token

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.guard import ResourceGuard


@dataclass(frozen=True)
class ExtractedCondition:
    """A condition plus the tokens its parse subtree covered."""

    condition: Condition
    coverage: frozenset[int]
    #: uid of the condition-bearing parse node.  Maximal trees form a DAG
    #: and may share CP nodes; sharing is composition, not conflict.
    node_uid: int


@dataclass
class MergeReport:
    """Detailed merger output, wrapped into a :class:`SemanticModel`."""

    model: SemanticModel
    extracted: list[ExtractedCondition] = field(default_factory=list)
    conflict_tokens: list[Token] = field(default_factory=list)
    missing_tokens: list[Token] = field(default_factory=list)
    #: Text tokens the parse interpreted only as noise (``Note``): covered
    #: by some tree but claimed by no condition.  Together with
    #: ``missing_tokens`` these are the candidates for the textual-
    #: similarity recovery of paper Section 7.
    unclaimed_text_tokens: list[Token] = field(default_factory=list)

    def counters(self) -> dict[str, int]:
        """The merge outcome as flat counters (trace spans, metrics).

        ``conflicts``/``missing``/``unclaimed_texts`` are exactly the error
        report the paper's best-effort contract promises, so they are
        first-class observability signals, not debug trivia.
        """
        return {
            "conditions": len(self.model.conditions),
            "extracted_nodes": len(self.extracted),
            "conflicts": len(self.conflict_tokens),
            "missing": len(self.missing_tokens),
            "unclaimed_texts": len(self.unclaimed_text_tokens),
        }


class Merger:
    """Union conditions across parse trees; report conflicts and misses."""

    #: CP instances carry their condition under this payload key.
    CONDITION_KEY = "condition"

    def merge(
        self, result: ParseResult, guard: ResourceGuard | None = None
    ) -> MergeReport:
        """Merge *result*'s maximal trees into one semantic model.

        The merge is bounded by the (already budgeted) instance count, so
        the *guard* is consulted once on entry: a raise-mode guard whose
        deadline already passed aborts before any merge work; a
        degrade-mode guard merely records the breach -- merging the trees
        we have is precisely the best-effort answer.
        """
        if guard is not None:
            guard.over_deadline("merge")
        extracted = self._collect_conditions(result.trees)
        conditions = self._dedupe([entry.condition for entry in extracted])
        conflict_tokens = self._conflicts(extracted, result.tokens)
        missing_tokens = self._missing(result, extracted)
        unclaimed = self._unclaimed_texts(result, extracted, missing_tokens)
        model = SemanticModel(
            conditions=conditions,
            conflicts=[self._describe_token(token) for token in conflict_tokens],
            missing=[self._describe_token(token) for token in missing_tokens],
        )
        return MergeReport(
            model=model,
            extracted=extracted,
            conflict_tokens=conflict_tokens,
            missing_tokens=missing_tokens,
            unclaimed_text_tokens=unclaimed,
        )

    # -- condition collection ----------------------------------------------------

    def _collect_conditions(self, trees: list[Instance]) -> list[ExtractedCondition]:
        """Conditions of the outermost CP nodes of every maximal tree.

        Only outermost condition-bearing nodes count: a ``CP`` nested in
        another ``CP``'s subtree would double-report its tokens.
        """
        extracted: list[ExtractedCondition] = []
        seen_nodes: set[int] = set()
        for tree in trees:
            stack = [tree]
            while stack:
                node = stack.pop()
                condition = node.payload.get(self.CONDITION_KEY)
                if condition is not None:
                    if node.uid not in seen_nodes:
                        seen_nodes.add(node.uid)
                        extracted.append(
                            ExtractedCondition(
                                condition=condition,
                                coverage=node.coverage,
                                node_uid=node.uid,
                            )
                        )
                    continue  # do not descend into a reported condition
                stack.extend(node.children)
        # Reading order keeps output deterministic.
        extracted.sort(key=lambda entry: min(entry.coverage))
        return extracted

    @staticmethod
    def _dedupe(conditions: list[Condition]) -> list[Condition]:
        """Drop exact duplicates (overlapping trees reuse CP instances)."""
        seen: set[Condition] = set()
        unique: list[Condition] = []
        for condition in conditions:
            if condition not in seen:
                seen.add(condition)
                unique.append(condition)
        return unique

    # -- error reporting -----------------------------------------------------------

    @staticmethod
    def _conflicts(
        extracted: list[ExtractedCondition], tokens: list[Token]
    ) -> list[Token]:
        """Tokens claimed by two different conditions."""
        claimed: dict[int, set[int]] = {}
        for entry in extracted:
            for token_id in entry.coverage:
                claimed.setdefault(token_id, set()).add(entry.node_uid)
        by_id = {token.id: token for token in tokens}
        return [
            by_id[token_id]
            for token_id, claimers in sorted(claimed.items())
            if len(claimers) > 1 and token_id in by_id
        ]

    @staticmethod
    def _missing(
        result: ParseResult, extracted: list[ExtractedCondition]
    ) -> list[Token]:
        """Input-capable tokens that no informative tree covers.

        A tree is *informative* when it contains a condition or spans more
        than one token; a stray single-text "tree" does not make its token
        understood.
        """
        informative: set[int] = set()
        for tree in result.trees:
            has_condition = any(
                node.payload.get(Merger.CONDITION_KEY) is not None
                for node in tree.descendants()
            )
            if has_condition or len(tree.coverage) > 1:
                informative |= tree.coverage
        return [
            token
            for token in result.tokens
            if token.id not in informative and not token.is_decoration
        ]

    @staticmethod
    def _unclaimed_texts(
        result: ParseResult,
        extracted: list[ExtractedCondition],
        missing_tokens: list[Token],
    ) -> list[Token]:
        """Text tokens interpreted only as noise (no condition claims them)."""
        claimed: set[int] = set()
        for entry in extracted:
            claimed |= entry.coverage
        missing_ids = {token.id for token in missing_tokens}
        return [
            token
            for token in result.tokens
            if token.terminal == "text"
            and token.id not in claimed
            and token.id not in missing_ids
        ]

    @staticmethod
    def _describe_token(token: Token) -> str:
        if token.terminal == "text":
            return f"text {token.sval!r}"
        name = token.name
        return f"{token.terminal}" + (f" {name!r}" if name else "")


def merge_parse_result(result: ParseResult) -> SemanticModel:
    """Convenience wrapper returning just the semantic model."""
    return Merger().merge(result).model
