"""Merger: parse trees → semantic model (paper Section 3.4, back end).

The parser emits multiple partial parse trees; the merger unions their
extracted conditions into one semantic model and reports extraction errors:
*conflicts* (a token claimed by more than one condition) and *missing
elements* (tokens no informative parse tree covers).
"""

from repro.merger.merger import Merger, merge_parse_result

__all__ = ["Merger", "merge_parse_result"]
