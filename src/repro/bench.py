"""Parse-stage micro-benchmark and profiler (``repro bench``).

The pytest benchmarks under ``benchmarks/`` regenerate the paper's
tables; this module is the *developer* entry point for the single number
that perf PRs optimize -- wall time of the parse stage over the standard
120-interface corpus -- plus the profile behind it:

* :func:`generate_token_sets` builds the deterministic synthetic corpus
  (the same generator and seed the pytest benchmarks use, so numbers are
  comparable across both harnesses);
* :func:`run_parse_bench` parses the corpus ``repeats`` times and keeps
  the best wall time (host noise on shared machines easily exceeds 30%,
  so a single-shot number is close to meaningless);
* :func:`profile_parse` runs the corpus under :mod:`cProfile` and
  renders the top cumulative-time entries, so future perf PRs start
  from data, not guesses.

``repro bench --profile`` (or ``REPRO_BENCH_PROFILE=1``) writes the
profile table to ``BENCH_profile.txt`` next to ``BENCH_parse.json``.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass, field

from repro.datasets.domains import DOMAINS
from repro.datasets.generator import GeneratorProfile, SourceGenerator
from repro.grammar.standard import build_standard_grammar
from repro.html.parser import parse_html
from repro.parser.parser import BestEffortParser, ParserConfig
from repro.tokens.model import Token
from repro.tokens.tokenizer import FormTokenizer

#: Environment variable that forces ``--profile`` on.
PROFILE_ENV = "REPRO_BENCH_PROFILE"

#: Entries shown in the cProfile table.
PROFILE_TOP = 20

#: The standard corpus parameters (the paper's batch: 120 interfaces of
#: average size ~22 tokens).  ``benchmarks/bench_parse_time.py`` uses the
#: same values, so ``repro bench`` and the pytest benchmarks measure the
#: identical workload.
BATCH_FORMS = 120
BATCH_SIZE_LOW = 14
BATCH_SIZE_HIGH = 32
BATCH_SEED = 61_000


def generate_token_sets(
    target_count: int,
    size_low: int = BATCH_SIZE_LOW,
    size_high: int = BATCH_SIZE_HIGH,
    base_seed: int = BATCH_SEED,
) -> list[list[Token]]:
    """Tokenized synthetic forms whose sizes fall within the band.

    Deterministic in ``base_seed``: the generator walks seeds upward and
    keeps forms whose token count lands inside ``[size_low, size_high]``.
    """
    profile = GeneratorProfile(
        min_conditions=3, max_conditions=7, rare_pattern_prob=0.0
    )
    token_sets: list[list[Token]] = []
    seed = base_seed
    domains = sorted(DOMAINS)
    while len(token_sets) < target_count:
        domain = DOMAINS[domains[seed % len(domains)]]
        source = SourceGenerator(domain, profile).generate(seed)
        seed += 1
        document = parse_html(source.html)
        tokenizer = FormTokenizer(document)
        forms = document.forms
        tokens = tokenizer.tokenize(forms[0] if forms else None)
        if size_low <= len(tokens) <= size_high:
            token_sets.append(tokens)
        if seed - base_seed > 40 * target_count:  # pragma: no cover
            break
    return token_sets


@dataclass
class BenchResult:
    """One ``repro bench`` measurement."""

    forms: int
    average_size: float
    kernel: str
    wall_seconds: float
    rounds: list[float] = field(default_factory=list)
    combos_examined: int = 0
    instances_created: int = 0

    def describe(self) -> str:
        per_form = 1000.0 * self.wall_seconds / max(1, self.forms)
        rounds = ", ".join(f"{wall:.3f}" for wall in self.rounds)
        return (
            f"parsed {self.forms} interfaces (avg {self.average_size:.1f} "
            f"tokens) with the {self.kernel} kernel\n"
            f"best wall time: {self.wall_seconds:.3f} s "
            f"({per_form:.1f} ms/interface) over {len(self.rounds)} "
            f"round(s): [{rounds}]\n"
            f"combos examined: {self.combos_examined}, instances created: "
            f"{self.instances_created}"
        )


def run_parse_bench(
    token_sets: list[list[Token]],
    kernel: str = "auto",
    repeats: int = 3,
) -> BenchResult:
    """Parse the corpus ``repeats`` times; keep the best wall time.

    The counters are identical across rounds (parsing is deterministic),
    so only the final round's are kept.
    """
    parser = BestEffortParser(
        build_standard_grammar(), ParserConfig(kernel=kernel)
    )
    rounds: list[float] = []
    combos = instances = 0
    for _ in range(max(1, repeats)):
        combos = instances = 0
        started = time.perf_counter()
        for tokens in token_sets:
            stats = parser.parse(tokens).stats
            combos += stats.combos_examined
            instances += stats.instances_created
        rounds.append(time.perf_counter() - started)
    average_size = (
        sum(len(tokens) for tokens in token_sets) / len(token_sets)
        if token_sets
        else 0.0
    )
    return BenchResult(
        forms=len(token_sets),
        average_size=average_size,
        kernel=parser.kernel,
        wall_seconds=min(rounds),
        rounds=rounds,
        combos_examined=combos,
        instances_created=instances,
    )


def profile_parse(
    token_sets: list[list[Token]],
    kernel: str = "auto",
    top: int = PROFILE_TOP,
) -> str:
    """Render the parse stage's cProfile top-``top`` cumulative table."""
    parser = BestEffortParser(
        build_standard_grammar(), ParserConfig(kernel=kernel)
    )
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        for tokens in token_sets:
            parser.parse(tokens)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    header = (
        f"# repro bench profile: {len(token_sets)} interfaces, "
        f"{parser.kernel} kernel, top {top} by cumulative time\n"
    )
    return header + buffer.getvalue()
