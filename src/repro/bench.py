"""Parse-stage micro-benchmark and profiler (``repro bench``).

The pytest benchmarks under ``benchmarks/`` regenerate the paper's
tables; this module is the *developer* entry point for the single number
that perf PRs optimize -- wall time of the parse stage over the standard
120-interface corpus -- plus the profile behind it:

* :func:`generate_token_sets` builds the deterministic synthetic corpus
  (the same generator and seed the pytest benchmarks use, so numbers are
  comparable across both harnesses);
* :func:`run_parse_bench` parses the corpus ``repeats`` times and keeps
  the best wall time (host noise on shared machines easily exceeds 30%,
  so a single-shot number is close to meaningless);
* :func:`compose_soup` / :func:`run_scale_sweep` stack synthetic forms
  into wild-web-scale token soups (~4x/16x the per-form token count) and
  measure the kernel x compilation matrix per pool tier -- where both
  the vector kernel's margin and the compiled core pay most;
* :func:`profile_parse` runs the corpus under :mod:`cProfile` and
  renders the top cumulative-time entries, so future perf PRs start
  from data, not guesses.

``repro bench --profile`` (or ``REPRO_BENCH_PROFILE=1``) writes the
profile table to ``BENCH_profile.txt`` next to ``BENCH_parse.json``;
``repro bench --scale`` runs the pool-size sweep.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass, field
from types import ModuleType

from repro.datasets.domains import DOMAINS
from repro.datasets.generator import GeneratorProfile, SourceGenerator
from repro.grammar.standard import build_standard_grammar
from repro.html.parser import parse_html
from repro.parser.parser import (
    BestEffortParser,
    ParserConfig,
    load_interpreted_core,
    use_core,
)
from repro.parser import core as parser_core
from repro.parser.spatial_index import numpy_available
from repro.tokens.model import Token
from repro.tokens.tokenizer import FormTokenizer

#: Environment variable that forces ``--profile`` on.
PROFILE_ENV = "REPRO_BENCH_PROFILE"

#: Entries shown in the cProfile table.
PROFILE_TOP = 20

#: The standard corpus parameters (the paper's batch: 120 interfaces of
#: average size ~22 tokens).  ``benchmarks/bench_parse_time.py`` uses the
#: same values, so ``repro bench`` and the pytest benchmarks measure the
#: identical workload.
BATCH_FORMS = 120
BATCH_SIZE_LOW = 14
BATCH_SIZE_HIGH = 32
BATCH_SEED = 61_000


def generate_token_sets(
    target_count: int,
    size_low: int = BATCH_SIZE_LOW,
    size_high: int = BATCH_SIZE_HIGH,
    base_seed: int = BATCH_SEED,
) -> list[list[Token]]:
    """Tokenized synthetic forms whose sizes fall within the band.

    Deterministic in ``base_seed``: the generator walks seeds upward and
    keeps forms whose token count lands inside ``[size_low, size_high]``.
    """
    profile = GeneratorProfile(
        min_conditions=3, max_conditions=7, rare_pattern_prob=0.0
    )
    token_sets: list[list[Token]] = []
    seed = base_seed
    domains = sorted(DOMAINS)
    while len(token_sets) < target_count:
        domain = DOMAINS[domains[seed % len(domains)]]
        source = SourceGenerator(domain, profile).generate(seed)
        seed += 1
        document = parse_html(source.html)
        tokenizer = FormTokenizer(document)
        forms = document.forms
        tokens = tokenizer.tokenize(forms[0] if forms else None)
        if size_low <= len(tokens) <= size_high:
            token_sets.append(tokens)
        if seed - base_seed > 40 * target_count:  # pragma: no cover
            break
    return token_sets


@dataclass
class BenchResult:
    """One ``repro bench`` measurement."""

    forms: int
    average_size: float
    kernel: str
    wall_seconds: float
    rounds: list[float] = field(default_factory=list)
    combos_examined: int = 0
    instances_created: int = 0

    def describe(self) -> str:
        per_form = 1000.0 * self.wall_seconds / max(1, self.forms)
        rounds = ", ".join(f"{wall:.3f}" for wall in self.rounds)
        return (
            f"parsed {self.forms} interfaces (avg {self.average_size:.1f} "
            f"tokens) with the {self.kernel} kernel\n"
            f"best wall time: {self.wall_seconds:.3f} s "
            f"({per_form:.1f} ms/interface) over {len(self.rounds)} "
            f"round(s): [{rounds}]\n"
            f"combos examined: {self.combos_examined}, instances created: "
            f"{self.instances_created}"
        )


def run_parse_bench(
    token_sets: list[list[Token]],
    kernel: str = "auto",
    repeats: int = 3,
) -> BenchResult:
    """Parse the corpus ``repeats`` times; keep the best wall time.

    The counters are identical across rounds (parsing is deterministic),
    so only the final round's are kept.
    """
    parser = BestEffortParser(
        build_standard_grammar(), ParserConfig(kernel=kernel)
    )
    rounds: list[float] = []
    combos = instances = 0
    for _ in range(max(1, repeats)):
        combos = instances = 0
        started = time.perf_counter()
        for tokens in token_sets:
            stats = parser.parse(tokens).stats
            combos += stats.combos_examined
            instances += stats.instances_created
        rounds.append(time.perf_counter() - started)
    average_size = (
        sum(len(tokens) for tokens in token_sets) / len(token_sets)
        if token_sets
        else 0.0
    )
    return BenchResult(
        forms=len(token_sets),
        average_size=average_size,
        kernel=parser.kernel,
        wall_seconds=min(rounds),
        rounds=rounds,
        combos_examined=combos,
        instances_created=instances,
    )


#: Pool-size tiers of the scaling sweep: (name, forms stacked per soup,
#: soup cap).  ``small`` is the per-form baseline; ``x4``/``x16`` stack
#: that many forms into one token soup, approximating wild-web pages
#: whose pools are far larger than any single synthetic form.  The soup
#: caps keep per-tier wall time comparable: parse cost grows
#: quadratically with pool size, so a tier needs fewer soups, not more,
#: to produce a stable number.
SCALE_TIERS: tuple[tuple[str, int, int | None], ...] = (
    ("small", 1, None),
    ("x4", 4, 2),
    ("x16", 16, 1),
)

#: Vertical gap between stacked forms in a soup -- enough that the
#: spatial relations never associate tokens across form boundaries by
#: accident, small enough that band queries still see one page.
SOUP_GAP = 24.0


def compose_soup(token_sets: list[list[Token]], gap: float = SOUP_GAP) -> list[Token]:
    """Stack *token_sets* vertically into one wild-web-scale token soup.

    Forms are laid out top to bottom with *gap* pixels between them and
    token ids renumbered into one dense sequence -- exactly what a long
    real-world page (or a multi-form portal) looks like to the parser.
    Soups past the 4-form tier naturally exceed 64 tokens, so the
    vector kernel's masked preference enforcement bows out and the
    per-token winner index takes over, matching what actually happens
    on large wild pages.
    """
    soup: list[Token] = []
    offset = 0.0
    next_id = 0
    for tokens in token_sets:
        if not tokens:
            continue
        top = min(token.bbox.top for token in tokens)
        bottom = max(token.bbox.bottom for token in tokens)
        dy = offset - top
        for token in tokens:
            soup.append(
                Token(
                    id=next_id,
                    terminal=token.terminal,
                    bbox=token.bbox.translate(0.0, dy),
                    attrs=token.attrs,
                )
            )
            next_id += 1
        offset += (bottom - top) + gap
    return soup


def scale_tier_sets(
    token_sets: list[list[Token]],
    tiers: tuple[tuple[str, int, int | None], ...] = SCALE_TIERS,
) -> dict[str, list[list[Token]]]:
    """Group the corpus into per-tier workloads of composed soups.

    Each tier consumes the *same* underlying forms (consecutive groups
    of ``factor``, capped at ``max_soups`` groups), so tiers differ
    only in how the tokens are pooled, not in what they contain.
    """
    workloads: dict[str, list[list[Token]]] = {}
    for name, factor, max_soups in tiers:
        if factor <= 1:
            workloads[name] = list(
                token_sets if max_soups is None else token_sets[:max_soups]
            )
            continue
        soups: list[list[Token]] = []
        for start in range(0, len(token_sets) - factor + 1, factor):
            if max_soups is not None and len(soups) >= max_soups:
                break
            soups.append(compose_soup(token_sets[start:start + factor]))
        workloads[name] = soups
    return workloads


def core_variants() -> dict[str, ModuleType]:
    """The fix-point core builds importable in this process.

    ``{"interpreted": module}`` on a pure-Python install; adds
    ``"compiled"`` when the mypyc extension is what
    :mod:`repro.parser.core` resolved to (the interpreted twin is then
    loaded from source alongside it, so both can be measured in one
    process).
    """
    if parser_core.is_compiled():
        return {
            "compiled": parser_core,
            "interpreted": load_interpreted_core(),
        }
    return {"interpreted": parser_core}


@dataclass
class ScaleCell:
    """One (tier, kernel, core) measurement of the scaling sweep."""

    tier: str
    kernel: str
    core: str
    wall_seconds: float
    rounds: list[float] = field(default_factory=list)
    combos_examined: int = 0
    instances_created: int = 0


@dataclass
class ScaleSweepResult:
    """The kernel x compilation matrix over the pool-size tiers."""

    cells: list[ScaleCell]
    #: Per-tier workload shape: ``{tier: (soups, avg_tokens)}``.
    tiers: dict[str, tuple[int, float]]
    compiled_available: bool

    def cell(self, tier: str, kernel: str, core: str) -> ScaleCell | None:
        for cell in self.cells:
            if (cell.tier, cell.kernel, cell.core) == (tier, kernel, core):
                return cell
        return None

    def compiled_speedup(self, tier: str, kernel: str) -> float | None:
        """Best-of-N interpreted/compiled wall ratio for one cell pair."""
        compiled = self.cell(tier, kernel, "compiled")
        interpreted = self.cell(tier, kernel, "interpreted")
        if compiled is None or interpreted is None:
            return None
        return interpreted.wall_seconds / max(compiled.wall_seconds, 1e-9)

    def describe(self) -> str:
        lines = ["pool-size scaling sweep (best-of-N wall seconds):"]
        for tier, (soups, avg_tokens) in self.tiers.items():
            lines.append(
                f"  {tier}: {soups} soup(s), avg {avg_tokens:.1f} tokens"
            )
            for cell in self.cells:
                if cell.tier != tier:
                    continue
                lines.append(
                    f"    {cell.kernel}/{cell.core}: "
                    f"{cell.wall_seconds:.3f} s "
                    f"({cell.combos_examined} combos)"
                )
            if self.compiled_available:
                for kernel in ("vector", "scalar"):
                    speedup = self.compiled_speedup(tier, kernel)
                    if speedup is not None:
                        lines.append(
                            f"    {kernel} compiled speedup: {speedup:.2f}x"
                        )
        if not self.compiled_available:
            lines.append(
                "  compiled core not importable here -- interpreted "
                "cells only (build with REPRO_COMPILE=1 for the "
                "compiled legs)"
            )
        return "\n".join(lines)


def run_scale_sweep(
    token_sets: list[list[Token]],
    repeats: int = 3,
    tiers: tuple[tuple[str, int, int | None], ...] = SCALE_TIERS,
) -> ScaleSweepResult:
    """Measure the kernel x compilation matrix per pool-size tier.

    Every cell parses its tier's identical workload ``repeats`` times
    and keeps the best wall time (the PR 6 methodology).  Counters are
    cross-checked across cells of a tier: kernels and core builds must
    agree on ``combos_examined``/``instances_created`` -- the sweep
    refuses to report a "speedup" between cells that did different work.
    """
    workloads = scale_tier_sets(token_sets, tiers)
    kernels = ["vector", "scalar"] if numpy_available() else ["scalar"]
    variants = core_variants()
    grammar = build_standard_grammar()
    cells: list[ScaleCell] = []
    tier_shapes: dict[str, tuple[int, float]] = {}
    for tier, soups in workloads.items():
        avg_tokens = (
            sum(len(soup) for soup in soups) / len(soups) if soups else 0.0
        )
        tier_shapes[tier] = (len(soups), avg_tokens)
        for kernel in kernels:
            for core_name, module in variants.items():
                previous = use_core(module)
                try:
                    parser = BestEffortParser(
                        grammar, ParserConfig(kernel=kernel)
                    )
                finally:
                    use_core(previous)
                rounds: list[float] = []
                combos = instances = 0
                for _ in range(max(1, repeats)):
                    combos = instances = 0
                    started = time.perf_counter()
                    for soup in soups:
                        stats = parser.parse(soup).stats
                        combos += stats.combos_examined
                        instances += stats.instances_created
                    rounds.append(time.perf_counter() - started)
                cells.append(
                    ScaleCell(
                        tier=tier,
                        kernel=kernel,
                        core=core_name,
                        wall_seconds=min(rounds),
                        rounds=rounds,
                        combos_examined=combos,
                        instances_created=instances,
                    )
                )
        tier_cells = [cell for cell in cells if cell.tier == tier]
        reference = tier_cells[0]
        for cell in tier_cells[1:]:
            if (
                cell.combos_examined != reference.combos_examined
                or cell.instances_created != reference.instances_created
            ):
                raise AssertionError(
                    f"scale sweep cells diverged on tier {tier!r}: "
                    f"{cell.kernel}/{cell.core} examined "
                    f"{cell.combos_examined} combos vs "
                    f"{reference.kernel}/{reference.core}'s "
                    f"{reference.combos_examined}"
                )
    return ScaleSweepResult(
        cells=cells,
        tiers=tier_shapes,
        compiled_available="compiled" in variants,
    )


def profile_parse(
    token_sets: list[list[Token]],
    kernel: str = "auto",
    top: int = PROFILE_TOP,
) -> str:
    """Render the parse stage's cProfile top-``top`` cumulative table."""
    parser = BestEffortParser(
        build_standard_grammar(), ParserConfig(kernel=kernel)
    )
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        for tokens in token_sets:
            parser.parse(tokens)
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    header = (
        f"# repro bench profile: {len(token_sets)} interfaces, "
        f"{parser.kernel} kernel, top {top} by cumulative time\n"
    )
    return header + buffer.getvalue()
