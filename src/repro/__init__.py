"""repro: best-effort parsing of Web query interfaces with a hidden syntax.

A from-scratch reproduction of Zhang, He & Chang, "Understanding Web Query
Interfaces: Best-Effort Parsing with Hidden Syntax" (SIGMOD 2004): the 2P
grammar, the best-effort parser, the merger, and every substrate the
pipeline needs (HTML parsing, layout, tokenization), plus synthetic
datasets and the evaluation harness that regenerate the paper's
experiments.

Quickstart::

    from repro import FormExtractor

    model = FormExtractor().extract(html_of_a_query_form)
    for condition in model:
        print(condition)   # e.g. [Author; {contains}; text]
"""

from repro.batch import (
    BatchExtractor,
    BatchJournal,
    BatchRecord,
    BatchReport,
    BatchStream,
    ExtractionTimeout,
)
from repro.extractor import (
    ExtractionResult,
    FormExtractor,
    FormNotFoundError,
    extract_capabilities,
)
from repro.observability import (
    MetricsRegistry,
    Span,
    Trace,
    configure_logging,
    get_global_registry,
)
from repro.grammar import (
    GrammarBuilder,
    Instance,
    Preference,
    Production,
    TwoPGrammar,
    build_standard_grammar,
)
from repro.merger import Merger, merge_parse_result
from repro.resilience import (
    BudgetExceeded,
    DegradationReport,
    ResilienceConfig,
    ResourceGuard,
    ResourceLimits,
)
from repro.parser import (
    BestEffortParser,
    ExhaustiveParser,
    ParseResult,
    ParserConfig,
    ParseStats,
)
from repro.semantics import Condition, ConditionMatcher, Domain, SemanticModel
from repro.tokens import FormTokenizer, Token, tokenize_form, tokenize_html

__version__ = "1.0.0"

#: Static-analyzer names, resolved lazily (PEP 562) so importing the
#: package never pays for the analyzer unless it is actually used.
_ANALYSIS_EXPORTS = frozenset(
    {"AnalysisReport", "Diagnostic", "GrammarDiagnosticsError",
     "analyze_grammar"}
)

#: Serving-tier names, also lazy -- the HTTP service drags in asyncio
#: plumbing that library users never need.
_SERVER_EXPORTS = frozenset(
    {"ChaosConfig", "ChaosMonkey", "CircuitBreaker", "ExtractionServer",
     "ExtractionService", "FairnessGate", "FairnessLimited", "ServeResult",
     "ServerConfig", "ServiceSaturated", "ServiceUnavailable", "run_server"}
)


def __getattr__(name: str):
    if name in _ANALYSIS_EXPORTS:
        import repro.analysis

        return getattr(repro.analysis, name)
    if name in _SERVER_EXPORTS:
        import repro.server

        return getattr(repro.server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AnalysisReport",
    "BatchExtractor",
    "BatchJournal",
    "BatchRecord",
    "BatchReport",
    "BatchStream",
    "BestEffortParser",
    "BudgetExceeded",
    "ChaosConfig",
    "ChaosMonkey",
    "CircuitBreaker",
    "Condition",
    "ConditionMatcher",
    "DegradationReport",
    "Diagnostic",
    "Domain",
    "ExhaustiveParser",
    "ExtractionResult",
    "ExtractionServer",
    "ExtractionService",
    "ExtractionTimeout",
    "FairnessGate",
    "FairnessLimited",
    "FormExtractor",
    "FormNotFoundError",
    "FormTokenizer",
    "GrammarBuilder",
    "GrammarDiagnosticsError",
    "Instance",
    "Merger",
    "MetricsRegistry",
    "ParseResult",
    "ParserConfig",
    "ParseStats",
    "ResilienceConfig",
    "ResourceGuard",
    "ResourceLimits",
    "Preference",
    "Production",
    "SemanticModel",
    "ServeResult",
    "ServerConfig",
    "ServiceSaturated",
    "ServiceUnavailable",
    "Span",
    "Token",
    "Trace",
    "TwoPGrammar",
    "analyze_grammar",
    "build_standard_grammar",
    "configure_logging",
    "get_global_registry",
    "extract_capabilities",
    "merge_parse_result",
    "run_server",
    "tokenize_form",
    "tokenize_html",
    "__version__",
]
