"""The 2P grammar container: ``⟨Σ, N, s, Pd, Pf⟩`` (paper Definition 1)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grammar.preference import Preference
from repro.grammar.production import Production


class GrammarError(ValueError):
    """Raised when a grammar is structurally invalid."""


@dataclass
class TwoPGrammar:
    """A 2P grammar: terminals, nonterminals, start symbol, productions,
    preferences.

    The container validates referential integrity (every production symbol
    is declared; the start symbol is a nonterminal; preferences reference
    declared symbols) and offers the lookup methods the parser needs.
    """

    terminals: frozenset[str]
    nonterminals: frozenset[str]
    start: str
    productions: tuple[Production, ...]
    preferences: tuple[Preference, ...] = ()
    name: str = "2P-grammar"
    _by_head: dict[str, list[Production]] = field(
        init=False, repr=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        self.validate()
        by_head: dict[str, list[Production]] = {}
        for production in self.productions:
            by_head.setdefault(production.head, []).append(production)
        self._by_head = by_head

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`GrammarError` if broken."""
        overlap = self.terminals & self.nonterminals
        if overlap:
            raise GrammarError(f"symbols both terminal and nonterminal: {overlap}")
        alphabet = self.terminals | self.nonterminals
        if self.start not in self.nonterminals:
            raise GrammarError(f"start symbol {self.start!r} is not a nonterminal")
        for production in self.productions:
            if production.head not in self.nonterminals:
                raise GrammarError(
                    f"production {production.name}: head {production.head!r} "
                    "is not a declared nonterminal"
                )
            for component in production.components:
                if component not in alphabet:
                    raise GrammarError(
                        f"production {production.name}: component "
                        f"{component!r} is not declared"
                    )
        for preference in self.preferences:
            for symbol in (preference.winner_symbol, preference.loser_symbol):
                if symbol not in alphabet:
                    raise GrammarError(
                        f"preference {preference.name}: symbol {symbol!r} "
                        "is not declared"
                    )

    # -- lookups ----------------------------------------------------------------

    def productions_for(self, head: str) -> list[Production]:
        """Productions whose head is *head* (empty list for terminals)."""
        return self._by_head.get(head, [])

    def preferences_involving(self, symbol: str) -> list[Preference]:
        """Preferences where *symbol* is the winner or loser type."""
        return [
            preference
            for preference in self.preferences
            if symbol in (preference.winner_symbol, preference.loser_symbol)
        ]

    def component_heads(self, symbol: str) -> set[str]:
        """Heads of productions that use *symbol* as a component."""
        return {
            production.head
            for production in self.productions
            if symbol in production.components
        }

    # -- reporting -----------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Grammar size summary (the paper reports 82/39/16)."""
        return {
            "productions": len(self.productions),
            "nonterminals": len(self.nonterminals),
            "terminals": len(self.terminals),
            "preferences": len(self.preferences),
        }

    def describe(self) -> str:
        """Readable listing of productions and preferences."""
        lines = [f"grammar {self.name}: start={self.start}"]
        lines.append("productions:")
        lines.extend(f"  {production}" for production in self.productions)
        if self.preferences:
            lines.append("preferences:")
            lines.extend(f"  {preference}" for preference in self.preferences)
        return "\n".join(lines)
