"""The 2P grammar: productions *and* preferences (paper Section 4).

A 2P grammar is the five-tuple ``⟨Σ, N, s, Pd, Pf⟩`` of Definition 1:
terminals, nonterminals, a start symbol, production rules, and preference
rules.  Productions (Definition 2) are ``⟨H, M, C, F⟩`` -- head, component
multiset, spatial constraint, and constructor.  Preferences (Definition 3)
are ``⟨I, U, W⟩`` -- the pair of conflicting instance types, the conflicting
condition, and the winning criteria.

:mod:`repro.grammar.dsl` offers a declarative builder;
:mod:`repro.grammar.standard` holds the derived global grammar used in the
paper's experiments.
"""

from repro.grammar.cache import cached_schedule, cached_standard_grammar
from repro.grammar.grammar import GrammarError, TwoPGrammar
from repro.grammar.instance import Instance
from repro.grammar.preference import Preference
from repro.grammar.production import Production
from repro.grammar.dsl import GrammarBuilder
from repro.grammar.standard import build_standard_grammar

__all__ = [
    "GrammarBuilder",
    "GrammarError",
    "Instance",
    "Preference",
    "Production",
    "TwoPGrammar",
    "build_standard_grammar",
    "cached_schedule",
    "cached_standard_grammar",
]
