"""Parse instances: nodes of the (possibly partial) parse trees.

An *instance* is one application of a grammar symbol to a region of the
form: terminal instances wrap tokens; nonterminal instances are produced by
a production from component instances.  Every instance knows its bounding
box, the set of token ids it covers, its semantic payload (attribute
labels, operator lists, assembled conditions), its children, and -- for the
pruning machinery -- its live parents.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Iterator

from repro.layout.box import BBox
from repro.tokens.model import Token

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.grammar.production import Production

_instance_counter = itertools.count()


class Instance:
    """One node in a parse forest.

    Instances are identity-hashed and carry a serial ``uid`` so data
    structures are deterministic.  ``alive`` flips to ``False`` when a
    preference invalidates the instance (directly or by rollback).
    """

    __slots__ = (
        "uid",
        "iid",
        "symbol",
        "children",
        "_coverage",
        "coverage_mask",
        "bbox",
        "payload",
        "token",
        "production",
        "parents",
        "alive",
        "_descendant_uids",
        "_descendant_iid_mask",
    )

    def __init__(
        self,
        symbol: str,
        bbox: BBox,
        children: tuple["Instance", ...] = (),
        coverage: frozenset[int] | None = None,
        payload: dict[str, Any] | None = None,
        token: Token | None = None,
        production: "Production | None" = None,
        coverage_mask: int | None = None,
    ):
        self.uid: int = next(_instance_counter)
        # Dense per-parse intern id, assigned by the parse's
        # :class:`InternTable` at registration (-1 until then).  Within one
        # parse, iid order equals registration order equals uid order, so
        # the parser's bookkeeping can swap the global uid for the dense
        # iid without changing any ordering-dependent decision.
        self.iid: int = -1
        self.symbol = symbol
        self.children = children
        if coverage_mask is None:
            # Token ids are small per-form serials, so the coverage set
            # doubles as an int bitmask -- disjointness and conflict tests
            # become single machine-word (for typical forms) AND operations
            # instead of frozenset intersections.
            coverage_mask = 0
            if coverage is not None:
                for token_id in coverage:
                    coverage_mask |= 1 << token_id
            else:
                for child in children:
                    coverage_mask |= child.coverage_mask
        self.coverage_mask: int = coverage_mask
        # The frozenset view is decoded from the mask on first access:
        # most instances are temporary (built, pruned, never reported), so
        # eagerly materializing their coverage sets is wasted work on the
        # parser's hottest path.
        self._coverage: frozenset[int] | None = coverage
        self.bbox = bbox
        self.payload: dict[str, Any] = payload or {}
        self.token = token
        self.production = production
        self.parents: list["Instance"] = []
        self.alive = True
        self._descendant_uids: frozenset[int] | None = None
        self._descendant_iid_mask: int | None = None

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def for_token(cls, token: Token) -> "Instance":
        """Wrap *token* as a terminal instance."""
        return cls(
            symbol=token.terminal,
            bbox=token.bbox,
            coverage=frozenset({token.id}),
            payload=dict(token.attrs),
            token=token,
        )

    @property
    def is_terminal(self) -> bool:
        return self.token is not None

    @property
    def coverage(self) -> frozenset[int]:
        """Ids of the tokens this instance covers.

        Decoded lazily from :attr:`coverage_mask` (bit *i* set == token
        ``i`` covered) and cached; the mask is the authoritative
        representation.
        """
        coverage = self._coverage
        if coverage is None:
            mask = self.coverage_mask
            ids = []
            while mask:
                low = mask & -mask
                ids.append(low.bit_length() - 1)
                mask ^= low
            coverage = self._coverage = frozenset(ids)
        return coverage

    # -- tree structure -----------------------------------------------------------

    def descendants(self) -> Iterator["Instance"]:
        """Yield self and every node below it (pre-order)."""
        stack: list[Instance] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def descendant_uids(self) -> frozenset[int]:
        """Uids of this instance and every node below it (cached).

        Children are fixed at construction, so the set is computed once and
        memoized; subtrees shared across the parse DAG reuse their cache.
        """
        cached = self._descendant_uids
        if cached is not None:
            return cached
        # Resolve bottom-up without recursion: push nodes whose children
        # are not all cached yet, then combine.
        stack: list[Instance] = [self]
        while stack:
            node = stack[-1]
            if node._descendant_uids is not None:
                stack.pop()
                continue
            pending = [
                child for child in node.children
                if child._descendant_uids is None
            ]
            if pending:
                stack.extend(pending)
                continue
            uids = {node.uid}
            for child in node.children:
                uids.update(child._descendant_uids)  # type: ignore[arg-type]
            node._descendant_uids = frozenset(uids)
            stack.pop()
        return self._descendant_uids  # type: ignore[return-value]

    def descendant_iid_mask(self) -> int:
        """Bitmask of interned ids over this instance's subtree (cached).

        Bit ``i`` is set when the node with intern id *i* (see :attr:`iid`
        and :class:`InternTable`) occurs in the subtree rooted here, self
        included.  The interned counterpart of :meth:`descendant_uids`:
        dense ids make the set an arbitrary-precision int, so building it
        is one ``|=`` per child instead of a hash insert per node, and an
        ancestry test is a shift-and-mask instead of a set lookup.  Only
        meaningful once every node of the subtree has been interned
        (``iid >= 0``), which the parser guarantees -- components are
        always registered before any production combines them.
        """
        cached = self._descendant_iid_mask
        if cached is not None:
            return cached
        # Resolve bottom-up without recursion, mirroring descendant_uids.
        stack: list[Instance] = [self]
        while stack:
            node = stack[-1]
            if node._descendant_iid_mask is not None:
                stack.pop()
                continue
            pending = [
                child for child in node.children
                if child._descendant_iid_mask is None
            ]
            if pending:
                stack.extend(pending)
                continue
            mask = 1 << node.iid
            for child in node.children:
                child_mask = child._descendant_iid_mask
                assert child_mask is not None
                mask |= child_mask
            node._descendant_iid_mask = mask
            stack.pop()
        result = self._descendant_iid_mask
        assert result is not None
        return result

    def is_ancestor_of(self, other: "Instance") -> bool:
        """True when *other* occurs in this instance's subtree (strictly)."""
        if other is self:
            return False
        return other.uid in self.descendant_uids()

    def size(self) -> int:
        """Number of nodes in this subtree (paper counts both T and NT)."""
        return sum(1 for _ in self.descendants())

    def tokens(self) -> list[Token]:
        """Tokens at the leaves, in uid order."""
        return sorted(
            (node.token for node in self.descendants() if node.token is not None),
            key=lambda token: token.id,
        )

    def find_all(self, symbol: str) -> Iterator["Instance"]:
        """Yield descendants (including self) labelled *symbol*."""
        for node in self.descendants():
            if node.symbol == symbol:
                yield node

    # -- conflicts ----------------------------------------------------------------

    def conflicts_with(self, other: "Instance") -> bool:
        """True when the instances compete for a token.

        Two instances conflict when their coverages intersect and neither is
        part of the other's derivation (a list trivially "overlaps" its own
        sublist component; that is composition, not conflict).
        """
        if other is self:
            return False
        if not (self.coverage_mask & other.coverage_mask):
            return False
        mine = self._descendant_uids
        if mine is None:
            mine = self.descendant_uids()
        if other.uid in mine:
            return False
        theirs = other._descendant_uids
        if theirs is None:
            theirs = other.descendant_uids()
        return self.uid not in theirs

    # -- presentation --------------------------------------------------------------

    def pretty(self, indent: int = 0) -> str:
        """Multi-line tree rendering, useful in tests and examples."""
        pad = "  " * indent
        if self.token is not None:
            label = self.token.sval if self.token.terminal == "text" else (
                self.token.name or ""
            )
            own = f"{pad}{self.symbol} {label!r}".rstrip()
        else:
            own = f"{pad}{self.symbol}"
        lines = [own]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        status = "" if self.alive else " DEAD"
        return (
            f"<Instance #{self.uid} {self.symbol} "
            f"cov={sorted(self.coverage)}{status}>"
        )


class InternTable:
    """Dense per-parse instance interning.

    Every instance a parse registers gets the next dense id (``iid``),
    stored on the instance and usable as an index into :attr:`instances`.
    Dense ids are what let the parser core keep its bookkeeping in
    id-keyed arrays and bitmasks instead of object sets: intern order is
    registration order, so comparisons and watermarks over iids make the
    same decisions the global ``uid`` serial would, while staying compact
    (``iid`` ranges over ``[0, len(table))`` for one parse, however many
    parses ran before).

    One table serves exactly one parse; instances are never interned
    twice (re-registering is a bug the ``assert`` below catches in
    tests).
    """

    __slots__ = ("instances",)

    def __init__(self) -> None:
        self.instances: list[Instance] = []

    def __len__(self) -> int:
        return len(self.instances)

    def add(self, instance: Instance) -> int:
        """Intern *instance*, assigning and returning its dense id."""
        assert instance.iid < 0, "instance interned twice"
        iid = len(self.instances)
        instance.iid = iid
        self.instances.append(instance)
        return iid

    def get(self, iid: int) -> Instance:
        """The instance interned as *iid*."""
        return self.instances[iid]
