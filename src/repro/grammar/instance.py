"""Parse instances: nodes of the (possibly partial) parse trees.

An *instance* is one application of a grammar symbol to a region of the
form: terminal instances wrap tokens; nonterminal instances are produced by
a production from component instances.  Every instance knows its bounding
box, the set of token ids it covers, its semantic payload (attribute
labels, operator lists, assembled conditions), its children, and -- for the
pruning machinery -- its live parents.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Iterator

from repro.layout.box import BBox
from repro.tokens.model import Token

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.grammar.production import Production

_instance_counter = itertools.count()


class Instance:
    """One node in a parse forest.

    Instances are identity-hashed and carry a serial ``uid`` so data
    structures are deterministic.  ``alive`` flips to ``False`` when a
    preference invalidates the instance (directly or by rollback).
    """

    __slots__ = (
        "uid",
        "symbol",
        "children",
        "coverage",
        "bbox",
        "payload",
        "token",
        "production",
        "parents",
        "alive",
        "_descendant_uids",
    )

    def __init__(
        self,
        symbol: str,
        bbox: BBox,
        children: tuple["Instance", ...] = (),
        coverage: frozenset[int] | None = None,
        payload: dict[str, Any] | None = None,
        token: Token | None = None,
        production: "Production | None" = None,
    ):
        self.uid: int = next(_instance_counter)
        self.symbol = symbol
        self.children = children
        if coverage is None:
            coverage = frozenset().union(*(c.coverage for c in children)) if children else frozenset()
        self.coverage: frozenset[int] = coverage
        self.bbox = bbox
        self.payload: dict[str, Any] = payload or {}
        self.token = token
        self.production = production
        self.parents: list["Instance"] = []
        self.alive = True
        self._descendant_uids: frozenset[int] | None = None

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def for_token(cls, token: Token) -> "Instance":
        """Wrap *token* as a terminal instance."""
        return cls(
            symbol=token.terminal,
            bbox=token.bbox,
            coverage=frozenset({token.id}),
            payload=dict(token.attrs),
            token=token,
        )

    @property
    def is_terminal(self) -> bool:
        return self.token is not None

    # -- tree structure -----------------------------------------------------------

    def descendants(self) -> Iterator["Instance"]:
        """Yield self and every node below it (pre-order)."""
        stack: list[Instance] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def descendant_uids(self) -> frozenset[int]:
        """Uids of this instance and every node below it (cached).

        Children are fixed at construction, so the set is computed once and
        memoized; subtrees shared across the parse DAG reuse their cache.
        """
        cached = self._descendant_uids
        if cached is not None:
            return cached
        # Resolve bottom-up without recursion: push nodes whose children
        # are not all cached yet, then combine.
        stack: list[Instance] = [self]
        while stack:
            node = stack[-1]
            if node._descendant_uids is not None:
                stack.pop()
                continue
            pending = [
                child for child in node.children
                if child._descendant_uids is None
            ]
            if pending:
                stack.extend(pending)
                continue
            uids = {node.uid}
            for child in node.children:
                uids.update(child._descendant_uids)  # type: ignore[arg-type]
            node._descendant_uids = frozenset(uids)
            stack.pop()
        return self._descendant_uids  # type: ignore[return-value]

    def is_ancestor_of(self, other: "Instance") -> bool:
        """True when *other* occurs in this instance's subtree (strictly)."""
        if other is self:
            return False
        return other.uid in self.descendant_uids()

    def size(self) -> int:
        """Number of nodes in this subtree (paper counts both T and NT)."""
        return sum(1 for _ in self.descendants())

    def tokens(self) -> list[Token]:
        """Tokens at the leaves, in uid order."""
        return sorted(
            (node.token for node in self.descendants() if node.token is not None),
            key=lambda token: token.id,
        )

    def find_all(self, symbol: str) -> Iterator["Instance"]:
        """Yield descendants (including self) labelled *symbol*."""
        for node in self.descendants():
            if node.symbol == symbol:
                yield node

    # -- conflicts ----------------------------------------------------------------

    def conflicts_with(self, other: "Instance") -> bool:
        """True when the instances compete for a token.

        Two instances conflict when their coverages intersect and neither is
        part of the other's derivation (a list trivially "overlaps" its own
        sublist component; that is composition, not conflict).
        """
        if other is self:
            return False
        if not (self.coverage & other.coverage):
            return False
        return not (self.is_ancestor_of(other) or other.is_ancestor_of(self))

    # -- presentation --------------------------------------------------------------

    def pretty(self, indent: int = 0) -> str:
        """Multi-line tree rendering, useful in tests and examples."""
        pad = "  " * indent
        if self.token is not None:
            label = self.token.sval if self.token.terminal == "text" else (
                self.token.name or ""
            )
            own = f"{pad}{self.symbol} {label!r}".rstrip()
        else:
            own = f"{pad}{self.symbol}"
        lines = [own]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        status = "" if self.alive else " DEAD"
        return (
            f"<Instance #{self.uid} {self.symbol} "
            f"cov={sorted(self.coverage)}{status}>"
        )
