"""Keyed caches for grammar construction and schedule compilation.

Building the standard grammar allocates a few hundred closures and the
schedule compiler runs a graph analysis over it; neither depends on
anything but its inputs, so both are pure functions worth memoizing.  This
matters for throughput work: constructing one parser per form (as the
evaluation harness and the batch extractor's workers do) must not pay the
grammar/schedule build cost per form.

Two caches live here:

* :func:`cached_standard_grammar` -- memoizes
  :func:`repro.grammar.standard.build_standard_grammar` per
  :class:`~repro.spatial.relations.SpatialConfig` (a frozen, hashable
  dataclass).
* :func:`cached_schedule` -- memoizes
  :func:`repro.parser.schedule.build_schedule` per grammar *identity*.
  :class:`~repro.grammar.grammar.TwoPGrammar` is mutable (hence
  unhashable), so the cache keys on ``id()`` and holds the grammar
  weakly: entries die with their grammar, and a recycled ``id`` cannot
  resurface a stale schedule.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

from repro.grammar.grammar import TwoPGrammar
from repro.spatial.relations import DEFAULT_SPATIAL, SpatialConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parser.schedule import Schedule

_grammar_cache: dict[SpatialConfig, TwoPGrammar] = {}

#: grammar id -> (weakref to grammar, compiled schedule).  The weakref both
#: validates the entry (identity check) and triggers eviction on collection.
_schedule_cache: dict[int, tuple["weakref.ref[TwoPGrammar]", "Schedule"]] = {}


def cached_standard_grammar(
    spatial: SpatialConfig = DEFAULT_SPATIAL,
) -> TwoPGrammar:
    """The standard grammar for *spatial*, built at most once per config.

    Callers share the returned grammar object; the parser never mutates
    it, and sharing is what lets :func:`cached_schedule` hit.
    """
    grammar = _grammar_cache.get(spatial)
    if grammar is None:
        from repro.grammar.standard import build_standard_grammar

        grammar = build_standard_grammar(spatial)
        _grammar_cache[spatial] = grammar
    return grammar


def cached_schedule(grammar: TwoPGrammar) -> "Schedule":
    """The compiled 2P schedule for *grammar*, built at most once.

    Keyed on object identity: two structurally equal grammars built
    separately get separate schedules, which is fine -- the win is the
    common case of many parsers sharing one (cached) grammar.
    """
    # Imported lazily: repro.parser.schedule imports grammar modules, and a
    # module-level import here would close the cycle.
    from repro.parser.schedule import build_schedule

    key = id(grammar)
    entry = _schedule_cache.get(key)
    if entry is not None:
        ref, schedule = entry
        if ref() is grammar:
            return schedule
        del _schedule_cache[key]  # id was recycled by a dead grammar
    schedule = build_schedule(grammar)

    def _evict(_ref: "weakref.ref[TwoPGrammar]", _key: int = key) -> None:
        _schedule_cache.pop(_key, None)

    _schedule_cache[key] = (weakref.ref(grammar, _evict), schedule)
    return schedule


def cache_stats() -> dict[str, int]:
    """Sizes of the two caches (for tests and diagnostics)."""
    return {
        "grammars": len(_grammar_cache),
        "schedules": len(_schedule_cache),
    }


def clear_caches() -> None:
    """Empty both caches (test isolation hook)."""
    _grammar_cache.clear()
    _schedule_cache.clear()
