"""Preferences: ``⟨I, U, W⟩`` (paper Definition 3).

A preference resolves one kind of ambiguity between two instance types by
giving priority to one over the other:

* ``I = ⟨v1: winner_symbol, v2: loser_symbol⟩`` -- the conflicting types;
* ``U(v1, v2)`` -- the *conflicting condition*: when does this preference
  apply (beyond the framework-level requirement that the instances compete
  for at least one token);
* ``W(v1, v2)`` -- the *winning criteria*: when they hold, ``v1`` is
  arbitrated the winner and ``v2`` is invalidated.

Example (paper Example 4): when an ``RBU`` instance and an ``Attr`` instance
conflict on a text token, the ``RBU`` wins unconditionally; when two
``RBList`` instances conflict and one subsumes the other, the longer wins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.grammar.instance import Instance

#: Binary predicates over (winner-candidate, loser-candidate).
Predicate = Callable[[Instance, Instance], bool]


def always(_v1: Instance, _v2: Instance) -> bool:
    """The trivially-true condition/criterion."""
    return True


def subsumes(v1: Instance, v2: Instance) -> bool:
    """True when v1's token coverage strictly contains v2's."""
    return v1.coverage > v2.coverage


def covers_more(v1: Instance, v2: Instance) -> bool:
    """True when v1 covers strictly more tokens than v2."""
    return len(v1.coverage) > len(v2.coverage)


def tighter(v1: Instance, v2: Instance) -> bool:
    """True when v1's components sit closer together than v2's."""
    return _spread(v1) < _spread(v2)


def _spread(instance: Instance) -> float:
    children = instance.children
    if len(children) < 2:
        return 0.0
    total = 0.0
    for first, second in zip(children, children[1:]):
        total += first.bbox.gap(second.bbox)
    return total


@dataclass(frozen=True)
class Preference:
    """One preference rule of the 2P grammar."""

    winner_symbol: str
    loser_symbol: str
    condition: Predicate = always
    criteria: Predicate = always
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.winner_symbol}>{self.loser_symbol}"
            )

    def applies(self, winner: Instance, loser: Instance) -> bool:
        """True when *winner* should invalidate *loser* under this rule.

        The framework-level conflict requirement (shared token, neither an
        ancestor of the other) is checked here too, so callers can pass any
        candidate pair.
        """
        if winner.symbol != self.winner_symbol or loser.symbol != self.loser_symbol:
            return False
        if not winner.conflicts_with(loser):
            return False
        return self.condition(winner, loser) and self.criteria(winner, loser)

    def __str__(self) -> str:
        return f"{self.name}: prefer {self.winner_symbol} over {self.loser_symbol}"
