"""Declarative builder for 2P grammars.

The paper stresses that pattern specification should be *declarative*:
"patterns are simply declared by productions that encode their visual
characteristics" (Section 3.2).  :class:`GrammarBuilder` keeps grammar
definitions close to the paper's notation::

    g = GrammarBuilder(start="QI")
    g.terminals("text", "textbox", "radiobutton")
    g.production("RBU", ["radiobutton", "text"],
                 constraint=lambda rb, tx: left_of(rb.bbox, tx.bbox),
                 constructor=lambda rb, tx: {"label": tx.payload["sval"]})
    g.prefer("RBU", over="Attr")
    grammar = g.build()

Nonterminals are declared implicitly by appearing as production heads.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.grammar.grammar import GrammarError, TwoPGrammar
from repro.grammar.preference import Predicate, Preference, always
from repro.grammar.production import (
    Constraint,
    Constructor,
    Production,
    SpatialBound,
)


class GrammarBuilder:
    """Accumulates productions and preferences, then builds a grammar."""

    def __init__(self, start: str, name: str = "2P-grammar"):
        self._start = start
        self._name = name
        self._terminals: set[str] = set()
        self._productions: list[Production] = []
        self._preferences: list[Preference] = []

    # -- introspection ------------------------------------------------------------

    @property
    def start(self) -> str:
        """The declared start symbol."""
        return self._start

    @property
    def name(self) -> str:
        """The grammar name ``build()`` will stamp."""
        return self._name

    def declarations(
        self,
    ) -> tuple[frozenset[str], tuple[Production, ...], tuple[Preference, ...]]:
        """Snapshot the declarations accumulated so far.

        Returns ``(terminals, productions, preferences)`` without
        validating anything -- the static analyzer
        (:func:`repro.analysis.analyze_grammar`) lints open builders
        through this, so defects are reportable *before* ``build()``
        raises on them.
        """
        return (
            frozenset(self._terminals),
            tuple(self._productions),
            tuple(self._preferences),
        )

    # -- declarations -------------------------------------------------------------

    def terminals(self, *names: str) -> "GrammarBuilder":
        """Declare terminal symbols."""
        self._terminals.update(names)
        return self

    def production(
        self,
        head: str,
        components: Iterable[str],
        constraint: Constraint | None = None,
        constructor: Constructor | None = None,
        name: str = "",
        bounds: Iterable[SpatialBound] = (),
    ) -> "GrammarBuilder":
        """Declare one production ``head -> components``.

        ``bounds`` optionally declares conservative spatial envelopes
        between component positions (see :class:`Production`); the parser
        uses them to pre-filter candidate combinations.
        """
        kwargs: dict[str, Any] = {}
        if constraint is not None:
            kwargs["constraint"] = constraint
        if constructor is not None:
            kwargs["constructor"] = constructor
        self._productions.append(
            Production(
                head=head,
                components=tuple(components),
                name=name,
                bounds=tuple(bounds),
                **kwargs,
            )
        )
        return self

    def prefer(
        self,
        winner: str,
        over: str,
        when: Predicate = always,
        criteria: Predicate = always,
        name: str = "",
    ) -> "GrammarBuilder":
        """Declare a preference: *winner* beats *over* when the rule applies."""
        self._preferences.append(
            Preference(
                winner_symbol=winner,
                loser_symbol=over,
                condition=when,
                criteria=criteria,
                name=name,
            )
        )
        return self

    # -- building -------------------------------------------------------------------

    def build(self) -> TwoPGrammar:
        """Validate and return the finished :class:`TwoPGrammar`."""
        nonterminals = {production.head for production in self._productions}
        if not nonterminals:
            raise GrammarError("grammar declares no productions")
        return TwoPGrammar(
            terminals=frozenset(self._terminals),
            nonterminals=frozenset(nonterminals),
            start=self._start,
            productions=tuple(self._productions),
            preferences=tuple(self._preferences),
            name=self._name,
        )
