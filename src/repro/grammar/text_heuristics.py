"""Lexical cues used by the derived grammar's constraints.

The hidden syntax is visual, but a few constraints are lexical: a select
whose options read "contains / starts with / exact phrase" presents
*operators*, not values; a text "from" beside an input marks a *range
endpoint*; three adjacent selects listing months, days, and years form a
*date*.  These detectors are deliberately conservative -- they gate pattern
productions, and a false positive steals tokens from the right pattern.
"""

from __future__ import annotations

import re

from repro.tokens.model import SelectOption

#: Phrases that signal a query operator/modifier choice.
OPERATOR_KEYWORDS: tuple[str, ...] = (
    "contain",
    "exact",
    "start",
    "begin",
    "end with",
    "ends with",
    "equal",
    "match",
    "keyword",
    "all words",
    "any words",
    "all of the words",
    "any of the words",
    "phrase",
    "is exactly",
    "at least",
    "at most",
    "less than",
    "greater than",
    "before",
    "after",
    "between",
    "first name",
    "last name",
    "full name",
)

#: Texts that mark a range endpoint next to an input field.  A trailing
#: colon is deliberately NOT allowed: "From:" is how airfare forms label a
#: departure-city *attribute*, while a bare "from" marks a range endpoint.
_RANGE_MARK_RE = re.compile(
    r"^(from|to|and|min(imum)?|max(imum)?|low(est)?|high(est)?|between|"
    r"over|under|at least|at most|up to|starting|ending|-|–|—)$",
    re.IGNORECASE,
)

_MONTHS = (
    "january", "february", "march", "april", "may", "june", "july",
    "august", "september", "october", "november", "december",
)
_MONTH_ABBREVS = tuple(month[:3] for month in _MONTHS)

_YEAR_RE = re.compile(r"^(19|20)\d{2}$")
_TIME_RE = re.compile(r"^\d{1,2}(:\d{2})?\s*(am|pm)?$", re.IGNORECASE)


def clean_label(text: str) -> str:
    """Normalize a label for use as an attribute name.

    Drops decoration that forms attach to labels -- trailing colons,
    required-field asterisks, surrounding whitespace -- but preserves the
    label's own casing and wording.
    """
    cleaned = text.strip()
    previous = None
    while cleaned != previous:
        previous = cleaned
        cleaned = cleaned.strip("*").strip()
        while cleaned.endswith((":", "?")):
            cleaned = cleaned[:-1].strip()
    return cleaned


def is_attribute_like(text: str) -> bool:
    """True when *text* could plausibly name a queried attribute.

    Attribute labels are short noun phrases ("Author:", "Departure date").
    Full sentences (marketing blurbs, instructions) are rejected: they end
    with sentence punctuation or run too long.
    """
    cleaned = clean_label(text)
    if not cleaned or len(cleaned) > 45:
        return False
    if cleaned.endswith((".", "!")):
        return False
    if len(cleaned.split()) > 6:
        return False
    # Pure punctuation or a lone symbol cannot name an attribute.
    return any(ch.isalnum() for ch in cleaned)


def is_operator_text(text: str) -> bool:
    """True when *text* reads like an operator/modifier description."""
    lowered = text.lower()
    return any(keyword in lowered for keyword in OPERATOR_KEYWORDS)


def is_range_mark(text: str) -> bool:
    """True when *text* marks a range endpoint ("from", "to", "max"...)."""
    return _RANGE_MARK_RE.match(text.strip()) is not None


_ATTR_MARK_RE = re.compile(
    r"^(?P<attr>.+?)\s*[:\-]?\s+(?P<mark>from|between|min|minimum)\s*:?$",
    re.IGNORECASE,
)


def split_attr_mark(text: str) -> tuple[str, str] | None:
    """Split a combined "Price: from" label into (attribute, range mark).

    In flowing layouts the attribute label and the first range-endpoint
    mark render as one text run; this recovers both parts.  Returns
    ``None`` when *text* is not of that shape.
    """
    match = _ATTR_MARK_RE.match(text.strip())
    if match is None:
        return None
    attribute = clean_label(match.group("attr"))
    if not attribute or not is_attribute_like(attribute):
        return None
    return attribute, match.group("mark").lower()


def _labels(options: tuple[SelectOption, ...]) -> list[str]:
    return [option.label.strip() for option in options if option.label.strip()]


def is_operator_select(options: tuple[SelectOption, ...]) -> bool:
    """True when a select's options enumerate operators, not values.

    Requires at least half of the (non-placeholder) options to read like
    operators, with a minimum of two such options.
    """
    labels = _labels(options)
    if len(labels) < 2:
        return False
    operator_count = sum(1 for label in labels if is_operator_text(label))
    return operator_count >= 2 and operator_count * 2 >= len(labels)


def is_month_select(options: tuple[SelectOption, ...]) -> bool:
    """True when the options enumerate calendar months."""
    labels = [label.lower() for label in _labels(options)]
    if not 3 <= len(labels) <= 14:
        return False
    hits = sum(
        1
        for label in labels
        if label.startswith(_MONTH_ABBREVS) or label in _MONTHS
    )
    return hits >= max(3, len(labels) - 2)


def is_day_select(options: tuple[SelectOption, ...]) -> bool:
    """True when the options enumerate days of the month (1..31)."""
    labels = _labels(options)
    if not 20 <= len(labels) <= 33:
        return False
    numeric = [label for label in labels if label.isdigit()]
    if len(numeric) < len(labels) - 2:
        return False
    values = sorted(int(label) for label in numeric)
    return bool(values) and values[0] <= 2 and 28 <= values[-1] <= 31


def is_year_select(options: tuple[SelectOption, ...]) -> bool:
    """True when the options enumerate years (e.g. 1990..2010)."""
    labels = _labels(options)
    if not 2 <= len(labels) <= 120:
        return False
    hits = sum(1 for label in labels if _YEAR_RE.match(label))
    return hits >= max(2, len(labels) - 2)


def is_time_select(options: tuple[SelectOption, ...]) -> bool:
    """True when the options enumerate clock times."""
    labels = _labels(options)
    if len(labels) < 3:
        return False
    hits = sum(1 for label in labels if _TIME_RE.match(label))
    return hits >= max(3, len(labels) - 2)


def date_signature(options: tuple[SelectOption, ...]) -> str | None:
    """Classify a select as a date part: "month", "day", "year", or None."""
    if is_month_select(options):
        return "month"
    if is_day_select(options):
        return "day"
    if is_year_select(options):
        return "year"
    return None


def is_unit_text(text: str) -> bool:
    """True when *text* looks like a measurement unit after a field."""
    cleaned = text.strip().lower().strip(".")
    if not cleaned or len(cleaned) > 14:
        return False
    units = {
        "miles", "mile", "km", "kilometers", "$", "usd", "dollars",
        "years", "days", "pages", "mb", "kb", "gb", "%", "percent",
        "lbs", "kg", "nights", "people", "per page", "results",
    }
    return cleaned in units
