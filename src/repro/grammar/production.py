"""Productions: ``⟨H, M, C, F⟩`` (paper Definition 2).

A production rewrites a multiset of component symbols into a head symbol,
guarded by a *constraint* (a boolean expression over the component
instances, typically spatial) and finished by a *constructor* (a function
computing the new instance's semantic payload -- the paper's example is
computing the new ``TextOp``'s position from its components; here the
bounding box union is automatic and the constructor contributes semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.grammar.instance import Instance
from repro.layout.box import BBox

#: A constraint receives the component instances in declaration order.
Constraint = Callable[..., bool]

#: A constructor returns the payload dict of the new head instance.
Constructor = Callable[..., "dict[str, Any] | None"]


def _always(*_: Instance) -> bool:
    return True


def _empty_payload(*_: Instance) -> dict[str, Any]:
    return {}


@dataclass(frozen=True)
class Production:
    """One grammar rule.

    Attributes:
        head: The nonterminal being defined.
        components: Component symbols, in constraint-argument order.  The
            paper treats M as a multiset; fixing an order lets constraints
            and constructors take positional arguments, and repeated symbols
            are still allowed.
        constraint: Boolean test over the component instances.  The
            framework additionally enforces that components are pairwise
            distinct and cover disjoint tokens (a construct cannot use one
            token twice).
        constructor: Computes the payload of the new instance.  Returning
            ``None`` vetoes the construction (a semantic constraint).
        name: Identifier used in schedules, dedup keys, and debugging.
    """

    head: str
    components: tuple[str, ...]
    constraint: Constraint = _always
    constructor: Constructor = _empty_payload
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError(f"production {self.name or self.head} has no components")
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.head}<-{'+'.join(self.components)}"
            )

    def try_apply(self, components: tuple[Instance, ...]) -> Instance | None:
        """Instantiate the head from *components*, or ``None`` if rejected.

        Checks pairwise distinctness, coverage disjointness, and the
        declared constraint, then runs the constructor.
        """
        seen: set[int] = set()
        coverage: set[int] = set()
        for component in components:
            if component.uid in seen:
                return None
            seen.add(component.uid)
            if coverage & component.coverage:
                return None
            coverage |= component.coverage
        if not self.constraint(*components):
            return None
        payload = self.constructor(*components)
        if payload is None:
            return None
        bbox = _union_boxes(components)
        instance = Instance(
            symbol=self.head,
            bbox=bbox,
            children=components,
            coverage=frozenset(coverage),
            payload=payload,
            production=self,
        )
        for component in components:
            component.parents.append(instance)
        return instance

    def __str__(self) -> str:
        return f"{self.head} -> {' '.join(self.components)}"


def _union_boxes(instances: tuple[Instance, ...]) -> BBox:
    box = instances[0].bbox
    for instance in instances[1:]:
        box = box.union(instance.bbox)
    return box
