"""Productions: ``⟨H, M, C, F⟩`` (paper Definition 2).

A production rewrites a multiset of component symbols into a head symbol,
guarded by a *constraint* (a boolean expression over the component
instances, typically spatial) and finished by a *constructor* (a function
computing the new instance's semantic payload -- the paper's example is
computing the new ``TextOp``'s position from its components; here the
bounding box union is automatic and the constructor contributes semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TypeAlias

from repro.grammar.instance import Instance
from repro.layout.box import BBox

#: A constraint receives the component instances in declaration order.
Constraint = Callable[..., bool]

#: A constructor returns the payload dict of the new head instance.
Constructor = Callable[..., "dict[str, Any] | None"]

#: One axis of a spatial envelope:
#:
#: * ``None`` -- the axis is unconstrained;
#: * a float ``m`` -- the boxes' symmetric axis gap must be at most ``m``;
#: * a pair ``(lo, hi)`` -- the *signed displacement* of component ``j``
#:   relative to component ``i`` must fall in ``[lo, hi]`` (either end
#:   ``None`` for unbounded).  Horizontally the displacement is
#:   ``j.left - i.right``; vertically it is ``j.top - i.bottom`` -- so a
#:   pair encodes *ordering* ("j starts after i ends, within reach"),
#:   which symmetric gaps cannot.
AxisSpec: TypeAlias = "float | tuple[float | None, float | None] | None"

#: A declarative spatial envelope ``(i, j, h_spec, v_spec)`` over component
#: positions ``i < j``: for a combination to possibly satisfy the
#: production's constraint, components ``i`` and ``j`` must satisfy both
#: :data:`AxisSpec` tests.  Bounds are *conservative* -- they may admit
#: combinations the constraint later rejects, but must never exclude one
#: it would accept.
SpatialBound: TypeAlias = "tuple[int, int, AxisSpec, AxisSpec]"


def _always(*_: Instance) -> bool:
    return True


def _empty_payload(*_: Instance) -> dict[str, Any]:
    return {}


@dataclass(frozen=True)
class Production:
    """One grammar rule.

    Attributes:
        head: The nonterminal being defined.
        components: Component symbols, in constraint-argument order.  The
            paper treats M as a multiset; fixing an order lets constraints
            and constructors take positional arguments, and repeated symbols
            are still allowed.
        constraint: Boolean test over the component instances.  The
            framework additionally enforces that components are pairwise
            distinct and cover disjoint tokens (a construct cannot use one
            token twice).
        constructor: Computes the payload of the new instance.  Returning
            ``None`` vetoes the construction (a semantic constraint).
        name: Identifier used in schedules, dedup keys, and debugging.
        bounds: Optional declarative spatial envelopes (see
            :data:`SpatialBound`).  The parser uses them to pre-filter
            candidate pools before calling :meth:`try_apply`; an empty tuple
            means every combination must be tested.
    """

    head: str
    components: tuple[str, ...]
    constraint: Constraint = _always
    constructor: Constructor = _empty_payload
    name: str = field(default="")
    bounds: tuple[SpatialBound, ...] = ()
    #: ``bounds_by_target[j]`` lists the ``(i, h_spec, v_spec)`` checks
    #: whose later component is position ``j`` (precomputed for the
    #: parser's enumeration hot path).
    bounds_by_target: tuple[tuple[tuple[int, AxisSpec, AxisSpec], ...], ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError(f"production {self.name or self.head} has no components")
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.head}<-{'+'.join(self.components)}"
            )
        normalized: list[SpatialBound] = []
        for i, j, h_spec, v_spec in self.bounds:
            # Signed axis specs are directional, so positions cannot be
            # silently swapped; declare bounds with i < j.
            if not (0 <= i < j < len(self.components)):
                raise ValueError(
                    f"production {self.name}: bound ({i}, {j}) must satisfy "
                    f"0 <= i < j < {len(self.components)}"
                )
            for spec in (h_spec, v_spec):
                if spec is None or isinstance(spec, (int, float)):
                    continue
                if (
                    isinstance(spec, tuple)
                    and len(spec) == 2
                    and all(
                        end is None or isinstance(end, (int, float))
                        for end in spec
                    )
                ):
                    continue
                raise ValueError(
                    f"production {self.name}: invalid axis spec {spec!r}"
                )
            normalized.append((i, j, h_spec, v_spec))
        normalized.sort(key=lambda bound: (bound[1], bound[0]))
        object.__setattr__(self, "bounds", tuple(normalized))
        by_target = [
            tuple(
                (i, h_spec, v_spec)
                for i, j, h_spec, v_spec in normalized
                if j == position
            )
            for position in range(len(self.components))
        ]
        object.__setattr__(self, "bounds_by_target", tuple(by_target))

    def try_apply(self, components: tuple[Instance, ...]) -> Instance | None:
        """Instantiate the head from *components*, or ``None`` if rejected.

        Checks pairwise distinctness, coverage disjointness, and the
        declared constraint, then runs the constructor.
        """
        # Coverage disjointness via int bitmasks: parser-built instances
        # always cover at least one token, so overlapping masks subsume the
        # pairwise-distinctness test too (an instance overlaps itself).
        # Empty-coverage instances (possible for hand-built inputs only)
        # fall back to the explicit uid scan.  The head's coverage *set* is
        # never materialized here -- the union mask is authoritative and
        # the frozenset view decodes lazily on demand.
        if len(components) == 2:
            # Unrolled two-component case: binary productions dominate the
            # standard grammar, so this branch is nearly every call.  The
            # no-op default constraint/constructor are skipped by identity
            # and the bbox union is computed inline -- together that keeps
            # the accept path free of intermediate calls.
            first, second = components
            mask = first.coverage_mask
            second_mask = second.coverage_mask
            if mask and second_mask:
                if mask & second_mask:
                    return None
                mask |= second_mask
            elif first is second:
                return None
            else:
                mask |= second_mask
            constraint = self.constraint
            if constraint is not _always and not constraint(first, second):
                return None
            constructor = self.constructor
            if constructor is _empty_payload:
                payload: dict[str, Any] | None = {}
            else:
                payload = constructor(first, second)
                if payload is None:
                    return None
            a = first.bbox
            b = second.bbox
            bbox = BBox(
                a.left if a.left <= b.left else b.left,
                a.right if a.right >= b.right else b.right,
                a.top if a.top <= b.top else b.top,
                a.bottom if a.bottom >= b.bottom else b.bottom,
            )
        else:
            mask = 0
            for component in components:
                component_mask = component.coverage_mask
                if component_mask:
                    if mask & component_mask:
                        return None
                    mask |= component_mask
                else:
                    seen: set[int] = set()
                    for other in components:
                        if other.uid in seen:
                            return None
                        seen.add(other.uid)
            if not self.constraint(*components):
                return None
            payload = self.constructor(*components)
            if payload is None:
                return None
            bbox = _union_boxes(components)
        instance = Instance(
            self.head, bbox, components, None, payload, None, self, mask
        )
        for component in components:
            component.parents.append(instance)
        return instance

    def __str__(self) -> str:
        return f"{self.head} -> {' '.join(self.components)}"


def _union_boxes(instances: tuple[Instance, ...]) -> BBox:
    """Bounding box of the component boxes, built in one pass.

    Skips the per-pair intermediate ``BBox`` objects (and their validity
    re-checks) that chained :meth:`BBox.union` calls would create -- this
    runs once per accepted combination, squarely on the parser's hot path.
    """
    box = instances[0].bbox
    if len(instances) == 1:
        return box
    left, right, top, bottom = box.left, box.right, box.top, box.bottom
    for instance in instances[1:]:
        other = instance.bbox
        if other.left < left:
            left = other.left
        if other.right > right:
            right = other.right
        if other.top < top:
            top = other.top
        if other.bottom > bottom:
            bottom = other.bottom
    return BBox(left, right, top, bottom)
