"""The paper's example grammar G (Figure 6, Example 1).

Eleven productions (P1-P11) over the terminals ``text``, ``textbox``,
``radiobutton``, with start symbol ``QI``, plus the two preferences of
Example 4 (R1: an RBU beats an Attr on a shared text token; R2: the longer
RBList beats the shorter it subsumes).

This small grammar exists for fidelity: the paper's ambiguity numbers in
Section 4.2.1 (the Figure 5 fragment has one correct parse of 42 instances,
while brute-force enumeration explodes) and the derivations of Figures 7-9
are all stated against G.  The unit tests and the pruning-ablation
benchmark use it directly.
"""

from __future__ import annotations

from typing import Any

from repro.grammar.dsl import GrammarBuilder
from repro.grammar.grammar import TwoPGrammar
from repro.grammar.instance import Instance
from repro.grammar.preference import subsumes
from repro.spatial import SpatialConfig, above, below, left_of
from repro.spatial.relations import DEFAULT_SPATIAL


def build_example_grammar(
    spatial: SpatialConfig = DEFAULT_SPATIAL,
) -> TwoPGrammar:
    """Build grammar G exactly as Figure 6 lists it.

    Productions (same numbering as the paper):

    * P1  ``QI -> HQI | Above(QI, HQI)``
    * P2  ``HQI -> CP | Left(HQI, CP)``
    * P3  ``CP -> TextVal | TextOp | EnumRB``
    * P4  ``TextVal -> Left(Attr, Val) | Above(Attr, Val) | Below(Attr, Val)``
    * P5  ``TextOp -> Left(Attr, Val) ∧ Below(Op, Val)``
    * P6  ``Op -> RBList``
    * P7  ``EnumRB -> RBList``
    * P8  ``RBList -> RBU | Left(RBList, RBU)``
    * P9  ``RBU -> Left(radiobutton, text)``
    * P10 ``Attr -> text``
    * P11 ``Val -> textbox``
    """
    g = GrammarBuilder(start="QI", name="example-G")
    g.terminals("text", "textbox", "radiobutton")

    def L(a: Instance, b: Instance) -> bool:
        return left_of(a.bbox, b.bbox, spatial)

    def A(a: Instance, b: Instance) -> bool:
        return above(a.bbox, b.bbox, spatial)

    def B(a: Instance, b: Instance) -> bool:
        return below(a.bbox, b.bbox, spatial)

    # P10, P11: leaf roles.
    g.production(
        "Attr", ["text"],
        constructor=lambda tx: {"attribute": tx.payload.get("sval", "")},
        name="P10",
    )
    g.production(
        "Val", ["textbox"],
        constructor=lambda box: {"fields": (box.payload.get("name"),)},
        name="P11",
    )

    # P9: a radio button and the text to its right.
    g.production(
        "RBU", ["radiobutton", "text"],
        constraint=L,
        constructor=lambda rb, tx: {"labels": (tx.payload.get("sval", ""),)},
        name="P9",
    )

    # P8: radio-button lists, recursively.
    g.production("RBList", ["RBU"],
                 constructor=lambda unit: dict(unit.payload), name="P8a")
    g.production(
        "RBList", ["RBList", "RBU"],
        constraint=L,
        constructor=lambda lst, unit: {
            "labels": tuple(lst.payload["labels"]) + tuple(unit.payload["labels"])
        },
        name="P8b",
    )

    # P6, P7: a list is an operator choice or an enumerated domain.
    g.production(
        "Op", ["RBList"],
        constructor=lambda lst: {"operators": tuple(lst.payload["labels"])},
        name="P6",
    )
    g.production(
        "EnumRB", ["RBList"],
        constructor=lambda lst: {"values": tuple(lst.payload["labels"])},
        name="P7",
    )

    # P5: TextOp (e.g. the author condition of Qam).
    g.production(
        "TextOp", ["Attr", "Val", "Op"],
        constraint=lambda attr, val, op: L(attr, val) and B(op, val),
        constructor=lambda attr, val, op: {
            "attribute": attr.payload.get("attribute"),
            "operators": op.payload.get("operators"),
        },
        name="P5",
    )

    # P4: TextVal in three arrangements.
    def _textval(attr: Instance, val: Instance) -> dict[str, Any]:
        return {"attribute": attr.payload.get("attribute")}

    g.production("TextVal", ["Attr", "Val"], constraint=L,
                 constructor=_textval, name="P4a")
    g.production("TextVal", ["Attr", "Val"], constraint=A,
                 constructor=_textval, name="P4b")
    g.production("TextVal", ["Attr", "Val"], constraint=B,
                 constructor=_textval, name="P4c")

    # P3: condition patterns.
    for component in ("TextVal", "TextOp", "EnumRB"):
        g.production("CP", [component], name=f"P3-{component}")

    # P2: horizontal assembly of a row.
    def _row(left: Instance, right: Instance) -> bool:
        a, b = left.bbox, right.bbox
        return a.right <= b.left + 8.0 and a.vertical_overlap(b) > 0

    g.production("HQI", ["CP"], name="P2a")
    g.production("HQI", ["HQI", "CP"], constraint=_row, name="P2b")

    # P1: vertical assembly of the interface.
    def _stacked(upper: Instance, lower: Instance) -> bool:
        a, b = upper.bbox, lower.bbox
        return a.bottom <= b.top + 10.0 and b.top - a.bottom <= 90.0

    g.production("QI", ["HQI"], name="P1a")
    g.production("QI", ["QI", "HQI"], constraint=_stacked, name="P1b")

    # Preferences R1 and R2 of Example 4.
    g.prefer("RBU", over="Attr", name="R1")
    g.prefer("RBList", over="RBList", when=subsumes, name="R2")
    # The assembly-level analogues keep the fix-point from drowning in
    # sub-row and sub-interface fragments (Section 4.2.1 discusses exactly
    # this aggregation effect).
    g.prefer("QI", over="QI", when=subsumes, name="R-qi")
    g.prefer("HQI", over="HQI", when=subsumes, name="R-hqi")

    return g.build()
