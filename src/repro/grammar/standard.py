"""The derived global 2P grammar.

This grammar plays the role of the paper's grammar "derived from the Basic
dataset" (Section 6): it declaratively captures the condition patterns that
recur across Web query interfaces -- the paper found 21 more-than-once
patterns across 150 sources -- plus the form-assembly patterns that stack
condition patterns into rows (``HQI``) and rows into a query interface
(``QI``), and the preferences that arbitrate their conflicts.

Pattern inventory (the number references the catalog in
:mod:`repro.datasets.patterns`):

====  =======================================================================
 #    pattern
====  =======================================================================
 1    ``TextVal``-left:   attribute left of a textbox
 2    ``TextVal``-above:  attribute above a textbox
 3    ``TextVal``-below:  attribute below a textbox (rare)
 4    ``TextOp``-below:   attribute + textbox + radio operator list below
 5    ``TextOp``-right:   attribute + textbox + radio operator list right
 6    ``TextOpSel``-mid:  attribute + operator select + textbox in a row
 7    ``TextOpSel``-below: attribute + textbox + operator select below
 8    ``SelCP``-left:     attribute left of a selection list
 9    ``SelCP``-above:    attribute above a selection list
10    ``EnumRB``-labeled: attribute + radio-button list
11    ``EnumRB``-bare:    radio-button list standing alone
12    ``EnumCB``-labeled: attribute + checkbox list
13    ``EnumCB``-bare:    checkbox (list) standing alone
14    ``RangeCP``-text:   attribute + from/to textboxes
15    ``RangeCP``-seltext: textbox range stacked on two rows
16    ``RangeCP``-sel:    attribute + from/to selection lists
17    ``RangeCP``-selpair: two selects joined by a range mark ("to", "-")
18    ``DateCP``-3:       attribute + month/day/year selects
19    ``DateCP``-2:       attribute + two date-part selects
20    ``BareVal``:        lone keyword textbox
21    ``TextValUnit``:    attribute + textbox + trailing unit text
====  =======================================================================

Preferences mirror the paper's examples: a radio/checkbox unit binds its
label more tightly than an attribute reading does (R1); longer lists beat
the shorter lists they subsume (R2); and between conflicting composite
interpretations, the one covering more of the form wins.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.grammar.dsl import GrammarBuilder
from repro.grammar.grammar import TwoPGrammar
from repro.grammar.instance import Instance
from repro.grammar.preference import Predicate, subsumes
from repro.grammar.production import SpatialBound
from repro.grammar.text_heuristics import (
    clean_label,
    date_signature,
    is_attribute_like,
    is_operator_select,
    is_range_mark,
    is_unit_text,
    split_attr_mark,
)
from repro.semantics.condition import Condition, Domain
from repro.spatial import SpatialConfig, above, below, left_of
from repro.spatial.relations import DEFAULT_SPATIAL

#: Radio/checkbox labels hug their widget; a tighter gap than general
#: label-to-field adjacency.
_UNIT_SPATIAL = SpatialConfig(max_horizontal_gap=18.0)

#: An attribute written *above* its field sits on the directly preceding
#: line; page headings and blurbs float farther away and must not qualify.
_ATTR_ABOVE_SPATIAL = SpatialConfig(max_vertical_gap=11.0)

#: Pieces *within* one condition (a range mark and its field, an operator
#: select and its textbox, chained date selects) sit a word apart at most.
#: Only the label-to-field hop may span a table column's alignment gap.
_VALUE_SPATIAL = SpatialConfig(max_horizontal_gap=30.0)

#: Assembly tolerances: rows can be far apart vertically (section spacing)
#: and items far apart horizontally (column layouts).
_ROW_GAP = 360.0
_STACK_GAP = 90.0

#: Slack added to every declared spatial bound so the declarative envelope
#: stays strictly looser than the constraint it pre-filters for (bounds
#: must be conservative: never exclude a combination the constraint
#: accepts).
_BOUND_SLACK = 2.0


# ---------------------------------------------------------------------------
# payload helpers
# ---------------------------------------------------------------------------


def _attr_label(attr: Instance) -> str:
    return str(attr.payload.get("attribute", ""))


def _fields(*instances: Instance) -> tuple[str, ...]:
    fields: list[str] = []
    for instance in instances:
        fields.extend(instance.payload.get("fields", ()))
    return tuple(fields)


def _cp(
    attribute: str,
    operators: tuple[str, ...],
    domain: Domain,
    fields: tuple[str, ...],
    arrangement: str = "bare",
    attr: Instance | None = None,
    val: Instance | None = None,
    op: Instance | None = None,
    operator_bindings: tuple[tuple[str, str, str], ...] = (),
    value_bindings: tuple[tuple[str, str, str], ...] = (),
    field_roles: tuple[tuple[str, str], ...] = (),
) -> dict[str, Any]:
    """CP payload: the condition plus binding metadata for preferences.

    ``arrangement`` records how the attribute attaches (``left``/``above``/
    ``below``/``bare``); the ``*_uid`` keys identify shared component
    instances so preferences can detect two CPs competing for the same
    attribute, value, or operator group, and ``op_gap`` measures how far an
    operator group sits from its value field (the tighter binding wins).
    """
    payload: dict[str, Any] = {
        "condition": Condition(
            attribute=attribute,
            operators=operators,
            domain=domain,
            fields=fields,
            operator_bindings=operator_bindings,
            value_bindings=value_bindings,
            field_roles=field_roles,
        ),
        "arrangement": arrangement,
    }
    if attr is not None:
        payload["attr_uid"] = attr.uid
    if val is not None:
        payload["val_uid"] = val.uid
    if attr is not None and val is not None:
        # The attribute binds to whichever claimed component it touches:
        # in "Artist: [op-select] [textbox]" that is the operator select.
        anchors = [val.payload.get("head_box") or val.bbox]
        if op is not None:
            anchors.append(op.bbox)
        payload["attr_gap"] = min(attr.bbox.gap(a) for a in anchors)
    if op is not None:
        payload["op_uid"] = op.uid
        if val is not None:
            payload["op_gap"] = val.bbox.gap(op.bbox)
    return payload


def _share(key: str) -> "Predicate":
    """Conflict condition: both CPs use the same component instance."""

    def _condition(v1: Instance, v2: Instance) -> bool:
        first = v1.payload.get(key)
        return first is not None and first == v2.payload.get(key)

    return _condition


def _tighter_binding(v1: Instance, v2: Instance) -> bool:
    """Winning criterion for two CPs competing for a shared component.

    Horizontal (left) attachment beats vertical (above/below) attachment;
    between two attachments of the same orientation, the closer one wins.
    """
    first = v1.payload.get("arrangement")
    second = v2.payload.get("arrangement")
    if first == "left" and second in ("above", "below"):
        return True
    if first != second:
        return False
    gap1 = v1.payload.get("attr_gap")
    gap2 = v2.payload.get("attr_gap")
    return gap1 is not None and gap2 is not None and gap1 < gap2


def _tighter_op(v1: Instance, v2: Instance) -> bool:
    """Winning criterion: the operator group bound closer to its field."""
    first = v1.payload.get("op_gap")
    second = v2.payload.get("op_gap")
    return first is not None and second is not None and first < second


# ---------------------------------------------------------------------------
# assembly relations (more permissive than token-level adjacency)
# ---------------------------------------------------------------------------


def _row_chain(left: Instance, right: Instance) -> bool:
    """*left* precedes *right* on one visual row of the form."""
    a, b = left.bbox, right.bbox
    if a.right > b.left + 8.0:
        return False
    if b.left - a.right > _ROW_GAP:
        return False
    return a.vertical_overlap(b) > 0 or abs(a.center_y - b.center_y) <= 12.0


def _stack(upper: Instance, lower: Instance) -> bool:
    """*upper* sits above *lower* in the top-down form reading order."""
    a, b = upper.bbox, lower.bbox
    if a.bottom > b.top + 10.0:
        return False
    return b.top - a.bottom <= _STACK_GAP


# ---------------------------------------------------------------------------
# grammar definition
# ---------------------------------------------------------------------------


def build_standard_grammar(spatial: SpatialConfig = DEFAULT_SPATIAL) -> TwoPGrammar:
    """Build the derived global grammar.

    Args:
        spatial: Adjacency thresholds used by the token-level relations.

    Returns:
        A validated :class:`TwoPGrammar` whose start symbol is ``QI``.
    """
    return standard_builder(spatial).build()


def standard_builder(spatial: SpatialConfig = DEFAULT_SPATIAL) -> GrammarBuilder:
    """The standard grammar as an open :class:`GrammarBuilder`.

    Pattern specification is declarative and extensible (paper Section
    3.2): callers can add productions and preferences for new conventions
    before calling ``build()``, leaving the parsing machinery untouched.
    The quickest extension point is another ``CP`` production -- the new
    pattern then participates in row/interface assembly automatically.
    """
    g = GrammarBuilder(start="QI", name="standard-2P")
    g.terminals(
        "text", "textbox", "password", "textarea", "selectlist", "listbox",
        "radiobutton", "checkbox", "submitbutton", "resetbutton",
        "pushbutton", "imagebutton", "filebox", "image", "hiddenfield",
        "hrule",
    )

    def L(a: Instance, b: Instance) -> bool:
        return left_of(a.bbox, b.bbox, spatial)

    def A(a: Instance, b: Instance) -> bool:
        return above(a.bbox, b.bbox, spatial)

    def B(a: Instance, b: Instance) -> bool:
        return below(a.bbox, b.bbox, spatial)

    def AttrA(a: Instance, b: Instance) -> bool:
        """Attribute-above-field: tighter vertical adjacency than A."""
        return above(a.bbox, b.bbox, _ATTR_ABOVE_SPATIAL)

    def AttrB(a: Instance, b: Instance) -> bool:
        """Attribute-below-field: tighter vertical adjacency."""
        return below(a.bbox, b.bbox, _ATTR_ABOVE_SPATIAL)

    def TL(a: Instance, b: Instance) -> bool:
        """Tight left-adjacency for pieces within one condition."""
        return left_of(a.bbox, b.bbox, _VALUE_SPATIAL)

    # Conservative per-axis envelopes for the relations above (see
    # ``Production.bounds``).  ``left_of(a, b)`` pins the *signed*
    # displacement ``b.left - a.right`` into ``[-tolerance, reach]`` (b
    # starts where a ends, modulo the overlap tolerance) and implies
    # same-row (vertical gap zero); ``above(a, b)`` is the transposed
    # statement.  Signed intervals encode the ordering, which is what
    # eliminates the bulk of the cartesian product.
    def row_bound(
        i: int, j: int, config: SpatialConfig = spatial
    ) -> SpatialBound:
        """Envelope of a ``left_of``-style constraint between i and j."""
        reach = (
            -(config.alignment_tolerance + _BOUND_SLACK),
            config.max_horizontal_gap + _BOUND_SLACK,
        )
        return (i, j, reach, _BOUND_SLACK)

    def col_bound(
        i: int, j: int, config: SpatialConfig = spatial
    ) -> SpatialBound:
        """Envelope of an ``above``-style constraint (i above j)."""
        reach = (
            -(config.alignment_tolerance + _BOUND_SLACK),
            config.max_vertical_gap + _BOUND_SLACK,
        )
        return (i, j, _BOUND_SLACK, reach)

    # -- leaf roles ---------------------------------------------------------

    g.production(
        "Attr", ["text"],
        constraint=lambda tx: is_attribute_like(tx.payload.get("sval", "")),
        constructor=lambda tx: {
            "attribute": clean_label(tx.payload.get("sval", "")),
            "raw": tx.payload.get("sval", ""),
            "for_field": tx.payload.get("for_field", ""),
        },
        name="P-attr",
    )

    def _val_payload(box: Instance) -> dict[str, Any]:
        name = box.payload.get("name")
        return {"fields": (name,) if name else (), "kind": "text"}

    for terminal in ("textbox", "password", "textarea"):
        g.production("Val", [terminal], constructor=_val_payload,
                     name=f"P-val-{terminal}")

    def _sel_payload(sel: Instance) -> dict[str, Any]:
        name = sel.payload.get("name")
        options = tuple(sel.payload.get("options", ()))
        labels = tuple(option.label for option in options if option.label)
        return {
            "fields": (name,) if name else (),
            "values": labels,
            "options": options,
            "kind": "enum",
        }

    for terminal in ("selectlist", "listbox"):
        g.production("SelVal", [terminal], constructor=_sel_payload,
                     name=f"P-selval-{terminal}")

    def _opselect_payload(sel: Instance) -> dict[str, Any]:
        name = sel.payload.get("name")
        options = [
            option for option in sel.payload.get("options", ()) if option.label
        ]
        return {
            "fields": (name,) if name else (),
            "operators": tuple(option.label for option in options),
            "bindings": tuple(
                (option.label, name or "", option.value) for option in options
            ),
        }

    g.production(
        "OpSelect", ["selectlist"],
        constraint=lambda sel: is_operator_select(sel.payload.get("options", ())),
        constructor=_opselect_payload,
        name="P-opselect",
    )

    # -- radio / checkbox units and lists (paper P8, P9) ------------------------

    def _unit_constraint(widget: Instance, tx: Instance) -> bool:
        return left_of(widget.bbox, tx.bbox, _UNIT_SPATIAL)

    def _unit_payload(widget: Instance, tx: Instance) -> dict[str, Any]:
        name = widget.payload.get("name")
        return {
            "labels": (clean_label(tx.payload.get("sval", "")),),
            "fields": (name,) if name else (),
            "values": (widget.payload.get("value", ""),),
        }

    g.production("RBU", ["radiobutton", "text"],
                 constraint=_unit_constraint, constructor=_unit_payload,
                 name="P-rbu", bounds=[row_bound(0, 1, _UNIT_SPATIAL)])
    g.production("CBU", ["checkbox", "text"],
                 constraint=_unit_constraint, constructor=_unit_payload,
                 name="P-cbu", bounds=[row_bound(0, 1, _UNIT_SPATIAL)])

    def _list_seed(unit: Instance) -> dict[str, Any]:
        payload = dict(unit.payload)
        payload["head_box"] = unit.bbox
        return payload

    def _list_extend(lst: Instance, unit: Instance) -> dict[str, Any]:
        return {
            "labels": tuple(lst.payload["labels"]) + tuple(unit.payload["labels"]),
            "fields": _fields(lst, unit),
            "values": tuple(lst.payload["values"]) + tuple(unit.payload["values"]),
            "head_box": lst.payload.get("head_box", lst.bbox),
        }

    def _same_group(lst: Instance, unit: Instance) -> bool:
        """Widgets of one list share their HTML control name.

        Real radio groups must share a name to be exclusive; checkbox
        groups conventionally do too.  Unnamed widgets chain freely.
        """
        list_fields = lst.payload.get("fields", ())
        unit_fields = unit.payload.get("fields", ())
        if not list_fields or not unit_fields:
            return True
        return list_fields[0] == unit_fields[0]

    def _chain_row(lst: Instance, unit: Instance) -> bool:
        return _same_group(lst, unit) and L(lst, unit)

    def _chain_col(lst: Instance, unit: Instance) -> bool:
        """Vertical chaining: the next unit on the directly following line.

        A flowing layout indents a list's first line past its label, so
        column overlap cannot be required when the widgets share a control
        name -- the shared name is already conclusive group evidence.
        """
        if not _same_group(lst, unit):
            return False
        a, b = lst.bbox, unit.bbox
        if a.bottom > b.top + 6.0 or b.top - a.bottom > 12.0:
            return False
        named = bool(
            lst.payload.get("fields", ()) and unit.payload.get("fields", ())
        )
        if named:
            return True
        return a.horizontal_overlap(b) > 0

    # _chain_col accepts any horizontal offset but at most a 12 px line
    # break (6 px overlap tolerance); _chain_row is ordinary left-adjacency.
    chain_col_bound = (0, 1, None,
                       (-(6.0 + _BOUND_SLACK), 12.0 + _BOUND_SLACK))
    for head, unit in (("RBList", "RBU"), ("CBList", "CBU")):
        g.production(head, [unit], constructor=_list_seed, name=f"P-{head}-seed")
        g.production(head, [head, unit], constraint=_chain_row,
                     constructor=_list_extend, name=f"P-{head}-row",
                     bounds=[row_bound(0, 1)])
        g.production(head, [head, unit], constraint=_chain_col,
                     constructor=_list_extend, name=f"P-{head}-col",
                     bounds=[chain_col_bound])

    # A radio list whose labels read like operators can serve as an
    # operator choice (paper P6: Op -> RBList).
    g.production(
        "OpRB", ["RBList"],
        constraint=lambda lst: _mostly_operators(lst.payload.get("labels", ())),
        constructor=lambda lst: {
            "operators": tuple(lst.payload.get("labels", ())),
            "fields": tuple(lst.payload.get("fields", ())),
            "bindings": tuple(
                zip(
                    lst.payload.get("labels", ()),
                    lst.payload.get("fields", ()),
                    lst.payload.get("values", ()),
                )
            ),
        },
        name="P-oprb",
    )

    # -- range and date values ------------------------------------------------------

    g.production(
        "AttrMark", ["text"],
        constraint=lambda tx: split_attr_mark(tx.payload.get("sval", ""))
        is not None,
        constructor=lambda tx: {
            "attribute": (split_attr_mark(tx.payload.get("sval", "")) or ("", ""))[0],
            "mark": (split_attr_mark(tx.payload.get("sval", "")) or ("", ""))[1],
        },
        name="P-attrmark",
    )
    g.production(
        "RangeMark", ["text"],
        constraint=lambda tx: is_range_mark(tx.payload.get("sval", "")),
        constructor=lambda tx: {"mark": clean_label(tx.payload.get("sval", ""))},
        name="P-rangemark",
    )
    g.production(
        "UnitText", ["text"],
        constraint=lambda tx: is_unit_text(tx.payload.get("sval", "")),
        constructor=lambda tx: {"unit": clean_label(tx.payload.get("sval", ""))},
        name="P-unittext",
    )

    def _rv_payload(mark: Instance, value: Instance) -> dict[str, Any]:
        return {"fields": _fields(value), "kind": value.payload.get("kind", "text")}

    g.production("RVUnit", ["RangeMark", "Val"], constraint=TL,
                 constructor=_rv_payload, name="P-rvunit-text",
                 bounds=[row_bound(0, 1, _VALUE_SPATIAL)])
    g.production("RVUnit", ["RangeMark", "SelVal"], constraint=TL,
                 constructor=_rv_payload, name="P-rvunit-sel",
                 bounds=[row_bound(0, 1, _VALUE_SPATIAL)])

    def _range_pair(first: Instance, second: Instance) -> dict[str, Any]:
        return {"fields": _fields(first, second), "kind": "range"}

    def _range_mid(first: Instance, mark: Instance, second: Instance) -> dict[str, Any]:
        return {"fields": _fields(first, second), "kind": "range"}

    g.production("RangeVal", ["RVUnit", "RVUnit"], constraint=TL,
                 constructor=_range_pair, name="P-range-row",
                 bounds=[row_bound(0, 1, _VALUE_SPATIAL)])
    g.production("RangeVal", ["RVUnit", "RVUnit"], constraint=A,
                 constructor=_range_pair, name="P-range-col",
                 bounds=[col_bound(0, 1)])
    g.production(
        "RangeVal", ["Val", "RangeMark", "Val"],
        constraint=lambda v1, mk, v2: TL(v1, mk) and TL(mk, v2),
        constructor=_range_mid, name="P-range-mid-text",
        bounds=[row_bound(0, 1, _VALUE_SPATIAL), row_bound(1, 2, _VALUE_SPATIAL)],
    )
    g.production(
        "RangeVal", ["SelVal", "RangeMark", "SelVal"],
        constraint=lambda v1, mk, v2: TL(v1, mk) and TL(mk, v2),
        constructor=_range_mid, name="P-range-mid-sel",
        bounds=[row_bound(0, 1, _VALUE_SPATIAL), row_bound(1, 2, _VALUE_SPATIAL)],
    )

    def _date3_constraint(s1: Instance, s2: Instance, s3: Instance) -> bool:
        if not (TL(s1, s2) and TL(s2, s3)):
            return False
        signatures = {
            date_signature(s.payload.get("options", ())) for s in (s1, s2, s3)
        }
        return None not in signatures and len(signatures) == 3

    def _date2_constraint(s1: Instance, s2: Instance) -> bool:
        if not TL(s1, s2):
            return False
        first = date_signature(s1.payload.get("options", ()))
        second = date_signature(s2.payload.get("options", ()))
        if first is None or second is None or first == second:
            return False
        return {first, second} != {"day", "year"}

    def _date_payload(*selects: Instance) -> dict[str, Any]:
        return {
            "fields": _fields(*selects),
            "parts": tuple(
                date_signature(s.payload.get("options", ())) or "?" for s in selects
            ),
        }

    g.production("DateVal", ["SelVal", "SelVal", "SelVal"],
                 constraint=_date3_constraint, constructor=_date_payload,
                 name="P-date3",
                 bounds=[row_bound(0, 1, _VALUE_SPATIAL),
                         row_bound(1, 2, _VALUE_SPATIAL)])
    g.production("DateVal", ["SelVal", "SelVal"],
                 constraint=_date2_constraint, constructor=_date_payload,
                 name="P-date2", bounds=[row_bound(0, 1, _VALUE_SPATIAL)])

    # -- condition patterns (CP) -------------------------------------------------------

    def _textval(arrangement: str) -> Callable[[Instance, Instance], dict[str, Any]]:
        def build(attr: Instance, val: Instance) -> dict[str, Any]:
            return _cp(
                _attr_label(attr), ("contains",), Domain("text"), _fields(val),
                arrangement=arrangement, attr=attr, val=val,
            )

        return build

    for relation, suffix, bound in (
        (L, "left", row_bound(0, 1)),
        (AttrA, "above", col_bound(0, 1, _ATTR_ABOVE_SPATIAL)),
        # AttrB reverses the vertical order (the value sits above its
        # label), so it gets a symmetric envelope instead of col_bound's
        # signed i-above-j interval.
        (AttrB, "below",
         (0, 1, _BOUND_SLACK,
          _ATTR_ABOVE_SPATIAL.max_vertical_gap + _BOUND_SLACK)),
    ):
        g.production("CP", ["Attr", "Val"], constraint=relation,
                     constructor=_textval(suffix),
                     name=f"P-cp-textval-{suffix}", bounds=[bound])

    # A <label for="..."> is explicit DOM evidence: the association holds
    # regardless of geometry (a detached label still binds its control).
    def _for_matches(attr: Instance, val: Instance) -> bool:
        target = attr.payload.get("for_field", "")
        fields = val.payload.get("fields", ())
        return bool(target) and bool(fields) and target == fields[0]

    def _dom_textval(attr: Instance, val: Instance) -> dict[str, Any]:
        payload = _textval("left")(attr, val)
        payload["arrangement"] = "dom"
        payload["dom_evidence"] = True
        return payload

    g.production("CP", ["Attr", "Val"], constraint=_for_matches,
                 constructor=_dom_textval, name="P-cp-textval-labelfor")

    def _dom_selcp(attr: Instance, sel: Instance) -> dict[str, Any]:
        payload = _selcp("left")(attr, sel)
        payload["arrangement"] = "dom"
        payload["dom_evidence"] = True
        return payload

    g.production("CP", ["Attr", "SelVal"], constraint=_for_matches,
                 constructor=_dom_selcp, name="P-cp-sel-labelfor")

    g.production(
        "CP", ["Attr", "Val", "UnitText"],
        constraint=lambda attr, val, unit: L(attr, val) and TL(val, unit),
        constructor=lambda attr, val, unit: _cp(
            _attr_label(attr), ("contains",), Domain("text"), _fields(val),
            arrangement="left", attr=attr, val=val,
        ),
        name="P-cp-textval-unit",
        bounds=[row_bound(0, 1), row_bound(1, 2, _VALUE_SPATIAL)],
    )

    def _textop(arrangement: str) -> Callable[[Instance, Instance, Instance], dict[str, Any]]:
        def build(attr: Instance, val: Instance, op: Instance) -> dict[str, Any]:
            return _cp(
                _attr_label(attr),
                tuple(op.payload.get("operators", ())),
                Domain("text"),
                _fields(val, op),
                arrangement=arrangement, attr=attr, val=val, op=op,
                operator_bindings=tuple(op.payload.get("bindings", ())),
            )

        return build

    def _op_below(attr: Instance, val: Instance, op: Instance) -> bool:
        """The operator group hangs directly under the field row.

        Flowing layouts left-align the group with the *label* rather than
        the field, so alignment with either anchors it.
        """
        if val.bbox.bottom > op.bbox.top + 6.0:
            return False
        if op.bbox.top - val.bbox.bottom > 28.0:
            return False
        row_box = attr.bbox.union(val.bbox)
        return op.bbox.horizontal_overlap(row_box) > 0

    # _op_below hangs the group at most 28 px under the field row, at any
    # horizontal offset that still overlaps the row.
    op_below_bound = (1, 2, None,
                      (-(6.0 + _BOUND_SLACK), 28.0 + _BOUND_SLACK))
    g.production(
        "CP", ["Attr", "Val", "OpRB"],
        constraint=lambda attr, val, op: L(attr, val)
        and _op_below(attr, val, op),
        constructor=_textop("left"), name="P-cp-textop-below",
        bounds=[row_bound(0, 1), op_below_bound],
    )
    g.production(
        "CP", ["Attr", "Val", "OpRB"],
        constraint=lambda attr, val, op: L(attr, val) and TL(val, op),
        constructor=_textop("left"), name="P-cp-textop-right",
        bounds=[row_bound(0, 1), row_bound(1, 2, _VALUE_SPATIAL)],
    )
    g.production(
        "CP", ["Attr", "Val", "OpRB"],
        constraint=lambda attr, val, op: AttrA(attr, val) and B(op, val),
        constructor=_textop("above"), name="P-cp-textop-stacked",
        bounds=[col_bound(0, 1, _ATTR_ABOVE_SPATIAL), col_bound(1, 2)],
    )

    def _textopsel(arrangement: str) -> Callable[[Instance, Instance, Instance], dict[str, Any]]:
        def build(attr: Instance, op: Instance, val: Instance) -> dict[str, Any]:
            return _cp(
                _attr_label(attr),
                tuple(op.payload.get("operators", ())),
                Domain("text"),
                _fields(val, op),
                arrangement=arrangement, attr=attr, val=val, op=op,
                operator_bindings=tuple(op.payload.get("bindings", ())),
            )

        return build

    g.production(
        "CP", ["Attr", "OpSelect", "Val"],
        constraint=lambda attr, op, val: L(attr, op) and TL(op, val),
        constructor=_textopsel("left"),
        name="P-cp-textopsel-mid",
        bounds=[row_bound(0, 1), row_bound(1, 2, _VALUE_SPATIAL)],
    )
    g.production(
        "CP", ["Attr", "OpSelect", "Val"],
        constraint=lambda attr, op, val: L(attr, val) and B(op, val),
        constructor=_textopsel("left"),
        name="P-cp-textopsel-below",
        # The op-select hangs *below* the value (j above i), so the
        # vertical envelope is symmetric rather than col_bound's signed
        # i-above-j interval.
        bounds=[row_bound(0, 2),
                (1, 2, _BOUND_SLACK,
                 spatial.max_vertical_gap + _BOUND_SLACK)],
    )

    def _sel_bindings(sel: Instance) -> tuple[tuple[str, str, str], ...]:
        name = (sel.payload.get("fields") or ("",))[0]
        return tuple(
            (option.label, name, option.value)
            for option in sel.payload.get("options", ())
            if option.label
        )

    def _selcp(arrangement: str) -> Callable[[Instance, Instance], dict[str, Any]]:
        def build(attr: Instance, sel: Instance) -> dict[str, Any]:
            return _cp(
                _attr_label(attr),
                ("=",),
                Domain("enum", tuple(sel.payload.get("values", ()))),
                _fields(sel),
                arrangement=arrangement, attr=attr, val=sel,
                value_bindings=_sel_bindings(sel),
            )

        return build

    for relation, suffix, bound in (
        (L, "left", row_bound(0, 1)),
        (AttrA, "above", col_bound(0, 1, _ATTR_ABOVE_SPATIAL)),
    ):
        g.production("CP", ["Attr", "SelVal"], constraint=relation,
                     constructor=_selcp(suffix), name=f"P-cp-sel-{suffix}",
                     bounds=[bound])

    def _enum_payload(
        attr: Instance | None, lst: Instance, multi: bool, arrangement: str
    ) -> dict[str, Any]:
        return _cp(
            _attr_label(attr) if attr is not None else "",
            ("in",) if multi else ("=",),
            Domain("enum", tuple(lst.payload.get("labels", ()))),
            tuple(dict.fromkeys(lst.payload.get("fields", ()))),
            arrangement=arrangement, attr=attr, val=lst,
            value_bindings=tuple(
                zip(
                    lst.payload.get("labels", ()),
                    lst.payload.get("fields", ()),
                    lst.payload.get("values", ()),
                )
            ),
        ) | {"unit_count": len(lst.payload.get("labels", ()))}

    def _enum_cp(
        multi: bool, arrangement: str
    ) -> Callable[[Instance, Instance], dict[str, Any]]:
        def build(attr: Instance, lst: Instance) -> dict[str, Any]:
            return _enum_payload(attr, lst, multi, arrangement)

        return build

    def _heads_list(attr: Instance, lst: Instance) -> bool:
        """Attr left of the list's *first unit* (a flow layout wraps the
        list's later rows back under the label, so the union box overlaps
        the label horizontally)."""
        head_box = lst.payload.get("head_box", lst.bbox)
        return left_of(attr.bbox, head_box, spatial)

    def _list_left(attr: Instance, lst: Instance) -> bool:
        return L(attr, lst) or _heads_list(attr, lst)

    # ``_heads_list`` measures against the list's first-unit box; a
    # wrapped list's union box can extend back past the label, so only a
    # *symmetric* gap envelope (which shrinks as the box grows) stays
    # conservative for the left arrangement -- no signed interval here.
    list_left_bound = (
        0, 1, spatial.max_horizontal_gap + _BOUND_SLACK, _BOUND_SLACK,
    )
    for relation, suffix, bound in (
        (_list_left, "left", list_left_bound),
        (AttrA, "above", col_bound(0, 1, _ATTR_ABOVE_SPATIAL)),
    ):
        g.production(
            "CP", ["Attr", "RBList"], constraint=relation,
            constructor=_enum_cp(False, suffix),
            name=f"P-cp-enumrb-{suffix}", bounds=[bound],
        )
        g.production(
            "CP", ["Attr", "CBList"], constraint=relation,
            constructor=_enum_cp(True, suffix),
            name=f"P-cp-enumcb-{suffix}", bounds=[bound],
        )
    g.production("CP", ["RBList"],
                 constructor=lambda lst: _enum_payload(None, lst, False, "bare"),
                 name="P-cp-enumrb-bare")
    g.production("CP", ["CBList"],
                 constructor=lambda lst: _enum_payload(None, lst, True, "bare"),
                 name="P-cp-enumcb-bare")

    def _range_roles(fields: tuple[str, ...]) -> tuple[tuple[str, str], ...]:
        roles = ("lo", "hi")
        return tuple(
            (field, roles[index]) for index, field in enumerate(fields[:2])
        )

    def _rangecp(arrangement: str) -> Callable[[Instance, Instance], dict[str, Any]]:
        def build(attr: Instance, rng: Instance) -> dict[str, Any]:
            fields = _fields(rng)
            return _cp(
                _attr_label(attr), ("between",), Domain("range"), fields,
                arrangement=arrangement, attr=attr, val=rng,
                field_roles=_range_roles(fields),
            )

        return build

    for relation, suffix, bound in (
        (L, "left", row_bound(0, 1)),
        (AttrA, "above", col_bound(0, 1, _ATTR_ABOVE_SPATIAL)),
    ):
        g.production("CP", ["Attr", "RangeVal"], constraint=relation,
                     constructor=_rangecp(suffix),
                     name=f"P-cp-range-{suffix}", bounds=[bound])

    # In flowing layouts the attribute label and the first endpoint mark
    # fuse into one text run ("Price: from"); AttrMark recovers both roles.
    def _rangecp_mark(am: Instance, *values: Instance) -> dict[str, Any]:
        fields = _fields(*values)
        return _cp(
            str(am.payload.get("attribute", "")),
            ("between",),
            Domain("range"),
            fields,
            arrangement="left", attr=am,
            field_roles=_range_roles(fields),
        )

    range_mark_bounds = [
        row_bound(0, 1, _VALUE_SPATIAL),
        row_bound(1, 2, _VALUE_SPATIAL),
        row_bound(2, 3, _VALUE_SPATIAL),
    ]
    g.production(
        "CP", ["AttrMark", "Val", "RangeMark", "Val"],
        constraint=lambda am, v1, mk, v2: TL(am, v1) and TL(v1, mk) and TL(mk, v2),
        constructor=lambda am, v1, mk, v2: _rangecp_mark(am, v1, v2),
        name="P-cp-range-mark-text", bounds=range_mark_bounds,
    )
    g.production(
        "CP", ["AttrMark", "SelVal", "RangeMark", "SelVal"],
        constraint=lambda am, v1, mk, v2: TL(am, v1) and TL(v1, mk) and TL(mk, v2),
        constructor=lambda am, v1, mk, v2: _rangecp_mark(am, v1, v2),
        name="P-cp-range-mark-sel", bounds=range_mark_bounds,
    )
    def _next_line(a: Instance, b: Instance) -> bool:
        """*b* sits on the line directly below *a* (no column requirement:
        a flowing layout indents the first line past the fused label)."""
        return (
            a.bbox.bottom <= b.bbox.top + 6.0
            and b.bbox.top - a.bbox.bottom <= 12.0
        )

    g.production(
        "CP", ["AttrMark", "Val", "RVUnit"],
        constraint=lambda am, v1, rv: TL(am, v1) and _next_line(v1, rv),
        constructor=lambda am, v1, rv: _rangecp_mark(am, v1, rv),
        name="P-cp-range-mark-stacked",
        bounds=[row_bound(0, 1, _VALUE_SPATIAL),
                (1, 2, None, (-(6.0 + _BOUND_SLACK), 12.0 + _BOUND_SLACK))],
    )

    def _datecp(arrangement: str) -> Callable[[Instance, Instance], dict[str, Any]]:
        def build(attr: Instance, date: Instance) -> dict[str, Any]:
            fields = _fields(date)
            parts = date.payload.get("parts", ())
            return _cp(
                _attr_label(attr), ("=",), Domain("datetime"), fields,
                arrangement=arrangement, attr=attr, val=date,
                field_roles=tuple(zip(fields, parts)),
            )

        return build

    for relation, suffix, bound in (
        (L, "left", row_bound(0, 1)),
        (AttrA, "above", col_bound(0, 1, _ATTR_ABOVE_SPATIAL)),
    ):
        g.production("CP", ["Attr", "DateVal"], constraint=relation,
                     constructor=_datecp(suffix), name=f"P-cp-date-{suffix}",
                     bounds=[bound])

    g.production(
        "CP", ["Val"],
        constructor=lambda val: _cp(
            "", ("contains",), Domain("text"), _fields(val),
            arrangement="bare", val=val,
        ),
        name="P-cp-bareval",
    )
    g.production(
        "CP", ["SelVal"],
        constructor=lambda sel: _cp(
            "", ("=",),
            Domain("enum", tuple(sel.payload.get("values", ()))),
            _fields(sel),
            arrangement="bare", val=sel,
            value_bindings=_sel_bindings(sel),
        ),
        name="P-cp-baresel",
    )

    # -- decoration and noise -------------------------------------------------------

    for terminal in (
        "submitbutton", "resetbutton", "pushbutton", "imagebutton",
        "image", "hrule", "filebox",
    ):
        g.production("Decor", [terminal], name=f"P-decor-{terminal}")
    g.production("Note", ["text"], name="P-note")

    # -- form assembly (paper P1, P2) ---------------------------------------------------

    for component in ("CP", "Decor", "Note"):
        g.production("Item", [component], name=f"P-item-{component.lower()}")
    g.production("HQI", ["Item"], name="P-hqi-seed")
    # _row_chain tolerates a 12 px center offset (which caps the axis gap
    # of non-overlapping boxes) within the row reach; _stack accepts any
    # horizontal offset within the section gap.
    g.production("HQI", ["HQI", "Item"], constraint=_row_chain,
                 name="P-hqi-chain",
                 bounds=[(0, 1, (-(8.0 + _BOUND_SLACK), _ROW_GAP + _BOUND_SLACK),
                          12.0 + _BOUND_SLACK)])
    g.production("QI", ["HQI"], name="P-qi-seed")
    g.production("QI", ["QI", "HQI"], constraint=_stack, name="P-qi-stack",
                 bounds=[(0, 1, None,
                          (-(10.0 + _BOUND_SLACK), _STACK_GAP + _BOUND_SLACK))])

    # -- preferences (Pf) ------------------------------------------------------------

    # R1 (paper Example 4): a radio/checkbox unit binds its text more
    # tightly than an attribute reading.
    g.prefer("RBU", over="Attr", name="R1-rbu-over-attr")
    g.prefer("CBU", over="Attr", name="R1b-cbu-over-attr")
    # R2 (paper Example 4): the longer list subsumes the shorter.
    g.prefer("RBList", over="RBList", when=subsumes, name="R2-longer-rblist")
    g.prefer("CBList", over="CBList", when=subsumes, name="R2b-longer-cblist")
    # Units and marks beat the noise reading of their text.
    g.prefer("RBU", over="Note", name="R3-rbu-over-note")
    g.prefer("CBU", over="Note", name="R3b-cbu-over-note")
    # A composite date beats enum readings of its member selects at the CP
    # level via subsumption; between value groupings, the bigger wins.
    g.prefer("RangeVal", over="RangeVal", when=subsumes, name="R4-longer-range")
    g.prefer("DateVal", over="DateVal", when=subsumes, name="R5-longer-date")
    # Binding conventions between competing condition patterns.  These run
    # before the subsumption rule so that a wrongly-attached bigger pattern
    # cannot first eliminate the correct smaller one.
    g.prefer(
        "CP", over="CP",
        when=lambda v1, v2: (
            _share("val_uid")(v1, v2) or _share("attr_uid")(v1, v2)
        ),
        criteria=lambda v1, v2: (
            bool(v1.payload.get("dom_evidence"))
            and not v2.payload.get("dom_evidence")
        ),
        name="R6d-dom-evidence-wins",
    )
    g.prefer(
        "CP", over="CP", when=_share("val_uid"),
        criteria=lambda v1, v2: (
            v1.payload.get("arrangement") == "bare"
            and v1.payload.get("unit_count") == 1
            and v2.payload.get("arrangement") in ("above", "below")
        ),
        name="R6e-lone-widget-self-labeled",
    )
    g.prefer(
        "CP", over="CP", when=_share("attr_uid"),
        criteria=_tighter_binding,
        name="R6a-attr-binds-horizontal",
    )
    g.prefer(
        "CP", over="CP", when=_share("val_uid"),
        criteria=_tighter_binding,
        name="R6b-val-binds-horizontal",
    )
    g.prefer(
        "CP", over="CP", when=_share("op_uid"), criteria=_tighter_op,
        name="R6c-op-binds-closest",
    )
    # The dominant disambiguator: a condition pattern that explains more of
    # the form beats one it subsumes, and beats stray role readings of the
    # tokens it claims.
    g.prefer("CP", over="CP", when=subsumes, name="R6-bigger-cp")
    g.prefer("CP", over="Note", name="R7-cp-over-note")
    g.prefer("CP", over="Attr", name="R8-cp-over-attr")
    # Assembly: bigger rows and bigger interfaces win.
    g.prefer("HQI", over="HQI", when=subsumes, name="R9-bigger-hqi")
    g.prefer("QI", over="QI", when=subsumes, name="R10-bigger-qi")

    return g


def _mostly_operators(labels: tuple[str, ...]) -> bool:
    """True when at least half of *labels* read like operators."""
    from repro.grammar.text_heuristics import is_operator_text

    if not labels:
        return False
    hits = sum(1 for label in labels if is_operator_text(label))
    return hits * 2 >= len(labels)
