"""Token-class vocabulary: what the tokenizer can emit, for the analyzer.

The coverage pass (C001-C005) replays the paper's §6.4 incompleteness
argument statically: given the token classes the *tokenizer* produces,
which attribute-pattern shapes have no derivation in the grammar?  That
question needs the vocabulary as an input distinct from the grammar's own
terminal declarations -- a grammar can forget a class the tokenizer emits,
which is exactly the defect C001 reports.

This module is the single export point; it sources the class sets from
:mod:`repro.tokens.model` so the analyzer can never drift from the
tokenizer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tokens.model import INPUT_TERMINALS, TERMINALS


@dataclass(frozen=True)
class TokenVocabulary:
    """The token classes a tokenizer emits.

    Attributes:
        classes: every terminal class the tokenizer can produce.
        input_classes: the subset that accepts user input and can anchor a
            query condition (the paper's attribute patterns are built
            around exactly these).
    """

    classes: frozenset[str]
    input_classes: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if not self.input_classes <= self.classes:
            raise ValueError(
                "input_classes must be a subset of classes; extra: "
                f"{sorted(self.input_classes - self.classes)}"
            )


def tokenizer_vocabulary() -> TokenVocabulary:
    """The form tokenizer's vocabulary (the 16 classes of paper §6)."""
    return TokenVocabulary(
        classes=TERMINALS, input_classes=INPUT_TERMINALS
    )
