"""Debug visualization: ASCII renderings of token layouts and parses.

When a form extracts badly, the first question is "what did the parser
actually see?"  These helpers render the tokenizer's output as an ASCII
approximation of the page, and a parse forest as an annotated outline --
cheap, dependency-free introspection for tests, examples, and the
``--render`` flag of the CLI.
"""

from __future__ import annotations

from repro.grammar.instance import Instance
from repro.tokens.model import Token

#: Pixels per character cell horizontally / per row vertically.
_X_SCALE = 8.0
_Y_SCALE = 19.0

_GLYPHS = {
    "textbox": "[______]",
    "password": "[******]",
    "textarea": "[======]",
    "selectlist": "[___|v]",
    "listbox": "[≡≡≡≡≡]",
    "radiobutton": "( )",
    "checkbox": "[ ]",
    "submitbutton": "<submit>",
    "resetbutton": "<reset>",
    "pushbutton": "<button>",
    "imagebutton": "<img-btn>",
    "filebox": "[file...]",
    "image": "(img)",
    "hiddenfield": "",
    "hrule": "--------",
}


def render_tokens(tokens: list[Token], width: int = 100) -> str:
    """Render *tokens* as an ASCII sketch of the page.

    Text tokens print their string value; controls print a glyph.  The
    grid is scaled from pixel coordinates, clipped at *width* columns.
    """
    if not tokens:
        return "(no tokens)"
    min_x = min(token.bbox.left for token in tokens)
    min_y = min(token.bbox.top for token in tokens)
    rows: dict[int, list[tuple[int, str]]] = {}
    for token in tokens:
        row = int((token.bbox.center_y - min_y) / _Y_SCALE)
        column = int((token.bbox.left - min_x) / _X_SCALE)
        label = (
            token.sval if token.terminal == "text"
            else _GLYPHS.get(token.terminal, "?")
        )
        if not label:
            continue
        rows.setdefault(row, []).append((column, label))

    lines: list[str] = []
    for row_index in range(max(rows) + 1 if rows else 0):
        cells = sorted(rows.get(row_index, []))
        line = ""
        for column, label in cells:
            if column > len(line):
                line += " " * (column - len(line))
            elif line:
                line += " "
            line += label
        lines.append(line[:width].rstrip())
    return "\n".join(lines)


def render_parse_summary(trees: list[Instance], tokens: list[Token]) -> str:
    """One-line-per-tree summary of a parse forest."""
    if not trees:
        return "(no parse trees)"
    total = len(tokens)
    lines = []
    for index, tree in enumerate(trees, start=1):
        conditions = sum(
            1 for node in tree.descendants()
            if node.payload.get("condition") is not None
        )
        lines.append(
            f"tree {index}: {tree.symbol}, covers "
            f"{len(tree.coverage)}/{total} tokens, "
            f"{conditions} condition(s), {tree.size()} instances"
        )
    return "\n".join(lines)


def render_conditions_with_anchors(
    trees: list[Instance], tokens: list[Token]
) -> str:
    """Conditions plus the source tokens each one claimed."""
    by_id = {token.id: token for token in tokens}
    lines: list[str] = []
    seen: set[int] = set()
    for tree in trees:
        stack = [tree]
        while stack:
            node = stack.pop()
            condition = node.payload.get("condition")
            if condition is not None:
                if node.uid not in seen:
                    seen.add(node.uid)
                    anchors = ", ".join(
                        (by_id[tid].sval or by_id[tid].terminal)
                        for tid in sorted(node.coverage)
                        if tid in by_id
                    )
                    lines.append(f"{condition}\n    from: {anchors}")
                continue
            stack.extend(node.children)
    return "\n".join(lines) if lines else "(no conditions)"
