"""Minimal style resolution: how each element participates in layout.

Real browsers resolve CSS; query forms of the studied era styled themselves
almost entirely with structural HTML (tables, ``<br>``, ``<b>``), so a
static tag → display mapping captures what the layout engine needs.
"""

from __future__ import annotations

from enum import Enum

from repro.html.dom import Element


class Display(Enum):
    """Layout participation modes."""

    BLOCK = "block"
    INLINE = "inline"
    TABLE = "table"
    TABLE_ROW_GROUP = "table-row-group"
    TABLE_ROW = "table-row"
    TABLE_CELL = "table-cell"
    LIST_ITEM = "list-item"
    NONE = "none"


_BLOCK_TAGS = frozenset(
    {
        "address", "article", "aside", "blockquote", "center", "dd", "div",
        "dl", "dt", "fieldset", "figure", "footer", "form", "h1", "h2",
        "h3", "h4", "h5", "h6", "header", "hr", "legend", "main", "nav",
        "ol", "p", "pre", "section", "ul", "body", "html",
    }
)

_INLINE_TAGS = frozenset(
    {
        "a", "abbr", "b", "bdo", "big", "br", "button", "cite", "code",
        "em", "font", "i", "img", "input", "kbd", "label", "q", "s",
        "samp", "select", "small", "span", "strike", "strong", "sub",
        "sup", "textarea", "tt", "u", "var", "wbr", "nobr",
    }
)

_HIDDEN_TAGS = frozenset(
    {
        "head", "meta", "link", "script", "style", "title", "base",
        "noscript", "template", "option", "optgroup", "colgroup", "col",
        "map", "area", "datalist", "param",
    }
)

#: Vertical margin (px) applied above and below specific block tags.
BLOCK_VERTICAL_MARGIN: dict[str, int] = {
    "p": 10,
    "h1": 14,
    "h2": 12,
    "h3": 10,
    "h4": 9,
    "h5": 8,
    "h6": 8,
    "ul": 8,
    "ol": 8,
    "dl": 8,
    "blockquote": 10,
    "fieldset": 6,
    "hr": 8,
    "table": 2,
}

#: Extra left indentation (px) for specific block tags.
BLOCK_LEFT_INDENT: dict[str, int] = {
    "ul": 30,
    "ol": 30,
    "dd": 30,
    "blockquote": 30,
    "li": 0,
    "fieldset": 4,
}

#: Default cell padding/spacing used when a table does not specify any.
DEFAULT_CELLPADDING = 2
DEFAULT_CELLSPACING = 2


def display_of(element: Element) -> Display:
    """Resolve the display mode of *element*.

    Hidden inputs and ``display``-suppressed structural tags map to
    :data:`Display.NONE` so they produce neither geometry nor tokens.
    """
    tag = element.tag
    if tag in _HIDDEN_TAGS:
        return Display.NONE
    if tag == "input" and (element.get("type") or "text").lower() == "hidden":
        return Display.NONE
    if tag == "table":
        return Display.TABLE
    if tag in ("thead", "tbody", "tfoot"):
        return Display.TABLE_ROW_GROUP
    if tag == "tr":
        return Display.TABLE_ROW
    if tag in ("td", "th"):
        return Display.TABLE_CELL
    if tag == "li":
        return Display.LIST_ITEM
    if tag in _BLOCK_TAGS:
        return Display.BLOCK
    if tag in _INLINE_TAGS:
        return Display.INLINE
    # Unknown tags render inline, matching browser behaviour.
    return Display.INLINE


def is_bold_context(element: Element) -> bool:
    """True when text inside *element* renders bold (b/strong/headings/th)."""
    return element.tag in ("b", "strong", "h1", "h2", "h3", "h4", "h5", "h6", "th")
