"""Deterministic HTML layout engine.

Transforms a DOM tree into absolutely-positioned geometry:

* :class:`TextFragment` -- a run of text on a single line, with its box;
* :class:`ControlBox`   -- a form control (input/select/textarea/button);
* per-element bounding boxes for containers such as ``<form>``.

The engine implements the fragment of CSS 2.1 visual formatting that query
forms rely on: block stacking with simple vertical margins, inline flow with
line wrapping and ``<br>``, vertical centering inside line boxes, and table
layout with intrinsic (max-content) column sizing, ``colspan``, cell padding
and cell spacing.  It is deliberately deterministic -- identical input yields
identical coordinates -- because the parser's spatial constraints and the
test suite both assert exact topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.html.dom import Document, Element, Node, Text

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.guard import ResourceGuard
from repro.layout.box import BBox
from repro.layout.fonts import BOLD_FONT, DEFAULT_FONT, FontMetrics
from repro.layout.style import (
    BLOCK_LEFT_INDENT,
    BLOCK_VERTICAL_MARGIN,
    DEFAULT_CELLPADDING,
    DEFAULT_CELLSPACING,
    Display,
    display_of,
    is_bold_context,
)

#: Width of a collapsed inter-word space, px.
SPACE_WIDTH = 5

#: Default body margin, px (matches classic browser default).
BODY_MARGIN = 8

#: Default viewport width, px.
DEFAULT_VIEWPORT_WIDTH = 960

#: Hard ceiling on layout recursion depth.  Elements nested deeper are
#: laid out as empty leaves -- the engine recurses ~3 Python frames per
#: DOM level (block > table > cell), so an uncapped 10k-deep tree would
#: exhaust the interpreter stack long before producing useful geometry.
MAX_LAYOUT_DEPTH = 150


@dataclass(frozen=True)
class TextFragment:
    """A visually contiguous run of text on one line."""

    text: str
    box: BBox
    node: Text
    bold: bool = False
    #: True when the text renders inside an ``<a href>`` hyperlink --
    #: navigation menus are made of these.
    link: bool = False
    #: Identity of the enclosing anchor element (0 when not a link);
    #: fragments of *different* links must not merge into one token.
    link_id: int = 0
    #: Target of an enclosing ``<label for="...">``, or "" -- explicit DOM
    #: evidence associating the text with a named control.
    label_for: str = ""
    #: Identity of the nearest non-inline ancestor; fragments are merged
    #: into one token only within the same container.
    container: int = 0


@dataclass(frozen=True)
class ControlBox:
    """A rendered form control and its bounding box."""

    element: Element
    box: BBox


@dataclass
class LayoutResult:
    """Everything the tokenizer needs from a rendered page."""

    fragments: list[TextFragment] = field(default_factory=list)
    controls: list[ControlBox] = field(default_factory=list)
    element_boxes: dict[int, BBox] = field(default_factory=dict)
    elements_by_id: dict[int, Element] = field(default_factory=dict)
    viewport_width: int = DEFAULT_VIEWPORT_WIDTH
    height: float = 0.0
    #: True when layout stopped early or skipped content (budget breach).
    truncated: bool = False

    def box_of(self, element: Element) -> BBox | None:
        """Bounding box assigned to *element*, if it produced geometry."""
        return self.element_boxes.get(id(element))


# ---------------------------------------------------------------------------
# Intrinsic sizes of form controls
# ---------------------------------------------------------------------------

_TEXT_INPUT_TYPES = frozenset({"text", "password", "search", "email", "tel", "url", ""})
_BUTTON_INPUT_TYPES = frozenset({"submit", "reset", "button"})


def _int_attr(element: Element, name: str, default: int) -> int:
    raw = element.get(name)
    if raw is None:
        return default
    try:
        return max(0, int(str(raw).strip().rstrip("px")))
    except ValueError:
        return default


def control_size(element: Element, font: FontMetrics = DEFAULT_FONT) -> tuple[float, float]:
    """Intrinsic ``(width, height)`` of a form control, in pixels."""
    tag = element.tag
    if tag == "input":
        input_type = (element.get("type") or "text").lower()
        if input_type in _TEXT_INPUT_TYPES:
            size = _int_attr(element, "size", 20)
            return (size * 7 + 8, 22.0)
        if input_type in ("radio", "checkbox"):
            return (13.0, 13.0)
        if input_type in _BUTTON_INPUT_TYPES:
            label = element.get("value") or input_type.capitalize()
            return (font.text_width(label) + 24, 24.0)
        if input_type == "image":
            return (
                float(_int_attr(element, "width", 60)),
                float(_int_attr(element, "height", 22)),
            )
        if input_type == "file":
            return (210.0, 22.0)
        # Unknown input types render like text boxes.
        return (148.0, 22.0)
    if tag == "select":
        options = [
            option.text_content().strip() for option in element.find_all("option")
        ]
        longest = max((font.text_width(text) for text in options), default=30.0)
        width = longest + 24  # room for the drop-down arrow
        size = _int_attr(element, "size", 1)
        if size > 1:
            visible = min(size, max(1, len(options)))
            return (width, visible * font.line_height + 4)
        return (width, 22.0)
    if tag == "textarea":
        cols = _int_attr(element, "cols", 20)
        rows = _int_attr(element, "rows", 2)
        return (cols * 7 + 8, rows * font.line_height + 6)
    if tag == "button":
        label = element.text_content().strip() or "Button"
        return (font.text_width(label) + 24, 24.0)
    if tag == "img":
        return (
            float(_int_attr(element, "width", 24)),
            float(_int_attr(element, "height", 24)),
        )
    return (0.0, 0.0)


def _container_of(node: Node) -> int:
    """Identity of the nearest non-inline ancestor (merge boundary)."""
    ancestor = node.parent
    while isinstance(ancestor, Element):
        if display_of(ancestor) is not Display.INLINE:
            return id(ancestor)
        ancestor = ancestor.parent
    return id(ancestor) if ancestor is not None else 0


def _link_id_of(node: Node) -> int:
    """Identity of the enclosing ``<a href>``, or 0 outside links."""
    ancestor = node.parent
    while isinstance(ancestor, Element):
        if ancestor.tag == "a" and ancestor.has_attribute("href"):
            return id(ancestor)
        ancestor = ancestor.parent
    return 0


def _label_for_of(node: Node) -> str:
    """The ``for`` target of an enclosing ``<label>``, or ""."""
    ancestor = node.parent
    while isinstance(ancestor, Element):
        if ancestor.tag == "label":
            return ancestor.get("for") or ""
        ancestor = ancestor.parent
    return ""


def is_control(element: Element) -> bool:
    """True for elements that render as atomic form controls."""
    if element.tag in ("select", "textarea", "button"):
        return True
    if element.tag == "input":
        return (element.get("type") or "text").lower() != "hidden"
    return False


# ---------------------------------------------------------------------------
# Inline flow
# ---------------------------------------------------------------------------


@dataclass
class _LineItem:
    kind: str  # "text" | "control" | "img"
    width: float
    height: float
    x: float  # relative to line start
    text: str = ""
    node: Text | None = None
    element: Element | None = None
    bold: bool = False
    link_id: int = 0
    label_for: str = ""
    container: int = 0


class _InlineFlow:
    """Lays out a run of inline content with wrapping.

    Items accumulate into the current line; on flush, the line height is the
    tallest item's height and each item is vertically centered.
    """

    def __init__(
        self,
        result: LayoutResult,
        x: float,
        y: float,
        width: float,
        font: FontMetrics,
    ):
        self._result = result
        self._left = x
        self._width = max(width, 1.0)
        self._y = y
        self._font = font
        self._items: list[_LineItem] = []
        self._cursor = 0.0
        self._pending_space = False
        self._produced = False

    # -- adding content -------------------------------------------------------

    def add_text(
        self,
        node: Text,
        bold: bool,
        container: int,
        link_id: int = 0,
        label_for: str = "",
    ) -> None:
        font = BOLD_FONT if bold else self._font
        data = node.data
        index = 0
        length = len(data)
        while index < length:
            if data[index].isspace():
                self._pending_space = True
                index += 1
                continue
            end = index
            while end < length and not data[end].isspace():
                end += 1
            self._add_word(data[index:end], node, bold, font, container,
                           link_id, label_for)
            index = end

    def _add_word(
        self,
        word: str,
        node: Text,
        bold: bool,
        font: FontMetrics,
        container: int,
        link_id: int = 0,
        label_for: str = "",
    ) -> None:
        word_width = font.text_width(word)
        space = SPACE_WIDTH if (self._pending_space and self._items) else 0.0
        if (
            self._items
            and self._cursor + space + word_width > self._width
            and word_width <= self._width
        ):
            self.flush_line()
            space = 0.0
        last = self._items[-1] if self._items else None
        if (
            last is not None
            and last.kind == "text"
            and last.node is node
            and last.bold == bold
        ):
            joiner = " " if self._pending_space else ""
            last.text += joiner + word
            joiner_width = SPACE_WIDTH if joiner else 0.0
            last.width += joiner_width + word_width
            self._cursor += joiner_width + word_width
        else:
            self._items.append(
                _LineItem(
                    kind="text",
                    width=word_width,
                    height=float(font.line_height),
                    x=self._cursor + space,
                    text=word,
                    node=node,
                    bold=bold,
                    link_id=link_id,
                    label_for=label_for,
                    container=container,
                )
            )
            self._cursor += space + word_width
        self._pending_space = False

    def add_atom(self, element: Element, width: float, height: float) -> None:
        space = SPACE_WIDTH if (self._pending_space and self._items) else 0.0
        if self._items and self._cursor + space + width > self._width:
            self.flush_line()
            space = 0.0
        kind = "control" if is_control(element) else "img"
        self._items.append(
            _LineItem(
                kind=kind,
                width=width,
                height=height,
                x=self._cursor + space,
                element=element,
            )
        )
        self._cursor += space + width
        self._pending_space = False

    def line_break(self) -> None:
        """Explicit ``<br>``: end the line even if it is empty."""
        if self._items:
            self.flush_line()
        else:
            self._y += self._font.line_height
            self._produced = True
        self._pending_space = False

    # -- emitting geometry -------------------------------------------------------

    def flush_line(self) -> None:
        if not self._items:
            return
        line_height = max(item.height for item in self._items)
        line_height = max(line_height, float(self._font.line_height))
        top = self._y
        for item in self._items:
            item_top = top + (line_height - item.height) / 2.0
            box = BBox(
                self._left + item.x,
                self._left + item.x + item.width,
                item_top,
                item_top + item.height,
            )
            if item.kind == "text":
                assert item.node is not None
                self._result.fragments.append(
                    TextFragment(
                        text=item.text,
                        box=box,
                        node=item.node,
                        bold=item.bold,
                        link=item.link_id != 0,
                        link_id=item.link_id,
                        label_for=item.label_for,
                        container=item.container,
                    )
                )
            else:
                assert item.element is not None
                if item.kind == "control":
                    self._result.controls.append(ControlBox(item.element, box))
                self._result.element_boxes[id(item.element)] = box
                self._result.elements_by_id[id(item.element)] = item.element
        self._y = top + line_height
        self._items = []
        self._cursor = 0.0
        self._produced = True

    def finish(self) -> float:
        """Flush remaining content and return the y just below the run."""
        self.flush_line()
        return self._y

    @property
    def produced(self) -> bool:
        return self._produced


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class LayoutEngine:
    """Renders a DOM tree into a :class:`LayoutResult`."""

    def __init__(
        self,
        viewport_width: int = DEFAULT_VIEWPORT_WIDTH,
        font: FontMetrics = DEFAULT_FONT,
        max_depth: int = MAX_LAYOUT_DEPTH,
    ):
        self.viewport_width = viewport_width
        self.font = font
        self.max_depth = max_depth
        self._depth_cap = max_depth
        self._guard: ResourceGuard | None = None
        self._stopped = False

    # -- public API -------------------------------------------------------------

    def layout(
        self, document: Document, guard: ResourceGuard | None = None
    ) -> LayoutResult:
        """Lay out *document* and return all geometry.

        With a *guard*, the engine checks the wall-clock deadline at
        element boundaries and stops producing geometry once it passes
        (``result.truncated`` is set); elements nested beyond the depth
        cap are laid out as empty leaves either way.
        """
        self._guard = guard
        self._stopped = False
        depth_cap = self.max_depth
        if guard is not None and guard.limits.max_depth is not None:
            depth_cap = min(depth_cap, guard.limits.max_depth)
        self._depth_cap = depth_cap
        result = LayoutResult(viewport_width=self.viewport_width)
        root: Node = document.body or document
        content_width = self.viewport_width - 2 * BODY_MARGIN
        bottom = self._layout_block_children(
            root, BODY_MARGIN, BODY_MARGIN, content_width, result, bold=False,
            depth=0,
        )
        result.height = bottom
        self._assign_container_boxes(root, result)
        if self._stopped:
            result.truncated = True
        return result

    def _over_depth(self, depth: int, result: LayoutResult) -> bool:
        if depth <= self._depth_cap:
            return False
        result.truncated = True
        if self._guard is not None:
            self._guard.admit_depth(depth, "layout")
        return True

    def _deadline_hit(self) -> bool:
        if self._stopped:
            return True
        if self._guard is not None and self._guard.tick("layout", stride=128):
            self._stopped = True
            return True
        return False

    # -- block formatting ---------------------------------------------------------

    def _layout_block_children(
        self,
        node: Node,
        x: float,
        y: float,
        width: float,
        result: LayoutResult,
        bold: bool,
        depth: int = 0,
    ) -> float:
        """Lay out *node*'s children in a block context; return the new y."""
        if self._over_depth(depth, result):
            return y
        inline_buffer: list[tuple[Node, bool]] = []

        def flush_inline(cursor_y: float) -> float:
            nonlocal inline_buffer
            if not inline_buffer:
                return cursor_y
            flow = _InlineFlow(result, x, cursor_y, width, self.font)
            for item, item_bold in inline_buffer:
                self._flow_inline(item, flow, item_bold, result, depth + 1)
            inline_buffer = []
            return flow.finish()

        for child in node.children:
            if self._deadline_hit():
                break
            if isinstance(child, Text):
                if child.data.strip():
                    inline_buffer.append((child, bold))
                elif inline_buffer:
                    inline_buffer.append((child, bold))
                continue
            if not isinstance(child, Element):
                continue
            display = display_of(child)
            if display is Display.NONE:
                continue
            if display is Display.INLINE:
                inline_buffer.append((child, bold or is_bold_context(child)))
                continue
            # Block-level child: flush pending inline content first.
            y = flush_inline(y)
            y = self._layout_block_element(
                child, x, y, width, result, bold, depth + 1
            )
        y = flush_inline(y)
        return y

    def _layout_block_element(
        self,
        element: Element,
        x: float,
        y: float,
        width: float,
        result: LayoutResult,
        bold: bool,
        depth: int = 0,
    ) -> float:
        display = display_of(element)
        tag = element.tag
        margin = BLOCK_VERTICAL_MARGIN.get(tag, 0)
        indent = BLOCK_LEFT_INDENT.get(tag, 0)
        y += margin
        top = y
        child_bold = bold or is_bold_context(element)

        if tag == "hr":
            result.element_boxes[id(element)] = BBox(x, x + width, y, y + 2)
            result.elements_by_id[id(element)] = element
            return y + 2 + margin

        if display is Display.TABLE:
            y = self._layout_table(
                element, x + indent, y, width - indent, result, child_bold, depth
            )
        elif display in (Display.TABLE_ROW, Display.TABLE_CELL, Display.TABLE_ROW_GROUP):
            # Malformed table parts outside a table: treat as plain blocks.
            y = self._layout_block_children(
                element, x + indent, y, width - indent, result, child_bold, depth
            )
        elif display is Display.LIST_ITEM:
            y = self._layout_block_children(
                element, x + 16, y, width - 16, result, child_bold, depth
            )
        else:
            y = self._layout_block_children(
                element, x + indent, y, width - indent, result, child_bold, depth
            )

        if y > top:
            result.element_boxes[id(element)] = BBox(x, x + width, top, y)
            result.elements_by_id[id(element)] = element
        return y + margin

    def _flow_inline(
        self,
        node: Node,
        flow: _InlineFlow,
        bold: bool,
        result: LayoutResult,
        depth: int = 0,
    ) -> None:
        """Feed an inline-level node (and descendants) into the line flow."""
        if self._over_depth(depth, result):
            return
        if isinstance(node, Text):
            flow.add_text(node, bold, _container_of(node),
                          _link_id_of(node), _label_for_of(node))
            return
        if not isinstance(node, Element):
            return
        display = display_of(node)
        if display is Display.NONE:
            return
        if node.tag == "br":
            flow.line_break()
            return
        if is_control(node) or node.tag == "img":
            width, height = control_size(node, self.font)
            flow.add_atom(node, width, height)
            return
        child_bold = bold or is_bold_context(node)
        for child in node.children:
            self._flow_inline(child, flow, child_bold, result, depth + 1)

    # -- table formatting -----------------------------------------------------

    def _layout_table(
        self,
        table: Element,
        x: float,
        y: float,
        available_width: float,
        result: LayoutResult,
        bold: bool,
        depth: int = 0,
    ) -> float:
        if self._over_depth(depth, result):
            return y
        rows = self._table_rows(table)
        if not rows:
            return y
        padding = _int_attr(table, "cellpadding", DEFAULT_CELLPADDING)
        spacing = _int_attr(table, "cellspacing", DEFAULT_CELLSPACING)

        column_widths = self._column_widths(
            rows, padding, available_width, spacing, depth
        )
        column_count = len(column_widths)
        positioned = self._grid_positions(rows)
        top = y
        y += spacing
        for placed in positioned:
            if self._deadline_hit():
                break
            row_top = y
            cell_bottoms: list[float] = []
            for cell, column, span, rowspan in placed:
                if column >= column_count:
                    break
                span = min(span, max(1, column_count - column))
                cell_x = (
                    x + spacing
                    + sum(column_widths[:column]) + column * spacing
                )
                cell_width = (
                    sum(column_widths[column : column + span])
                    + (span - 1) * spacing
                )
                content_x = cell_x + padding
                content_width = max(1.0, cell_width - 2 * padding)
                cell_bold = bold or is_bold_context(cell)
                bottom = self._layout_block_children(
                    cell, content_x, row_top + padding, content_width, result,
                    cell_bold, depth + 1,
                )
                bottom += padding
                if rowspan == 1:
                    cell_bottoms.append(bottom)
                result.element_boxes[id(cell)] = BBox(
                    cell_x, cell_x + cell_width, row_top, bottom
                )
                result.elements_by_id[id(cell)] = cell
            row_height = max(
                (b - row_top for b in cell_bottoms), default=float(self.font.line_height)
            )
            # Re-box single-row cells of the row to the common row height.
            for cell, _column, _span, rowspan in placed:
                box = result.element_boxes.get(id(cell))
                if box is not None and box.top == row_top and rowspan == 1:
                    result.element_boxes[id(cell)] = BBox(
                        box.left, box.right, box.top, row_top + row_height
                    )
            y = row_top + row_height + spacing
        result.element_boxes[id(table)] = BBox(
            x, x + sum(column_widths) + (len(column_widths) + 1) * spacing, top, y
        )
        result.elements_by_id[id(table)] = table
        return y

    @staticmethod
    def _grid_positions(
        rows: list[list[Element]],
    ) -> list[list[tuple[Element, int, int, int]]]:
        """Assign each cell its (column, colspan, rowspan) accounting for
        rowspan blocking from earlier rows."""
        positioned: list[list[tuple[Element, int, int, int]]] = []
        blocked: dict[int, int] = {}
        for row in rows:
            placed: list[tuple[Element, int, int, int]] = []
            column = 0
            for cell in row:
                while blocked.get(column, 0) > 0:
                    column += 1
                span = max(1, _int_attr(cell, "colspan", 1))
                rowspan = max(1, _int_attr(cell, "rowspan", 1))
                placed.append((cell, column, span, rowspan))
                if rowspan > 1:
                    for blocked_column in range(column, column + span):
                        blocked[blocked_column] = rowspan
                column += span
            positioned.append(placed)
            for blocked_column in list(blocked):
                blocked[blocked_column] -= 1
                if blocked[blocked_column] <= 0:
                    del blocked[blocked_column]
        return positioned

    def _table_rows(self, table: Element) -> list[list[Element]]:
        rows: list[list[Element]] = []
        for child in table.child_elements():
            if child.tag == "tr":
                rows.append(self._row_cells(child))
            elif child.tag in ("thead", "tbody", "tfoot"):
                for grandchild in child.child_elements():
                    if grandchild.tag == "tr":
                        rows.append(self._row_cells(grandchild))
        return [row for row in rows if row]

    @staticmethod
    def _row_cells(row: Element) -> list[Element]:
        return [cell for cell in row.child_elements() if cell.tag in ("td", "th")]

    def _column_widths(
        self,
        rows: list[list[Element]],
        padding: int,
        available_width: float,
        spacing: int,
        depth: int = 0,
    ) -> list[float]:
        positioned = self._grid_positions(rows)
        column_count = 0
        for placed in positioned:
            for _cell, column, span, _rowspan in placed:
                column_count = max(column_count, column + span)
        widths = [10.0] * column_count

        # First pass: unspanned cells set base column widths.
        for placed in positioned:
            for cell, column, span, _rowspan in placed:
                if span == 1 and column < column_count:
                    need = self._intrinsic_width(cell, depth + 1) + 2 * padding
                    widths[column] = max(widths[column], need)

        # Second pass: column-spanning cells widen their columns if needed.
        for placed in positioned:
            for cell, column, span, _rowspan in placed:
                if span > 1:
                    upper = min(column + span, column_count)
                    need = self._intrinsic_width(cell, depth + 1) + 2 * padding
                    current = sum(widths[column:upper]) + (upper - column - 1) * spacing
                    if need > current and upper > column:
                        extra = (need - current) / (upper - column)
                        for i in range(column, upper):
                            widths[i] += extra

        total = sum(widths) + (column_count + 1) * spacing
        if total > available_width and total > 0:
            scale = max(0.25, (available_width - (column_count + 1) * spacing) / sum(widths))
            widths = [w * scale for w in widths]
        return widths

    # -- intrinsic (max-content) measurement ------------------------------------

    def _intrinsic_width(self, node: Node, depth: int = 0) -> float:
        """Max-content width of *node* (no wrapping except at ``<br>``)."""
        if depth > self._depth_cap:
            return 0.0
        if isinstance(node, Text):
            lines = node.data.split("\n")
            return max(
                (self.font.text_width(" ".join(line.split())) for line in lines),
                default=0.0,
            )
        if not isinstance(node, Element):
            return 0.0
        display = display_of(node)
        if display is Display.NONE:
            return 0.0
        if is_control(node) or node.tag == "img":
            return control_size(node, self.font)[0]
        if display is Display.TABLE:
            rows = self._table_rows(node)
            padding = _int_attr(node, "cellpadding", DEFAULT_CELLPADDING)
            spacing = _int_attr(node, "cellspacing", DEFAULT_CELLSPACING)
            if not rows:
                return 0.0
            widths = self._column_widths(
                rows, padding, float("inf"), spacing, depth
            )
            return sum(widths) + (len(widths) + 1) * spacing

        # Inline/block container: longest segment between explicit breaks.
        best = 0.0
        current = 0.0
        pending_space = False

        def walk(element: Element, bold: bool, walk_depth: int) -> None:
            nonlocal best, current, pending_space
            if walk_depth > self._depth_cap:
                return
            font = BOLD_FONT if bold else self.font
            for child in element.children:
                if isinstance(child, Text):
                    words = child.data.split()
                    leading_ws = child.data[:1].isspace()
                    trailing_ws = child.data[-1:].isspace() if child.data else False
                    for index, word in enumerate(words):
                        if (index > 0 or leading_ws or pending_space) and current > 0:
                            current += SPACE_WIDTH
                        current += font.text_width(word)
                        pending_space = False
                    if trailing_ws:
                        pending_space = True
                    continue
                if not isinstance(child, Element):
                    continue
                child_display = display_of(child)
                if child_display is Display.NONE:
                    continue
                if child.tag == "br" or child_display not in (Display.INLINE,):
                    # Block boundary: measure it independently.
                    best = max(best, current)
                    current = 0.0
                    pending_space = False
                    if child.tag != "br":
                        best = max(
                            best,
                            self._intrinsic_width(child, depth + walk_depth + 1),
                        )
                    continue
                if is_control(child) or child.tag == "img":
                    if pending_space and current > 0:
                        current += SPACE_WIDTH
                        pending_space = False
                    current += control_size(child, self.font)[0]
                    continue
                walk(child, bold or is_bold_context(child), walk_depth + 1)

        if isinstance(node, Element):
            walk(node, is_bold_context(node), 1)
        best = max(best, current)
        return best

    # -- container boxes ----------------------------------------------------------

    def _assign_container_boxes(self, root: Node, result: LayoutResult) -> None:
        """Give forms and other containers the union box of their contents."""
        for element in root.iter_elements():
            if self._guard is not None and self._guard.tick("layout", stride=128):
                self._stopped = True
                break
            if id(element) in result.element_boxes:
                continue
            boxes = [
                result.element_boxes[id(descendant)]
                for descendant in element.iter_elements()
                if id(descendant) in result.element_boxes
            ]
            if boxes:
                union = boxes[0]
                for box in boxes[1:]:
                    union = union.union(box)
                result.element_boxes[id(element)] = union
                result.elements_by_id[id(element)] = element


def layout_document(
    document: Document,
    viewport_width: int = DEFAULT_VIEWPORT_WIDTH,
    guard: ResourceGuard | None = None,
) -> LayoutResult:
    """Lay out *document* with the default engine configuration."""
    return LayoutEngine(viewport_width=viewport_width).layout(document, guard=guard)
