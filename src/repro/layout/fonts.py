"""Font metrics for text measurement.

The layout engine needs the pixel width of text runs to place tokens.  We
model a proportional UI font (13 px body text, as classic browsers default
to) with a per-character advance-width table.  The exact values do not have
to match any real font -- only the *topology* of the rendered form matters
to the parser -- but a proportional table keeps layouts looking like real
renderings (short labels are narrow, option strings are wide).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Advance widths (px) for the modelled 13 px proportional font.
_NARROW = set("iljt!.,:;'|()[]")
_MEDIUM_NARROW = set("frI-\" ")
_WIDE = set("mwMW@%")
_UPPER = set("ABCDEFGHJKLNOPQRSTUVXYZ")


def _char_width(ch: str) -> int:
    if ch in _NARROW:
        return 4
    if ch in _MEDIUM_NARROW:
        return 5
    if ch in _WIDE:
        return 11
    if ch in _UPPER:
        return 9
    if ch.isdigit():
        return 7
    return 7


@dataclass(frozen=True)
class FontMetrics:
    """Measures text in a simple proportional font.

    Attributes:
        line_height: Vertical extent of one line box, in pixels.
        ascent: Distance from the line top to the text baseline.
        scale: Multiplier applied to all advance widths (e.g. headings).
    """

    line_height: int = 19
    ascent: int = 15
    scale: float = 1.0
    _cache: dict[str, float] = field(default_factory=dict, compare=False, repr=False)

    def char_width(self, ch: str) -> float:
        """Advance width of a single character."""
        return _char_width(ch) * self.scale

    def text_width(self, text: str) -> float:
        """Total advance width of *text* (no kerning, no ligatures)."""
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        width = sum(_char_width(ch) for ch in text) * self.scale
        if len(text) < 64:
            self._cache[text] = width
        return width

    def fit_chars(self, text: str, max_width: float) -> int:
        """How many leading characters of *text* fit in *max_width* pixels."""
        used = 0.0
        for index, ch in enumerate(text):
            used += self.char_width(ch)
            if used > max_width:
                return index
        return len(text)


#: Metrics for ordinary form text.
DEFAULT_FONT = FontMetrics()

#: Metrics for emphasized/heading text (forms often bold their section titles).
BOLD_FONT = FontMetrics(scale=1.1)
