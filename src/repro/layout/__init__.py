"""Layout substrate: renders a DOM tree into absolute bounding boxes.

The original system obtained element positions from Internet Explorer's
rendering engine; the best-effort parser consumes nothing but token types
and bounding boxes.  This package substitutes a deterministic layout engine
supporting the HTML constructs query forms actually use: block stacking,
inline flow with line wrapping, ``<br>``, tables (including nesting and
``colspan``), and intrinsic sizes for every form control type.

Determinism matters: tests assert exact topology (left-of, above, aligned)
against these coordinates.
"""

from repro.layout.box import BBox
from repro.layout.engine import ControlBox, LayoutEngine, LayoutResult, TextFragment, layout_document
from repro.layout.fonts import FontMetrics, DEFAULT_FONT
from repro.layout.style import Display, display_of

__all__ = [
    "BBox",
    "ControlBox",
    "DEFAULT_FONT",
    "Display",
    "FontMetrics",
    "LayoutEngine",
    "LayoutResult",
    "TextFragment",
    "display_of",
    "layout_document",
]
