"""Axis-aligned bounding boxes.

The paper records every token's position as a bounding box
``pos = (left, right, top, bottom)`` (see Figure 5, where the text token
"Author" has ``pos = (10, 40, 10, 20)``).  :class:`BBox` adopts the same
convention and supplies the geometric algebra the spatial relations and the
layout engine need: union, intersection, overlap extents, gaps, and
center-to-center distances.

Coordinates grow rightward (x) and downward (y), like screen coordinates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class BBox:
    """An axis-aligned rectangle ``(left, right, top, bottom)``.

    A valid box has ``left <= right`` and ``top <= bottom``; zero-area boxes
    (points, segments) are permitted because empty text runs and hidden
    controls can legitimately collapse.
    """

    left: float
    right: float
    top: float
    bottom: float

    def __post_init__(self) -> None:
        if self.right < self.left:
            raise ValueError(f"right < left in {self!r}")
        if self.bottom < self.top:
            raise ValueError(f"bottom < top in {self!r}")

    # -- basic measures -----------------------------------------------------

    @property
    def width(self) -> float:
        return self.right - self.left

    @property
    def height(self) -> float:
        return self.bottom - self.top

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center_x(self) -> float:
        return (self.left + self.right) / 2.0

    @property
    def center_y(self) -> float:
        return (self.top + self.bottom) / 2.0

    @property
    def center(self) -> tuple[float, float]:
        return (self.center_x, self.center_y)

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(left, right, top, bottom)``, the paper's ``pos`` order."""
        return (self.left, self.right, self.top, self.bottom)

    # -- predicates -----------------------------------------------------------

    def intersects(self, other: "BBox") -> bool:
        """True if the boxes share any point (touching edges count)."""
        return (
            self.left <= other.right
            and other.left <= self.right
            and self.top <= other.bottom
            and other.top <= self.bottom
        )

    def contains(self, other: "BBox") -> bool:
        """True if *other* lies entirely within this box."""
        return (
            self.left <= other.left
            and self.right >= other.right
            and self.top <= other.top
            and self.bottom >= other.bottom
        )

    def contains_point(self, x: float, y: float) -> bool:
        return self.left <= x <= self.right and self.top <= y <= self.bottom

    # -- overlap extents -----------------------------------------------------

    def horizontal_overlap(self, other: "BBox") -> float:
        """Length of the shared x-interval (0 when disjoint)."""
        return max(0.0, min(self.right, other.right) - max(self.left, other.left))

    def vertical_overlap(self, other: "BBox") -> float:
        """Length of the shared y-interval (0 when disjoint)."""
        return max(0.0, min(self.bottom, other.bottom) - max(self.top, other.top))

    # -- gaps and distances -----------------------------------------------------

    def horizontal_gap(self, other: "BBox") -> float:
        """Horizontal separation between the boxes (0 if x-ranges overlap)."""
        if self.right < other.left:
            return other.left - self.right
        if other.right < self.left:
            return self.left - other.right
        return 0.0

    def vertical_gap(self, other: "BBox") -> float:
        """Vertical separation between the boxes (0 if y-ranges overlap)."""
        if self.bottom < other.top:
            return other.top - self.bottom
        if other.bottom < self.top:
            return self.top - other.bottom
        return 0.0

    def gap(self, other: "BBox") -> float:
        """Euclidean distance between the closest points of the two boxes."""
        return math.hypot(self.horizontal_gap(other), self.vertical_gap(other))

    def center_distance(self, other: "BBox") -> float:
        """Euclidean distance between box centers."""
        return math.hypot(
            self.center_x - other.center_x, self.center_y - other.center_y
        )

    # -- combining -----------------------------------------------------------

    def union(self, other: "BBox") -> "BBox":
        """Smallest box containing both boxes."""
        return BBox(
            min(self.left, other.left),
            max(self.right, other.right),
            min(self.top, other.top),
            max(self.bottom, other.bottom),
        )

    def intersection(self, other: "BBox") -> "BBox | None":
        """The shared rectangle, or ``None`` when the boxes are disjoint."""
        left = max(self.left, other.left)
        right = min(self.right, other.right)
        top = max(self.top, other.top)
        bottom = min(self.bottom, other.bottom)
        if left > right or top > bottom:
            return None
        return BBox(left, right, top, bottom)

    def translate(self, dx: float, dy: float) -> "BBox":
        """A copy of this box moved by ``(dx, dy)``."""
        return BBox(self.left + dx, self.right + dx, self.top + dy, self.bottom + dy)

    def inflate(self, margin: float) -> "BBox":
        """A copy grown by *margin* on every side (clamped to validity)."""
        left = self.left - margin
        right = self.right + margin
        top = self.top - margin
        bottom = self.bottom + margin
        if right < left:
            left = right = (left + right) / 2.0
        if bottom < top:
            top = bottom = (top + bottom) / 2.0
        return BBox(left, right, top, bottom)


def union_all(boxes: list[BBox]) -> BBox:
    """Bounding box of a non-empty list of boxes (single pass, no
    intermediate box objects)."""
    if not boxes:
        raise ValueError("union_all() requires at least one box")
    first = boxes[0]
    if len(boxes) == 1:
        return first
    left, right, top, bottom = first.left, first.right, first.top, first.bottom
    for box in boxes[1:]:
        if box.left < left:
            left = box.left
        if box.right > right:
            right = box.right
        if box.top < top:
            top = box.top
        if box.bottom > bottom:
            bottom = box.bottom
    return BBox(left, right, top, bottom)


def columns_of(boxes: "list[BBox]") -> tuple[
    list[float], list[float], list[float], list[float]
]:
    """Export *boxes* as four parallel coordinate columns.

    The columnar form (``left``, ``right``, ``top``, ``bottom`` lists whose
    row *i* describes ``boxes[i]``) is what the vectorized spatial kernel
    consumes: row ids are stable by construction, so a mask over the
    columns indexes straight back into the originating sequence.
    """
    left: list[float] = []
    right: list[float] = []
    top: list[float] = []
    bottom: list[float] = []
    for box in boxes:
        left.append(box.left)
        right.append(box.right)
        top.append(box.top)
        bottom.append(box.bottom)
    return left, right, top, bottom
