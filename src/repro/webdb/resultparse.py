"""Parsing result pages back into records.

The other half of talking to a deep-Web source: after submitting a query,
the mediator must read the *result page*.  Full wrapper induction is its
own literature (the paper's Section 2 cites RoadRunner and wrapper
induction); here we implement the structured-table case that
:meth:`~repro.webdb.source.SimulatedSource.result_page` produces -- a
header row of attribute labels over data rows -- using the same HTML
substrate as the extractor.
"""

from __future__ import annotations

from repro.html.dom import Document, Element
from repro.html.parser import parse_html
from repro.webdb.records import Record


def _cell_text(cell: Element) -> str:
    return " ".join(cell.text_content().split())


def parse_result_page(html: str) -> tuple[int, list[Record]]:
    """Parse a result page into ``(total_count, records)``.

    ``total_count`` is the figure announced in the page heading (which may
    exceed the number of listed rows when the source truncates); records
    map header labels to cell text.
    """
    document = parse_html(html)
    total = _announced_total(document)
    table = document.find("table")
    if table is None:
        return total, []
    rows = [
        row for row in table.find_all("tr")
    ]
    if not rows:
        return total, []
    header = [
        _cell_text(cell)
        for cell in rows[0].child_elements()
        if cell.tag in ("th", "td")
    ]
    records: list[Record] = []
    for row in rows[1:]:
        cells = [
            _cell_text(cell)
            for cell in row.child_elements()
            if cell.tag in ("th", "td")
        ]
        record: Record = {}
        for index, label in enumerate(header):
            record[label] = cells[index] if index < len(cells) else ""
        records.append(record)
    return total, records


def _announced_total(document: Document) -> int:
    for heading in document.find_all("h3"):
        text = heading.text_content()
        digits = "".join(ch for ch in text.split(" ")[0] if ch.isdigit())
        if digits:
            return int(digits)
    return 0
