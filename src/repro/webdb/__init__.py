"""Simulated deep-Web sources: databases behind query forms.

The paper's motivation is large-scale integration of Web *databases*: the
form is only the entrance, and a capability description is useful exactly
insofar as it lets a mediator pose queries.  This package closes that loop
offline: a :class:`SimulatedSource` owns a synthetic record database,
serves the generated query-form HTML, and answers submitted form
parameters by evaluating the form's query semantics over its records --
a stand-in for the live deep-Web sources behind TEL-8.

Together with :mod:`repro.query`, this enables the end-to-end experiment
the paper implies but could not run offline: extract a source's
capabilities from its HTML alone, translate a user query through the
extracted model, submit, and check that the right records come back.
"""

from repro.webdb.records import Record, generate_records
from repro.webdb.source import ResultPage, SimulatedSource, Submission

__all__ = [
    "Record",
    "ResultPage",
    "SimulatedSource",
    "Submission",
    "generate_records",
]
