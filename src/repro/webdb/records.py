"""Synthetic record databases for the simulated deep-Web sources.

Each record maps attribute labels (the domain vocabulary's labels) to
values whose types follow the attribute kind: free text for ``text``
attributes, one of the enumerated values for ``enum``, a number for
``range``, a ``(month, day, year)`` triple for ``date``, and a boolean
for ``flag``.  Generation is seed-deterministic.
"""

from __future__ import annotations

import random
from typing import Any

from repro.datasets.domains import AttributeSpec, DomainSpec

#: A database row: attribute label → value.
Record = dict[str, Any]

_FIRST_NAMES = (
    "Alice", "Carlos", "Diana", "Erik", "Fatima", "George", "Hana",
    "Igor", "Julia", "Kwame", "Laura", "Miguel", "Nadia", "Oscar",
    "Priya", "Quinn", "Rosa", "Tom", "Uma", "Victor", "Wen", "Yuki",
)
_LAST_NAMES = (
    "Anders", "Baker", "Chen", "Diaz", "Evans", "Fischer", "Garcia",
    "Huang", "Ivanov", "Jones", "Kim", "Lopez", "Meyer", "Novak",
    "Okafor", "Park", "Quist", "Rossi", "Silva", "Tanaka", "Weber",
    "Clancy",
)
_NOUNS = (
    "river", "garden", "night", "city", "mountain", "summer", "shadow",
    "harbor", "winter", "island", "forest", "road", "storm", "light",
    "dream", "stone", "valley", "ocean", "journey", "secret",
)
_MONTHS = ("January", "February", "March", "April", "May", "June", "July",
           "August", "September", "October", "November", "December")


def _text_value(spec: AttributeSpec, rng: random.Random) -> str:
    """A plausible free-text value for *spec* (name-ish or title-ish)."""
    label = spec.label.lower()
    if any(word in label for word in ("author", "artist", "director",
                                      "actor", "name", "company")):
        return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"
    if any(word in label for word in ("city", "from", "to", "location",
                                      "pick-up", "drop-off")):
        return rng.choice(
            ("Chicago", "Boston", "Denver", "Seattle", "Austin", "Miami",
             "Portland", "Phoenix")
        )
    if "zip" in label:
        return f"{rng.randint(10000, 99999)}"
    if "isbn" in label:
        return "".join(str(rng.randint(0, 9)) for _ in range(10))
    words = rng.sample(_NOUNS, k=rng.randint(2, 4))
    return " ".join(words).capitalize()


def _value_for(spec: AttributeSpec, rng: random.Random) -> Any:
    if spec.kind == "text":
        return _text_value(spec, rng)
    if spec.kind == "enum":
        return rng.choice(spec.values) if spec.values else ""
    if spec.kind == "range":
        low, high = spec.numeric_range
        if high <= low:
            high = low + 1
        value = rng.uniform(low, high)
        return round(value, 2)
    if spec.kind == "date":
        return (
            rng.choice(_MONTHS),
            rng.randint(1, 28),
            rng.randint(2004, 2006),
        )
    if spec.kind == "flag":
        return rng.random() < 0.5
    raise ValueError(f"unknown kind {spec.kind!r}")  # pragma: no cover


def generate_records(
    domain: DomainSpec, count: int, seed: int
) -> list[Record]:
    """Generate *count* records for *domain*, deterministically."""
    rng = random.Random(seed)
    records: list[Record] = []
    for _ in range(count):
        record: Record = {}
        for spec in domain.attributes:
            record[spec.label] = _value_for(spec, rng)
        records.append(record)
    return records
