"""A simulated deep-Web source: form + database + query semantics.

``SimulatedSource`` plays the role of one live source: it serves the
query-form HTML produced by the dataset generator, owns a synthetic
record table, and implements ``submit(params) -> records`` by evaluating
the *form's* query semantics (carried by the ground-truth conditions'
bindings) over the records.  The extractor never sees the ground truth --
it works from the HTML alone, exactly as against a real site.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.datasets.domains import DOMAINS, DomainSpec
from repro.datasets.generator import GeneratedSource, SourceGenerator
from repro.semantics.condition import Condition
from repro.semantics.matching import normalize_attribute
from repro.webdb.records import Record, generate_records

#: Submitted form parameters.  Multi-valued fields (checkbox groups,
#: multi-selects) carry several values, so every value is a list.
Submission = dict[str, list[str]]

_NUMBER_RE = re.compile(r"-?\d+(?:\.\d+)?")


def _numeric(text: str) -> float | None:
    """Parse the numeric payload of a form value ("$5,000" → 5000.0)."""
    cleaned = text.replace(",", "")
    match = _NUMBER_RE.search(cleaned)
    return float(match.group(0)) if match else None


def _text_matches(operator: str, needle: str, haystack: str) -> bool:
    """Apply a text operator; unknown wordings default to containment."""
    needle_cf = needle.casefold().strip()
    haystack_cf = haystack.casefold()
    if not needle_cf:
        return True
    lowered = operator.casefold()
    if "exact" in lowered:
        return haystack_cf == needle_cf
    if "start" in lowered or "begin" in lowered:
        return haystack_cf.startswith(needle_cf)
    if "all" in lowered and "word" in lowered:
        return all(word in haystack_cf for word in needle_cf.split())
    if "any" in lowered and "word" in lowered:
        return any(word in haystack_cf for word in needle_cf.split())
    return needle_cf in haystack_cf


def _is_placeholder(label: str) -> bool:
    """Placeholder options ("Any", "All subjects") impose no constraint."""
    return label.casefold().startswith(("any", "all")) or not label.strip()


@dataclass
class ResultPage:
    """The response to one form submission."""

    records: list[Record]
    html: str


class SimulatedSource:
    """One deep-Web source: form HTML in front, record table behind."""

    def __init__(
        self,
        generated: GeneratedSource,
        records: list[Record] | None = None,
        record_count: int = 200,
    ):
        self.generated = generated
        self.domain: DomainSpec = DOMAINS[generated.domain]
        if records is None:
            records = generate_records(
                self.domain, record_count, seed=generated.seed + 777
            )
        self.records = records
        self._conditions = list(generated.truth)

    # -- construction helpers ----------------------------------------------------

    @classmethod
    def create(
        cls, domain_name: str, seed: int, record_count: int = 200
    ) -> "SimulatedSource":
        """Build a source for *domain_name* from a single seed."""
        generated = SourceGenerator(DOMAINS[domain_name]).generate(seed)
        return cls(generated, record_count=record_count)

    # -- the public face a crawler sees ------------------------------------------

    @property
    def html(self) -> str:
        """The query-interface page (all the extractor may look at)."""
        return self.generated.html

    def submit(self, params: Submission) -> list[Record]:
        """Answer a form submission: records satisfying every constraint."""
        return [
            record
            for record in self.records
            if all(
                self._satisfies(condition, params, record)
                for condition in self._conditions
            )
        ]

    def result_page(self, params: Submission) -> ResultPage:
        """Submit and render an HTML result listing."""
        records = self.submit(params)
        rows = []
        attributes = [spec.label for spec in self.domain.attributes[:5]]
        header = "".join(f"<th>{label}</th>" for label in attributes)
        for record in records[:50]:
            cells = "".join(
                f"<td>{record.get(label, '')}</td>" for label in attributes
            )
            rows.append(f"<tr>{cells}</tr>")
        html = (
            "<html><body>"
            f"<h3>{len(records)} results</h3>"
            f"<table><tr>{header}</tr>{''.join(rows)}</table>"
            "</body></html>"
        )
        return ResultPage(records=records, html=html)

    # -- query semantics -----------------------------------------------------------

    def _satisfies(
        self, condition: Condition, params: Submission, record: Record
    ) -> bool:
        kind = condition.domain.kind
        if kind == "text":
            return self._satisfies_text(condition, params, record)
        if kind == "enum":
            return self._satisfies_enum(condition, params, record)
        if kind == "range":
            return self._satisfies_range(condition, params, record)
        if kind == "datetime":
            return self._satisfies_date(condition, params, record)
        return True  # pragma: no cover

    def _record_value(self, condition: Condition) -> str | None:
        """Which record attribute the condition constrains."""
        wanted = normalize_attribute(condition.attribute)
        for spec in self.domain.attributes:
            if normalize_attribute(spec.label) == wanted:
                return spec.label
        return None

    def _satisfies_text(
        self, condition: Condition, params: Submission, record: Record
    ) -> bool:
        text_field = condition.fields[0] if condition.fields else None
        if text_field is None:
            return True
        values = params.get(text_field, [])
        needle = values[0] if values else ""
        if not needle.strip():
            return True
        operator = condition.operators[0] if condition.operators else "contains"
        # An operator choice submitted through the mode field overrides.
        for label, mode_field, mode_value in condition.operator_bindings:
            if mode_value in params.get(mode_field, []):
                operator = label
                break
        label = self._record_value(condition)
        if label is None:
            # A bare keyword box searches the whole record.
            haystack = " ".join(str(v) for v in record.values())
            return _text_matches(operator, needle, haystack)
        return _text_matches(operator, needle, str(record.get(label, "")))

    def _satisfies_enum(
        self, condition: Condition, params: Submission, record: Record
    ) -> bool:
        chosen: list[str] = []
        for label, bind_field, bind_value in condition.value_bindings:
            if bind_value in params.get(bind_field, []):
                chosen.append(label)
        if not chosen or all(_is_placeholder(label) for label in chosen):
            return True
        label_attr = self._record_value(condition)
        if label_attr is None:
            # A bare enumeration: the chosen *values* identify the record
            # attribute -- a checked flag ("In stock only") or a value of
            # some enumerated attribute ("Round trip" → Trip type).
            return self._satisfies_bare_enum(chosen, record)
        record_value = str(record.get(label_attr, ""))
        return any(
            record_value.casefold() == choice.casefold() for choice in chosen
        )

    def _satisfies_bare_enum(self, chosen: list[str], record: Record) -> bool:
        for choice in chosen:
            if _is_placeholder(choice):
                continue
            choice_cf = normalize_attribute(choice)
            matched = False
            for spec in self.domain.attributes:
                if spec.kind == "flag" and normalize_attribute(
                    spec.label
                ) == choice_cf:
                    if not record.get(spec.label):
                        return False
                    matched = True
                    break
                if spec.kind == "enum" and any(
                    normalize_attribute(value) == choice_cf
                    for value in spec.values
                ):
                    if normalize_attribute(
                        str(record.get(spec.label, ""))
                    ) != choice_cf:
                        return False
                    matched = True
                    break
            if not matched:
                continue  # unknown value: no constraint derivable
        return True

    def _satisfies_range(
        self, condition: Condition, params: Submission, record: Record
    ) -> bool:
        label = self._record_value(condition)
        if label is None:
            return True
        raw = record.get(label)
        try:
            value = float(raw)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return True
        low = high = None
        lo_field = condition.field_for_role("lo")
        hi_field = condition.field_for_role("hi")
        if lo_field and params.get(lo_field):
            low = _numeric(params[lo_field][0])
        if hi_field and params.get(hi_field):
            high = _numeric(params[hi_field][0])
        if low is not None and value < low:
            return False
        if high is not None and value > high:
            return False
        return True

    def _satisfies_date(
        self, condition: Condition, params: Submission, record: Record
    ) -> bool:
        label = self._record_value(condition)
        if label is None:
            return True
        raw = record.get(label)
        if not isinstance(raw, tuple) or len(raw) != 3:
            return True
        month, day, year = raw
        wanted = {"month": str(month), "day": str(day), "year": str(year)}
        for part, expected in wanted.items():
            field_name = condition.field_for_role(part)
            if field_name and params.get(field_name):
                submitted = params[field_name][0]
                if submitted.casefold() != expected.casefold():
                    return False
        return True
