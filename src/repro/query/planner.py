"""Translating user constraints into form submissions.

The planner resolves each :class:`Constraint` against a semantic model's
conditions (by normalized attribute label), then uses the condition's
*bindings* -- which fields to fill, which hidden values select which
operator or enumerated choice, which fields play range-endpoint or
date-part roles -- to emit a :class:`~repro.webdb.source.Submission`.

Constraints that cannot be honoured are collected, not raised, unless
``strict`` is requested: a mediator typically degrades a query rather than
abandoning it (the same best-effort philosophy as the parser).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.semantics.condition import Condition, SemanticModel
from repro.semantics.matching import normalize_attribute


class PlanError(ValueError):
    """Raised in strict mode when a constraint cannot be planned."""


@dataclass(frozen=True)
class Constraint:
    """One user-level constraint.

    Attributes:
        attribute: The attribute to constrain (matched case-insensitively
            against the model's condition labels).
        value: The constraining value; its shape follows the condition's
            domain -- a string for text and enum domains, a tuple of value
            labels for multi-enum, ``(lo, hi)`` for ranges (either endpoint
            may be ``None``), ``(month, day, year)`` for dates.
        operator: Operator wording to select, when the condition offers a
            choice; ``None`` keeps the source's default.
    """

    attribute: str
    value: Any
    operator: str | None = None

    def __str__(self) -> str:
        op = self.operator or "="
        return f"{self.attribute} {op} {self.value!r}"


@dataclass
class QueryPlan:
    """The outcome of planning a query against one source."""

    params: dict[str, list[str]] = field(default_factory=dict)
    planned: list[Constraint] = field(default_factory=list)
    unplanned: list[tuple[Constraint, str]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        """True when every constraint was translated."""
        return not self.unplanned

    def add(self, field_name: str, value: str) -> None:
        self.params.setdefault(field_name, []).append(value)


class QueryPlanner:
    """Plans queries against one source's semantic model."""

    def __init__(self, model: SemanticModel):
        self.model = model
        self._by_attribute: dict[str, Condition] = {}
        for condition in model.conditions:
            key = normalize_attribute(condition.attribute)
            self._by_attribute.setdefault(key, condition)

    # -- public API ----------------------------------------------------------------

    def condition_for(self, attribute: str) -> Condition | None:
        """The model's condition for *attribute*, if any."""
        return self._by_attribute.get(normalize_attribute(attribute))

    def plan(
        self, constraints: list[Constraint], strict: bool = False
    ) -> QueryPlan:
        """Translate *constraints* into form parameters.

        In strict mode the first untranslatable constraint raises
        :class:`PlanError`; otherwise it is recorded in ``plan.unplanned``.
        """
        plan = QueryPlan()
        for constraint in constraints:
            reason = self._plan_one(constraint, plan)
            if reason is None:
                plan.planned.append(constraint)
            else:
                if strict:
                    raise PlanError(f"{constraint}: {reason}")
                plan.unplanned.append((constraint, reason))
        return plan

    # -- per-constraint translation ----------------------------------------------

    def _plan_one(self, constraint: Constraint, plan: QueryPlan) -> str | None:
        condition = self.condition_for(constraint.attribute)
        if condition is None:
            return "no condition for attribute"
        kind = condition.domain.kind
        if kind == "text":
            return self._plan_text(constraint, condition, plan)
        if kind == "enum":
            return self._plan_enum(constraint, condition, plan)
        if kind == "range":
            return self._plan_range(constraint, condition, plan)
        if kind == "datetime":
            return self._plan_date(constraint, condition, plan)
        return f"unsupported domain kind {kind!r}"  # pragma: no cover

    @staticmethod
    def _plan_text(
        constraint: Constraint, condition: Condition, plan: QueryPlan
    ) -> str | None:
        if not condition.fields:
            return "condition exposes no input field"
        plan.add(condition.fields[0], str(constraint.value))
        if constraint.operator is not None:
            binding = condition.operator_binding(constraint.operator)
            if binding is None:
                return f"operator {constraint.operator!r} not supported"
            mode_field, mode_value = binding
            plan.add(mode_field, mode_value)
        return None

    @staticmethod
    def _plan_enum(
        constraint: Constraint, condition: Condition, plan: QueryPlan
    ) -> str | None:
        values = constraint.value
        if isinstance(values, str):
            values = (values,)
        for label in values:
            binding = None
            wanted = normalize_attribute(str(label))
            for value_label, bind_field, bind_value in condition.value_bindings:
                if normalize_attribute(value_label) == wanted:
                    binding = (bind_field, bind_value)
                    break
            if binding is None:
                return f"value {label!r} not in the enumerated domain"
            plan.add(*binding)
        return None

    @staticmethod
    def _plan_range(
        constraint: Constraint, condition: Condition, plan: QueryPlan
    ) -> str | None:
        try:
            low, high = constraint.value
        except (TypeError, ValueError):
            return "range constraints need a (low, high) pair"
        lo_field = condition.field_for_role("lo")
        hi_field = condition.field_for_role("hi")
        if low is not None:
            if lo_field is None:
                return "no low-endpoint field"
            plan.add(lo_field, str(low))
        if high is not None:
            if hi_field is None:
                return "no high-endpoint field"
            plan.add(hi_field, str(high))
        return None

    @staticmethod
    def _plan_date(
        constraint: Constraint, condition: Condition, plan: QueryPlan
    ) -> str | None:
        try:
            month, day, year = constraint.value
        except (TypeError, ValueError):
            return "date constraints need a (month, day, year) triple"
        parts = {"month": month, "day": day, "year": year}
        planned_any = False
        for role, value in parts.items():
            if value is None:
                continue
            field_name = condition.field_for_role(role)
            if field_name is None:
                continue  # the form may only expose month/day
            plan.add(field_name, str(value))
            planned_any = True
        if not planned_any:
            return "no date-part fields available"
        return None
