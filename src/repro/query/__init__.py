"""Query planning: pose user queries through extracted capabilities.

A capability description earns its keep when a mediator can *use* it: take
a user constraint like ``author exact-name "Tom Clancy"`` and translate it
into the form parameters the source expects.  :class:`QueryPlanner` does
exactly that against any :class:`~repro.semantics.condition.SemanticModel`
-- ground truth or extracted -- which makes end-to-end correctness
measurable (see ``benchmarks/bench_query_answerability.py``).
"""

from repro.query.planner import (
    Constraint,
    PlanError,
    QueryPlan,
    QueryPlanner,
)

__all__ = ["Constraint", "PlanError", "QueryPlan", "QueryPlanner"]
