"""Token model: terminal instances with bounding boxes and attributes.

Tokens are the atomic units of the visual grammatical composition (paper
Section 3.4).  Each token has a *terminal type* drawn from :data:`TERMINALS`
(the alphabet Σ of the 2P grammar), the universal ``pos`` bounding box, and
terminal-specific attributes: a text token carries its string value
``sval``; a select list its option strings; a radio button its group name,
value, and label-ready position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.layout.box import BBox

#: The 16 terminal types of the derived global grammar (paper Section 6
#: reports "82 productions with 39 nonterminals and 16 terminals").
TERMINALS: frozenset[str] = frozenset(
    {
        "text",          # a visually contiguous run of page text
        "textbox",       # <input type=text>
        "password",      # <input type=password>
        "textarea",      # <textarea>
        "selectlist",    # <select> rendered as a drop-down
        "listbox",       # <select size=n> rendered as a scrolling list
        "radiobutton",   # <input type=radio>
        "checkbox",      # <input type=checkbox>
        "submitbutton",  # <input type=submit>
        "resetbutton",   # <input type=reset>
        "pushbutton",    # <input type=button> / <button>
        "imagebutton",   # <input type=image>
        "filebox",       # <input type=file>
        "image",         # <img>
        "hiddenfield",   # <input type=hidden> (kept for capability output)
        "hrule",         # <hr> separators, useful as layout fences
    }
)

#: Terminals that accept user input and can anchor a query condition.
INPUT_TERMINALS: frozenset[str] = frozenset(
    {
        "textbox", "password", "textarea", "selectlist", "listbox",
        "radiobutton", "checkbox", "filebox",
    }
)

#: Terminals that act as form plumbing rather than condition content.
DECORATION_TERMINALS: frozenset[str] = frozenset(
    {"submitbutton", "resetbutton", "pushbutton", "imagebutton", "image", "hrule"}
)


@dataclass(frozen=True)
class SelectOption:
    """One ``<option>`` of a select control."""

    label: str
    value: str
    selected: bool = False


@dataclass(frozen=True)
class Token:
    """An atomic visual element of a query form.

    Attributes:
        id: Dense per-form serial; parse-tree coverage is a set of these.
        terminal: One of :data:`TERMINALS`.
        bbox: Rendered bounding box (the paper's universal ``pos``).
        attrs: Terminal-specific attributes (``sval``, ``name``, ``value``,
            ``options``, ``checked``, ``bold``...).
    """

    id: int
    terminal: str
    bbox: BBox
    attrs: dict[str, Any] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if self.terminal not in TERMINALS:
            raise ValueError(f"unknown terminal type: {self.terminal!r}")

    # -- convenience accessors ------------------------------------------------

    @property
    def sval(self) -> str:
        """String value of a text token (empty for non-text tokens)."""
        return str(self.attrs.get("sval", ""))

    @property
    def name(self) -> str | None:
        """The HTML ``name`` attribute of a control token."""
        value = self.attrs.get("name")
        return None if value is None else str(value)

    @property
    def options(self) -> tuple[SelectOption, ...]:
        """Options of a select token (empty tuple otherwise)."""
        return tuple(self.attrs.get("options", ()))

    @property
    def is_input(self) -> bool:
        return self.terminal in INPUT_TERMINALS

    @property
    def is_decoration(self) -> bool:
        return self.terminal in DECORATION_TERMINALS

    def __repr__(self) -> str:
        detail = ""
        if self.terminal == "text":
            detail = f" sval={self.sval!r}"
        elif self.name:
            detail = f" name={self.name!r}"
        return f"<Token #{self.id} {self.terminal}{detail} pos={self.bbox.as_tuple()}>"
