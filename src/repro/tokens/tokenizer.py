"""Form tokenizer: DOM + layout geometry → token set.

Builds on the HTML DOM and layout substrates the way the original system
built on Internet Explorer's DOM API: it walks the rendered form, emits one
token per form control, and merges text fragments into visually contiguous
text tokens (``<b>Title</b>:`` renders as two fragments but reads as the
single token ``"Title:"``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.html.dom import Document, Element

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.guard import ResourceGuard
from repro.html.parser import parse_html
from repro.layout.box import BBox
from repro.layout.engine import (
    ControlBox,
    LayoutResult,
    TextFragment,
    layout_document,
)
from repro.tokens.model import SelectOption, Token

#: Fragments closer than this merge into one text token (a collapsed space
#: renders 5 px wide; table cells are farther apart than this).
_MERGE_GAP = 6.5

#: Text outside the form element is still tokenized when it lies within
#: this distance of the form's rendered content (labels are sometimes
#: written just outside the ``<form>`` tag).
_NEARBY_MARGIN = 24.0

_INPUT_TERMINAL_BY_TYPE: dict[str, str] = {
    "text": "textbox",
    "": "textbox",
    "search": "textbox",
    "email": "textbox",
    "tel": "textbox",
    "url": "textbox",
    "password": "password",
    "radio": "radiobutton",
    "checkbox": "checkbox",
    "submit": "submitbutton",
    "reset": "resetbutton",
    "button": "pushbutton",
    "image": "imagebutton",
    "file": "filebox",
    "hidden": "hiddenfield",
}


class FormTokenizer:
    """Convert one rendered query form into a token set."""

    def __init__(
        self,
        document: Document,
        layout: LayoutResult | None = None,
        guard: ResourceGuard | None = None,
    ):
        self._document = document
        self._guard = guard
        self._layout = (
            layout if layout is not None else layout_document(document, guard=guard)
        )

    # -- public API -----------------------------------------------------------

    @property
    def layout(self) -> LayoutResult:
        return self._layout

    def forms(self) -> list[Element]:
        """All ``<form>`` elements of the document."""
        return self._document.forms

    def tokenize(self, form: Element | None = None) -> list[Token]:
        """Tokenize *form* (or the whole page when ``form`` is ``None``).

        Returns tokens sorted in reading order (top-to-bottom, then
        left-to-right) with dense ids starting at 0.
        """
        scope = form
        controls = [
            control
            for control in self._layout.controls
            if scope is None or self._in_scope(control.element, scope)
        ]
        scope_box = self._scope_box(controls, scope)
        fragments = [
            fragment
            for fragment in self._layout.fragments
            if self._fragment_in_scope(fragment, scope, scope_box)
        ]

        raw: list[tuple[BBox, str, dict[str, Any]]] = []
        for control in controls:
            terminal, attrs = self._control_token(control.element)
            raw.append((control.box, terminal, attrs))
        for box, text, bold, link, label_for in self._merge_fragments(
            fragments
        ):
            attrs: dict[str, Any] = {"sval": text, "bold": bold, "link": link}
            if label_for:
                attrs["for_field"] = label_for
            raw.append((box, "text", attrs))

        raw.sort(key=lambda item: (item[0].top, item[0].left, item[0].right))
        if self._guard is not None:
            # Token ceiling: keep the reading-order prefix so the parser
            # sees a coherent (if incomplete) top-of-form token set.
            raw = raw[: self._guard.cap_count("tokens", len(raw), "tokenize")]
        return [
            Token(id=index, terminal=terminal, bbox=box, attrs=attrs)
            for index, (box, terminal, attrs) in enumerate(raw)
        ]

    # -- scoping -----------------------------------------------------------------

    @staticmethod
    def _in_scope(element: Element, scope: Element) -> bool:
        return element is scope or any(
            ancestor is scope for ancestor in element.ancestors()
        )

    def _scope_box(
        self, controls: list[ControlBox], scope: Element | None
    ) -> BBox | None:
        boxes = [control.box for control in controls]
        if scope is not None:
            for fragment in self._layout.fragments:
                if fragment.node.parent is not None and self._in_scope(
                    fragment.node.parent, scope  # type: ignore[arg-type]
                ):
                    boxes.append(fragment.box)
        if not boxes:
            return None
        union = boxes[0]
        for box in boxes[1:]:
            union = union.union(box)
        return union.inflate(_NEARBY_MARGIN)

    def _fragment_in_scope(
        self,
        fragment: TextFragment,
        scope: Element | None,
        scope_box: BBox | None,
    ) -> bool:
        if not fragment.text.strip():
            return False
        if scope is None:
            return True
        parent = fragment.node.parent
        if parent is not None and self._in_scope(parent, scope):  # type: ignore[arg-type]
            return True
        # Nearby text just outside the <form> tag still labels the form.
        return scope_box is not None and scope_box.intersects(fragment.box)

    # -- text merging ---------------------------------------------------------------

    @staticmethod
    def _merge_fragments(
        fragments: list[TextFragment],
    ) -> list[tuple[BBox, str, bool, bool, str]]:
        """Merge adjacent same-line, same-container fragments into tokens."""
        ordered = sorted(
            fragments, key=lambda f: (f.container, f.box.top, f.box.left)
        )
        merged: list[tuple[BBox, str, bool, bool, str]] = []
        current_box: BBox | None = None
        current_text = ""
        current_bold = False
        current_link = False
        current_link_id = 0
        current_label_for = ""
        current_container = 0

        def flush() -> None:
            nonlocal current_box, current_text
            if current_box is not None and current_text.strip():
                merged.append(
                    (current_box, current_text.strip(), current_bold,
                     current_link, current_label_for)
                )
            current_box = None
            current_text = ""

        for fragment in ordered:
            if (
                current_box is not None
                and fragment.container == current_container
                and fragment.link_id == current_link_id
                and current_box.vertical_overlap(fragment.box)
                >= 0.5 * min(current_box.height, fragment.box.height)
                and 0
                <= fragment.box.left - current_box.right
                <= _MERGE_GAP
            ):
                gap = fragment.box.left - current_box.right
                joiner = " " if gap >= 2.5 else ""
                current_text += joiner + fragment.text
                current_box = current_box.union(fragment.box)
                current_bold = current_bold or fragment.bold
                current_link = current_link and fragment.link
                current_label_for = current_label_for or fragment.label_for
            else:
                flush()
                current_box = fragment.box
                current_text = fragment.text
                current_bold = fragment.bold
                current_link = fragment.link
                current_link_id = fragment.link_id
                current_label_for = fragment.label_for
                current_container = fragment.container
        flush()
        return merged

    # -- control conversion ------------------------------------------------------------

    def _control_token(self, element: Element) -> tuple[str, dict[str, Any]]:
        tag = element.tag
        attrs: dict[str, Any] = {}
        if element.get("name"):
            attrs["name"] = element.get("name")
        if element.get("value") is not None:
            attrs["value"] = element.get("value")
        if tag == "input":
            input_type = (element.get("type") or "text").lower()
            terminal = _INPUT_TERMINAL_BY_TYPE.get(input_type, "textbox")
            if input_type in ("radio", "checkbox"):
                attrs["checked"] = element.has_attribute("checked")
            if input_type in ("text", "", "search", "email", "tel", "url", "password"):
                attrs["size"] = element.get("size")
                attrs["maxlength"] = element.get("maxlength")
            return terminal, attrs
        if tag == "select":
            options = tuple(
                SelectOption(
                    label=" ".join(option.text_content().split()),
                    value=option.get("value")
                    or " ".join(option.text_content().split()),
                    selected=option.has_attribute("selected"),
                )
                for option in element.find_all("option")
            )
            attrs["options"] = options
            attrs["multiple"] = element.has_attribute("multiple")
            size_raw = element.get("size")
            try:
                size = int(size_raw) if size_raw else 1
            except ValueError:
                size = 1
            return ("listbox" if size > 1 else "selectlist"), attrs
        if tag == "textarea":
            return "textarea", attrs
        if tag == "button":
            attrs["value"] = " ".join(element.text_content().split())
            button_type = (element.get("type") or "submit").lower()
            return (
                "submitbutton" if button_type == "submit" else "pushbutton"
            ), attrs
        if tag == "img":
            attrs["alt"] = element.get("alt") or ""
            return "image", attrs
        if tag == "hr":
            return "hrule", attrs
        return "image", attrs


def tokenize_form(document: Document, form: Element | None = None) -> list[Token]:
    """Tokenize *form* within a parsed *document*."""
    return FormTokenizer(document).tokenize(form)


def tokenize_html(html: str) -> list[Token]:
    """Parse *html*, pick its first form (or the whole page), and tokenize."""
    document = parse_html(html)
    forms = document.forms
    return FormTokenizer(document).tokenize(forms[0] if forms else None)
