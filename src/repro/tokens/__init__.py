"""Form tokenizer: rendered DOM → visual tokens (grammar terminals).

The tokenizer is the front end of the form extractor (paper Figure 2 / 5):
it converts an HTML query form into a set of tokens, each an instance of a
grammar terminal with a universal ``pos`` bounding-box attribute plus
terminal-specific attributes (``sval`` for text, ``name``/``options`` for
controls, ...).
"""

from repro.tokens.model import TERMINALS, SelectOption, Token
from repro.tokens.tokenizer import FormTokenizer, tokenize_form, tokenize_html

__all__ = [
    "FormTokenizer",
    "SelectOption",
    "TERMINALS",
    "Token",
    "tokenize_form",
    "tokenize_html",
]
