"""An *unvalidated* grammar snapshot for the analyzer.

:class:`~repro.grammar.grammar.TwoPGrammar` refuses to construct a grammar
with broken referential integrity -- which is correct for the runtime but
useless for a linter, whose whole purpose is to describe broken grammars.
:class:`GrammarView` is the analyzer's input type: the same five components
``⟨Σ, N, s, Pd, Pf⟩``, no invariants enforced, buildable from a validated
grammar, from an open :class:`~repro.grammar.dsl.GrammarBuilder` (lint
*before* ``build()`` raises), or from raw parts (tests seed defects this
way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.grammar.dsl import GrammarBuilder
from repro.grammar.grammar import TwoPGrammar
from repro.grammar.preference import Preference
from repro.grammar.production import Production


@dataclass(frozen=True)
class GrammarView:
    """The analyzer's read-only picture of a (possibly broken) grammar.

    Satisfies :class:`~repro.parser.schedule.SchedulableGrammar`, so the
    schedule pass runs on unvalidated views too.
    """

    terminals: frozenset[str]
    nonterminals: frozenset[str]
    start: str
    productions: tuple[Production, ...]
    preferences: tuple[Preference, ...]
    name: str = "grammar"

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_grammar(cls, grammar: TwoPGrammar) -> "GrammarView":
        """Snapshot a validated grammar."""
        return cls(
            terminals=grammar.terminals,
            nonterminals=grammar.nonterminals,
            start=grammar.start,
            productions=grammar.productions,
            preferences=grammar.preferences,
            name=grammar.name,
        )

    @classmethod
    def from_builder(cls, builder: GrammarBuilder) -> "GrammarView":
        """Snapshot an open builder without validating (or closing) it.

        Nonterminals are derived from production heads, exactly as
        :meth:`GrammarBuilder.build` would.
        """
        terminals, productions, preferences = builder.declarations()
        return cls(
            terminals=frozenset(terminals),
            nonterminals=frozenset(p.head for p in productions),
            start=builder.start,
            productions=tuple(productions),
            preferences=tuple(preferences),
            name=builder.name,
        )

    @classmethod
    def from_parts(
        cls,
        terminals: Iterable[str],
        productions: Iterable[Production],
        start: str,
        preferences: Iterable[Preference] = (),
        nonterminals: Iterable[str] | None = None,
        name: str = "grammar",
    ) -> "GrammarView":
        """Assemble a view from raw parts, enforcing nothing.

        ``nonterminals`` defaults to the production heads; pass it
        explicitly to model declared-but-headless symbols.
        """
        production_tuple = tuple(productions)
        if nonterminals is None:
            nonterminal_set = frozenset(p.head for p in production_tuple)
        else:
            nonterminal_set = frozenset(nonterminals)
        return cls(
            terminals=frozenset(terminals),
            nonterminals=nonterminal_set,
            start=start,
            productions=production_tuple,
            preferences=tuple(preferences),
            name=name,
        )

    # -- lookups ------------------------------------------------------------------

    @property
    def alphabet(self) -> frozenset[str]:
        return self.terminals | self.nonterminals

    def productions_for(self, head: str) -> list[Production]:
        return [p for p in self.productions if p.head == head]

    def component_heads(self, symbol: str) -> set[str]:
        """Heads of productions that use *symbol* as a component."""
        return {
            production.head
            for production in self.productions
            if symbol in production.components
        }


def as_view(
    grammar: TwoPGrammar | GrammarBuilder | GrammarView,
) -> GrammarView:
    """Coerce any analyzer input into a :class:`GrammarView`."""
    if isinstance(grammar, GrammarView):
        return grammar
    if isinstance(grammar, TwoPGrammar):
        return GrammarView.from_grammar(grammar)
    if isinstance(grammar, GrammarBuilder):
        return GrammarView.from_builder(grammar)
    raise TypeError(
        "expected TwoPGrammar, GrammarBuilder, or GrammarView, got "
        f"{type(grammar).__name__}"
    )
