"""The analysis driver: run every pass, collect one report.

The analyzer is purely static -- it never tokenizes input, never runs the
fix-point, and never calls user constraint/constructor code.  It inspects
the grammar's *declarations* (productions, preferences, spatial bounds,
callable signatures), the schedule graph the parser would build, and a
bounded abstract interpretation of what token multisets each symbol can
cover (the yield engine), and reports everything suspicious as structured
diagnostics.

Pass families:

* syntactic hygiene -- symbols (G00x), per-production bounds/arities
  (G01x), preferences (P00x), schedule preview (S00x);
* semantic analysis -- ambiguity/overlap (G02x), cross-production spatial
  chains (G03x), preference totality (P01x), coverage (C00x).

The overlap and totality passes share one
:class:`~repro.analysis.overlap.OverlapAnalysis` so "who can compete" and
"is the competition arbitrated" can never disagree.
"""

from __future__ import annotations

from repro.analysis.coverage import check_coverage
from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.overlap import analyze_overlaps, check_overlaps
from repro.analysis.preferences import check_preferences
from repro.analysis.productions import check_productions
from repro.analysis.schedule import check_schedule
from repro.analysis.spatial_chain import check_spatial_chains
from repro.analysis.symbols import check_symbols
from repro.analysis.totality import check_totality
from repro.analysis.view import GrammarView, as_view
from repro.analysis.yields import compute_yields
from repro.grammar.dsl import GrammarBuilder
from repro.grammar.grammar import TwoPGrammar
from repro.grammar.vocabulary import TokenVocabulary

#: The structural passes, in report-assembly order (the report re-sorts by
#: severity, so this order only matters for tie-breaking identical keys).
_PASSES = (
    check_symbols,
    check_productions,
    check_preferences,
    check_schedule,
    check_spatial_chains,
)


def analyze_grammar(
    grammar: TwoPGrammar | GrammarBuilder | GrammarView,
    name: str | None = None,
    vocabulary: TokenVocabulary | None = None,
) -> AnalysisReport:
    """Statically analyze *grammar* and return the full report.

    Accepts a validated :class:`~repro.grammar.grammar.TwoPGrammar`, an
    open :class:`~repro.grammar.dsl.GrammarBuilder` (lint before
    ``build()`` raises), or a raw
    :class:`~repro.analysis.view.GrammarView`.  *name* overrides the
    grammar's own name in the report.  *vocabulary* enables the
    tokenizer-relative coverage checks (C001/C003/C004/C005); without it
    only the grammar-internal coverage check (C002) runs.
    """
    view = as_view(grammar)
    diagnostics: list[Diagnostic] = []
    for check in _PASSES:
        diagnostics.extend(check(view))
    summary = compute_yields(view)
    overlaps = analyze_overlaps(view, summary)
    diagnostics.extend(check_overlaps(view, overlaps))
    diagnostics.extend(check_totality(view, overlaps))
    diagnostics.extend(
        check_coverage(view, summary, vocabulary=vocabulary)
    )
    return AnalysisReport(
        grammar=name if name is not None else view.name,
        diagnostics=tuple(diagnostics),
    )
