"""The analysis driver: run every pass, collect one report.

The analyzer is purely static -- it never tokenizes input, never runs the
fix-point, and never calls user constraint/constructor code.  It inspects
the grammar's *declarations* (productions, preferences, spatial bounds,
callable signatures) plus the schedule graph the parser would build, and
reports everything suspicious as structured diagnostics.
"""

from __future__ import annotations

from repro.analysis.diagnostics import AnalysisReport, Diagnostic
from repro.analysis.preferences import check_preferences
from repro.analysis.productions import check_productions
from repro.analysis.schedule import check_schedule
from repro.analysis.symbols import check_symbols
from repro.analysis.view import GrammarView, as_view
from repro.grammar.dsl import GrammarBuilder
from repro.grammar.grammar import TwoPGrammar

#: The passes, in report-assembly order (the report re-sorts by severity,
#: so this order only matters for tie-breaking identical sort keys).
_PASSES = (
    check_symbols,
    check_productions,
    check_preferences,
    check_schedule,
)


def analyze_grammar(
    grammar: TwoPGrammar | GrammarBuilder | GrammarView,
    name: str | None = None,
) -> AnalysisReport:
    """Statically analyze *grammar* and return the full report.

    Accepts a validated :class:`~repro.grammar.grammar.TwoPGrammar`, an
    open :class:`~repro.grammar.dsl.GrammarBuilder` (lint before
    ``build()`` raises), or a raw
    :class:`~repro.analysis.view.GrammarView`.  *name* overrides the
    grammar's own name in the report.
    """
    view = as_view(grammar)
    diagnostics: list[Diagnostic] = []
    for check in _PASSES:
        diagnostics.extend(check(view))
    return AnalysisReport(
        grammar=name if name is not None else view.name,
        diagnostics=tuple(diagnostics),
    )
