"""Preference-totality pass: is every *possible* conflict arbitrated?

====  ========  ==============================================================
code  severity  finding
====  ========  ==============================================================
P010  warning   a head has overlapping productions but **no**
                self-preference: when two of its instances fire on the same
                tokens, the surviving one is decided by fix-point iteration
                order, not grammar policy
P011  info      two distinct symbols can cover the same tokens but no
                preference path (in either direction, transitively) orders
                them; resolution falls through to maximization
P012  warning   a preference's winner and loser can never cover a common
                token class, so its conflicting condition can never hold --
                the rule is dead weight (a semantic refinement of P002)
P013  warning   the preference relation is cyclic across distinct symbols
                (``A > B > ... > A``): arbitration is not a priority order
                and the outcome depends on enforcement order
====  ========  ==============================================================

This is the analysis the paper leaves implicit: conflict resolution
(Section 5) silently assumes the hand-ranked preferences are *total over
the pairs that actually compete*.  The overlap pass computes who competes;
this pass checks that the preference relation covers them.

P012 skips symbols whose yield enumeration was truncated (their class
sets are incomplete -- a disjointness verdict would be unsound) and
symbols with no derivation at all (P002/G005 already report those).
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.analysis.overlap import OverlapAnalysis, analyze_overlaps
from repro.analysis.view import GrammarView


def _preference_reach(view: GrammarView) -> dict[str, set[str]]:
    """Transitive winner -> losers closure of the preference graph."""
    direct: dict[str, set[str]] = {}
    for preference in view.preferences:
        direct.setdefault(preference.winner_symbol, set()).add(
            preference.loser_symbol
        )
    closure = {winner: set(losers) for winner, losers in direct.items()}
    changed = True
    while changed:
        changed = False
        for winner, losers in closure.items():
            extra: set[str] = set()
            for loser in losers:
                extra |= closure.get(loser, set())
            if not extra <= losers:
                losers |= extra
                changed = True
    return closure


def _find_cycle(view: GrammarView) -> list[str] | None:
    """A shortest-ish preference cycle through distinct symbols, if any."""
    edges: dict[str, set[str]] = {}
    for preference in view.preferences:
        if preference.winner_symbol == preference.loser_symbol:
            continue  # self-preferences are arbitration, not ordering
        edges.setdefault(preference.winner_symbol, set()).add(
            preference.loser_symbol
        )
    # DFS with a path stack; first back-edge wins.
    visited: set[str] = set()

    def walk(node: str, path: list[str], on_path: set[str]) -> list[str] | None:
        visited.add(node)
        path.append(node)
        on_path.add(node)
        for target in sorted(edges.get(node, set())):
            if target in on_path:
                return path[path.index(target):] + [target]
            if target not in visited:
                found = walk(target, path, on_path)
                if found is not None:
                    return found
        path.pop()
        on_path.discard(node)
        return None

    for source in sorted(edges):
        if source not in visited:
            found = walk(source, [], set())
            if found is not None:
                return found
    return None


def check_totality(
    view: GrammarView, analysis: OverlapAnalysis | None = None
) -> list[Diagnostic]:
    """Run the preference-totality pass (P010-P013)."""
    if analysis is None:
        analysis = analyze_overlaps(view)
    diagnostics: list[Diagnostic] = []
    summary = analysis.summary

    self_preferred = {
        preference.winner_symbol
        for preference in view.preferences
        if preference.winner_symbol == preference.loser_symbol
    }
    reach = _preference_reach(view)

    seen_heads: set[str] = set()
    seen_pairs: set[tuple[str, str]] = set()
    for pair in analysis.pairs:
        if not pair.jointly_satisfiable:
            continue
        if pair.same_head:
            head = pair.left.head
            if head in self_preferred or head in seen_heads:
                continue
            seen_heads.add(head)
            names = sorted((pair.left.name, pair.right.name))
            diagnostics.append(
                Diagnostic(
                    code="P010",
                    severity=SEVERITY_WARNING,
                    message=(
                        f"{head!r} has overlapping productions (e.g. "
                        f"{names[0]} vs {names[1]}) but no "
                        "self-preference; when two instances fire on the "
                        "same tokens the survivor is fix-point iteration "
                        "order, not grammar policy -- add a preference "
                        f"such as prefer({head!r}, over={head!r}, "
                        "when=subsumes)"
                    ),
                    symbol=head,
                    data={
                        "productions": names,
                        "witness": list(pair.witness),
                    },
                )
            )
        else:
            heads = pair.heads
            if heads in seen_pairs:
                continue
            seen_pairs.add(heads)
            first, second = heads
            ordered = (
                second in reach.get(first, set())
                or first in reach.get(second, set())
            )
            if ordered:
                continue
            names = sorted((pair.left.name, pair.right.name))
            diagnostics.append(
                Diagnostic(
                    code="P011",
                    severity=SEVERITY_INFO,
                    message=(
                        f"symbols {first!r} and {second!r} can compete "
                        "for the same tokens but no preference path "
                        "orders them (either direction); resolution "
                        "falls through to partial-tree maximization"
                    ),
                    symbol=first,
                    data={
                        "other_symbol": second,
                        "productions": names,
                        "witness": list(pair.witness),
                    },
                )
            )

    # P012: preferences whose symbols can never share a token class.
    for preference in view.preferences:
        winner = preference.winner_symbol
        loser = preference.loser_symbol
        if winner in summary.truncated or loser in summary.truncated:
            continue
        winner_classes = summary.classes(winner)
        loser_classes = summary.classes(loser)
        if not winner_classes or not loser_classes:
            continue  # no derivation at all: P002/G005 territory
        if winner_classes & loser_classes:
            continue
        diagnostics.append(
            Diagnostic(
                code="P012",
                severity=SEVERITY_WARNING,
                message=(
                    f"preference {preference.name} can never fire: "
                    f"{winner!r} instances cover only "
                    f"{{{', '.join(sorted(winner_classes))}}} and "
                    f"{loser!r} only "
                    f"{{{', '.join(sorted(loser_classes))}}}, so the two "
                    "can never compete for a token"
                ),
                preference=preference.name,
                data={
                    "winner_classes": sorted(winner_classes),
                    "loser_classes": sorted(loser_classes),
                },
            )
        )

    # P013: cyclic arbitration among distinct symbols.
    cycle = _find_cycle(view)
    if cycle is not None:
        diagnostics.append(
            Diagnostic(
                code="P013",
                severity=SEVERITY_WARNING,
                message=(
                    "the preference relation is cyclic: "
                    + " > ".join(cycle)
                    + "; arbitration is not a priority order, so the "
                    "outcome of a three-way conflict depends on "
                    "enforcement order"
                ),
                symbol=cycle[0],
                data={"cycle": cycle},
            )
        )
    return diagnostics
