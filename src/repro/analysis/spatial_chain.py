"""Cross-production spatial pass: interval algebra through derivation chains.

====  ========  ==============================================================
code  severity  finding
====  ========  ==============================================================
G030  error     a production's spatial bounds are jointly infeasible once
                chained through shared components and the components'
                *minimum extents* -- even though every per-pair conjunction
                is satisfiable (G010/G011 cannot see this)
G031  warning   a production is locally satisfiable, but the instances it
                builds are too large to fit **any** parent context's
                bounds; the production is dead weight for the start symbol
====  ========  ==============================================================

Both checks run a difference-constraint system per axis, the standard
encoding: each component ``k`` gets a start variable ``S_k`` (left / top)
and an end variable ``E_k`` (right / bottom);

* a signed bound ``(lo, hi)`` on ``(i, j)`` says ``lo <= S_j - E_i <= hi``;
* a symmetric bound ``m`` relaxes to ``S_j - E_i <= m`` and
  ``S_i - E_j <= m`` (the axis gap dominates both differences);
* a component's minimum extent ``w_k`` says ``E_k - S_k >= w_k``.

Every constraint is *implied* by the runtime semantics
(:mod:`repro.parser.spatial_index`), so an infeasible system -- a negative
cycle under Bellman-Ford -- proves no real geometry exists: the checks are
sound, never speculative.

Minimum extents come from a fix-point over the grammar: a terminal's
minimum extent is 0 (a box can be arbitrarily thin), and a production's is
``max(max_k w_k, max over signed bounds of lo + w_i + w_j)`` -- chaining
``j after i by at least lo`` stretches the head.  A symbol takes the
*minimum* over its productions (sound lower bound); the iteration cap
keeps divergent purely-recursive heads (already G005) from spinning.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.analysis.productions import _check_bounds, _spec_kind
from repro.analysis.view import GrammarView
from repro.grammar.production import AxisSpec, Production

_AXES = ("horizontal", "vertical")

#: Iteration cap for the min-extent fix-point (divergence guard; see
#: module doc).
_EXTENT_ROUNDS = 32


def _axis_spec(
    bound: tuple[int, int, AxisSpec, AxisSpec], axis: str
) -> AxisSpec:
    return bound[2] if axis == "horizontal" else bound[3]


def _production_extent(
    production: Production, extents: dict[str, float], axis: str
) -> float:
    """Lower bound on the head's axis extent via this production."""
    best = 0.0
    for component in production.components:
        best = max(best, extents.get(component, 0.0))
    for bound in production.bounds:
        spec = _axis_spec(bound, axis)
        if _spec_kind(spec) != "signed":
            continue
        assert isinstance(spec, tuple)
        lo = spec[0]
        if lo is None:
            continue
        i, j = bound[0], bound[1]
        chained = (
            float(lo)
            + extents.get(production.components[i], 0.0)
            + extents.get(production.components[j], 0.0)
        )
        best = max(best, chained)
    return best


def min_extents(view: GrammarView) -> dict[str, dict[str, float]]:
    """Per-axis minimum extents for every symbol (``axis -> symbol -> w``)."""
    result: dict[str, dict[str, float]] = {}
    for axis in _AXES:
        extents: dict[str, float] = {t: 0.0 for t in view.terminals}
        for production in view.productions:
            extents.setdefault(production.head, 0.0)
        for _ in range(_EXTENT_ROUNDS):
            changed = False
            by_head: dict[str, float] = {}
            for production in view.productions:
                value = _production_extent(production, extents, axis)
                head = production.head
                if head not in by_head or value < by_head[head]:
                    by_head[head] = value
            for head, value in by_head.items():
                if value > extents.get(head, 0.0):
                    extents[head] = value
                    changed = True
            if not changed:
                break
        result[axis] = extents
    return result


def _axis_feasible(
    production: Production,
    axis: str,
    widths: dict[int, float],
) -> bool:
    """Difference-constraint feasibility of one production on one axis.

    *widths* maps component position -> minimum extent.  Returns ``True``
    when some assignment of starts/ends satisfies every bound and width.
    """
    arity = len(production.components)
    # Node ids: S_k = 2k, E_k = 2k + 1.  Edge (u, v, c) encodes the
    # constraint  x_v - x_u <= c.
    edges: list[tuple[int, int, float]] = []
    for k in range(arity):
        width = widths.get(k, 0.0)
        # S_k - E_k <= -width
        edges.append((2 * k + 1, 2 * k, -width))
    constrained = False
    for bound in production.bounds:
        spec = _axis_spec(bound, axis)
        kind = _spec_kind(spec)
        if kind == "free":
            continue
        i, j = bound[0], bound[1]
        s_i, e_i = 2 * i, 2 * i + 1
        s_j, e_j = 2 * j, 2 * j + 1
        if kind == "symmetric":
            assert isinstance(spec, (int, float))
            m = float(spec)
            edges.append((e_i, s_j, m))  # S_j - E_i <= m
            edges.append((e_j, s_i, m))  # S_i - E_j <= m
            constrained = True
        else:
            assert isinstance(spec, tuple)
            lo, hi = spec
            if hi is not None:
                edges.append((e_i, s_j, float(hi)))  # S_j - E_i <= hi
            if lo is not None:
                edges.append((s_j, e_i, -float(lo)))  # E_i - S_j <= -lo
            constrained = True
    if not constrained:
        return True
    nodes = 2 * arity
    distance = [0.0] * nodes
    for _ in range(nodes):
        updated = False
        for u, v, c in edges:
            if distance[u] + c < distance[v]:
                distance[v] = distance[u] + c
                updated = True
        if not updated:
            return True
    # One extra relaxation round still improved a distance: negative cycle.
    return False


def check_spatial_chains(view: GrammarView) -> list[Diagnostic]:
    """Run the cross-production spatial pass (G030-G031)."""
    diagnostics: list[Diagnostic] = []
    extents = min_extents(view)

    def widths_for(production: Production, axis: str) -> dict[int, float]:
        table = extents[axis]
        return {
            k: table.get(component, 0.0)
            for k, component in enumerate(production.components)
        }

    locally_broken: set[int] = set()
    for index, production in enumerate(view.productions):
        if not production.bounds:
            continue
        if _check_bounds(production):
            # Per-pair defects are already G010/G011 errors; re-deriving
            # them through the chain solver would double-report.
            locally_broken.add(index)
            continue
        bad_axes = [
            axis
            for axis in _AXES
            if not _axis_feasible(
                production, axis, widths_for(production, axis)
            )
        ]
        if bad_axes:
            locally_broken.add(index)
            diagnostics.append(
                Diagnostic(
                    code="G030",
                    severity=SEVERITY_ERROR,
                    message=(
                        f"production {production.name}: the "
                        f"{' and '.join(bad_axes)} bounds are jointly "
                        "infeasible once chained through the components' "
                        "minimum extents; no geometry satisfies them all "
                        "and the production can never apply"
                    ),
                    production=production.name,
                    symbol=production.head,
                    data={"axes": bad_axes},
                )
            )

    # G031: locally fine, but the instances cannot fit any parent bound.
    parents: dict[str, list[tuple[Production, int]]] = {}
    for production in view.productions:
        for position, component in enumerate(production.components):
            parents.setdefault(component, []).append(
                (production, position)
            )
    for index, production in enumerate(view.productions):
        if index in locally_broken:
            continue
        head = production.head
        if head == view.start:
            continue
        occurrences = parents.get(head, [])
        if not occurrences:
            continue
        own_extent = {
            axis: _production_extent(production, extents[axis], axis)
            for axis in _AXES
        }
        if all(
            own_extent[axis] <= extents[axis].get(head, 0.0)
            for axis in _AXES
        ):
            continue  # this production is (one of) the smallest shapes
        dead_everywhere = True
        blocked_parents: list[str] = []
        for parent, position in occurrences:
            fits = True
            for axis in _AXES:
                widths = widths_for(parent, axis)
                if not _axis_feasible(parent, axis, widths):
                    # The parent is broken on its own; do not blame P.
                    continue
                widths[position] = max(
                    widths[position], own_extent[axis]
                )
                if not _axis_feasible(parent, axis, widths):
                    fits = False
            if fits:
                dead_everywhere = False
                break
            blocked_parents.append(parent.name)
        if dead_everywhere and blocked_parents:
            diagnostics.append(
                Diagnostic(
                    code="G031",
                    severity=SEVERITY_WARNING,
                    message=(
                        f"production {production.name} is locally "
                        "satisfiable, but the instances it builds are "
                        "too large for every parent context "
                        f"({', '.join(sorted(set(blocked_parents)))}); "
                        f"no {head!r} built this way can join a larger "
                        "pattern"
                    ),
                    production=production.name,
                    symbol=head,
                    data={
                        "parents": sorted(set(blocked_parents)),
                        "min_extent": {
                            axis: own_extent[axis] for axis in _AXES
                        },
                    },
                )
            )
    return diagnostics
