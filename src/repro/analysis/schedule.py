"""Schedule-graph pass: preview what the runtime scheduler will do.

====  ========  ==============================================================
code  severity  finding
====  ========  ==============================================================
S001  error     the mandatory d-edges are cyclic; ``build_schedule`` will
                raise :class:`~repro.parser.schedule.ScheduleError`
S002  info      an r-edge will be *transformed* (winner ordered before the
                loser's parents) -- a cost preview, not a defect
S003  warning   an r-edge will be *relaxed* (dropped); its pruning relies
                on rollback, the most expensive compensation path
====  ========  ==============================================================

The pass runs :func:`repro.parser.schedule.build_schedule_graph` -- the
exact construction :func:`~repro.parser.schedule.build_schedule` consumes
-- so the preview cannot drift from runtime behaviour.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.analysis.view import GrammarView
from repro.parser.schedule import (
    ACTION_RELAXED,
    ACTION_TRANSFORMED,
    build_schedule_graph,
)


def check_schedule(view: GrammarView) -> list[Diagnostic]:
    """Run the schedule-graph pass."""
    diagnostics: list[Diagnostic] = []
    graph = build_schedule_graph(view)

    for cycle in graph.cycles:
        diagnostics.append(
            Diagnostic(
                code="S001",
                severity=SEVERITY_ERROR,
                message=(
                    "d-edge cycle makes the grammar unschedulable: "
                    + graph.describe_cycle(cycle)
                ),
                symbol=cycle[0],
                data={
                    "cycle": list(cycle),
                    "edges": [
                        {
                            "source": source,
                            "target": target,
                            "productions": list(
                                graph.provenance.get((source, target), ())
                            ),
                        }
                        for source, target in zip(cycle, cycle[1:])
                    ],
                },
            )
        )

    for decision in graph.decisions:
        preference = decision.preference
        if decision.action == ACTION_TRANSFORMED:
            diagnostics.append(
                Diagnostic(
                    code="S002",
                    severity=SEVERITY_INFO,
                    message=(
                        f"preference {preference.name}: {decision.reason} "
                        f"(winner {preference.winner_symbol!r} will run "
                        "before "
                        + ", ".join(repr(t) for t in decision.targets)
                        + ")"
                    ),
                    preference=preference.name,
                    data={
                        "winner": preference.winner_symbol,
                        "loser": preference.loser_symbol,
                        "parents": list(decision.targets),
                    },
                )
            )
        elif decision.action == ACTION_RELAXED:
            diagnostics.append(
                Diagnostic(
                    code="S003",
                    severity=SEVERITY_WARNING,
                    message=(
                        f"preference {preference.name} will be relaxed "
                        f"({decision.reason}); late pruning falls back to "
                        "rollback, the most expensive compensation path"
                    ),
                    preference=preference.name,
                    data={
                        "winner": preference.winner_symbol,
                        "loser": preference.loser_symbol,
                        "reason": decision.reason,
                    },
                )
            )

    return diagnostics
