"""Structured diagnostics: the analyzer's output vocabulary.

Every grammar defect the static analyzer can detect is reported as a
:class:`Diagnostic` with a **stable code** (``G0xx`` for grammar/symbol/
production structure, ``P0xx`` for preferences, ``S0xx`` for the schedule
graph), a severity, provenance (symbol, production, preference), a human
message, and a machine-readable ``data`` payload.  A whole analysis run is
an :class:`AnalysisReport`, which serializes to JSON for the ``repro lint
--json`` CLI and the CI gate.

The full catalogue (code -> severity -> trigger -> fix) is documented in
``docs/GRAMMAR.md`` under "Diagnostics catalogue"; keep the two in sync.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator

#: Version stamp on every serialized report.  Schema 2 added the
#: ``"schema"`` key itself plus the semantic pass families
#: (G02x/G03x/P01x/C00x); the report shape is otherwise unchanged, so
#: schema-1 consumers keep working.
REPORT_SCHEMA_VERSION = 2

#: Severities, in decreasing order of gravity.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)
_SEVERITY_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer.

    Attributes:
        code: Stable identifier (``G0xx``/``P0xx``/``S0xx``); documented
            in the diagnostics catalogue and asserted by tests -- never
            renumber an existing code.
        severity: ``"error"`` (the grammar will misbehave at runtime),
            ``"warning"`` (suspicious; probably authoring drift), or
            ``"info"`` (a cost preview, e.g. an r-edge transformation).
        message: Human-readable, self-contained explanation.
        symbol: The grammar symbol at fault, when one is identifiable.
        production: Name of the offending production, when applicable.
        preference: Name of the offending preference, when applicable.
        data: Machine-readable details (cycle paths, bound tuples, parent
            lists); JSON-serializable by construction.
    """

    code: str
    severity: str
    message: str
    symbol: str | None = None
    production: str | None = None
    preference: str | None = None
    data: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of "
                f"{SEVERITIES}"
            )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready rendering (stable key order)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "symbol": self.symbol,
            "production": self.production,
            "preference": self.preference,
            "data": dict(self.data),
        }

    def sort_key(self) -> tuple[int, str, str, str, str, str]:
        """Deterministic report order: gravest first, then provenance."""
        return (
            _SEVERITY_RANK[self.severity],
            self.code,
            self.symbol or "",
            self.production or "",
            self.preference or "",
            self.message,
        )

    def __str__(self) -> str:
        where = [
            f"{label}={value}"
            for label, value in (
                ("symbol", self.symbol),
                ("production", self.production),
                ("preference", self.preference),
            )
            if value
        ]
        location = f" [{' '.join(where)}]" if where else ""
        return f"{self.code} {self.severity}{location}: {self.message}"


@dataclass(frozen=True)
class AnalysisReport:
    """Every diagnostic one analysis run produced, ready to render.

    Diagnostics are stored sorted (gravest first, then stable provenance
    order) so reports are deterministic and diffable.
    """

    grammar: str
    diagnostics: tuple[Diagnostic, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.diagnostics, key=Diagnostic.sort_key)
        )
        object.__setattr__(self, "diagnostics", ordered)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- selection ----------------------------------------------------------------

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(SEVERITY_ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(SEVERITY_WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(SEVERITY_INFO)

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def by_severity(self, severity: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == severity)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        """Diagnostics with exactly *code* (tests key on this)."""
        return tuple(d for d in self.diagnostics if d.code == code)

    def codes(self) -> set[str]:
        """The distinct codes present (mutation tests assert membership)."""
        return {d.code for d in self.diagnostics}

    # -- rendering ----------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for diagnostic in self.diagnostics:
            counts[diagnostic.severity] += 1
        return counts

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": REPORT_SCHEMA_VERSION,
            "grammar": self.grammar,
            "summary": self.summary(),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def describe(self) -> str:
        """Human-readable multi-line rendering (the CLI's default)."""
        counts = self.summary()
        lines = [str(diagnostic) for diagnostic in self.diagnostics]
        lines.append(
            f"grammar {self.grammar}: {counts[SEVERITY_ERROR]} error(s), "
            f"{counts[SEVERITY_WARNING]} warning(s), "
            f"{counts[SEVERITY_INFO]} info(s)"
        )
        return "\n".join(lines)

    # -- enforcement --------------------------------------------------------------

    def raise_if_errors(self) -> "AnalysisReport":
        """Raise :class:`GrammarDiagnosticsError` when any error is present.

        Returns the report itself otherwise, so the call chains.
        """
        if self.has_errors:
            raise GrammarDiagnosticsError(self)
        return self


class GrammarDiagnosticsError(ValueError):
    """Fast-fail raised when a grammar carries error-severity diagnostics.

    Carries the full :class:`AnalysisReport` so callers (and test
    harnesses) can inspect every finding, not just the first.
    """

    def __init__(self, report: AnalysisReport):
        self.report = report
        errors = report.errors
        preview = "; ".join(str(d) for d in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        super().__init__(
            f"grammar {report.grammar} failed static analysis with "
            f"{len(errors)} error(s): {preview}{more}"
        )
