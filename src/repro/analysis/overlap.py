"""Ambiguity/overlap pass: productions that can fire on the same tokens.

====  ========  ==============================================================
code  severity  finding
====  ========  ==============================================================
G020  warning   two same-head productions with identical component lists,
                jointly satisfiable spatial bounds, and **no** constraints
                -- every qualifying combination fires both, guaranteeing
                duplicate instances and merger conflicts
G021  info      two same-head productions share a derivable token multiset
                and their bounds are jointly satisfiable; only opaque
                constraints (which the analyzer cannot inspect) keep them
                apart
G022  info      two productions with *different* heads share a multi-token
                multiset -- the classic merger-conflict setup (paper §5.2):
                both symbols can claim the same token run
G023  info      two leaf-level symbols compete for the same single token
                class (e.g. several roles all derive one ``text`` token)
G024  info      the yield enumeration was truncated for some symbols; the
                overlap analysis is incomplete for them
====  ========  ==============================================================

Overlap means **multiset unification**: the two productions can cover
exactly the same set of tokens, so if both fire the parser must arbitrate
(preferences, else maximization, else iteration order -- see the totality
pass).  Pairs where one head derives the other are excluded: a ``QI``
covering the same tokens as its own ``HQI`` child is the normal shape of a
derivation chain, not an ambiguity.

The pass is *witnessed*: every diagnostic carries a concrete token
multiset both productions can cover, because the yield engine
under-approximates (see :mod:`repro.analysis.yields`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.diagnostics import (
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.analysis.productions import (
    _conjunction_empty,
    _spec_empty,
    _spec_kind,
)
from repro.analysis.view import GrammarView
from repro.analysis.yields import (
    Multiset,
    YieldSummary,
    compute_yields,
    derives_relation,
    production_yields,
)
from repro.grammar.production import Production, _always

_AXES = ("horizontal", "vertical")


@dataclass(frozen=True)
class OverlapPair:
    """Two productions that can fire on the same token configuration."""

    left: Production
    right: Production
    witness: Multiset
    jointly_satisfiable: bool

    @property
    def same_head(self) -> bool:
        return self.left.head == self.right.head

    @property
    def heads(self) -> tuple[str, str]:
        first, second = sorted((self.left.head, self.right.head))
        return (first, second)


@dataclass(frozen=True)
class OverlapAnalysis:
    """Everything the overlap *and* totality passes need, computed once."""

    pairs: tuple[OverlapPair, ...]
    summary: YieldSummary

    def head_pairs(self) -> dict[tuple[str, str], OverlapPair]:
        """One representative overlapping pair per unordered head pair
        (same-head pairs included, keyed ``(H, H)``)."""
        representatives: dict[tuple[str, str], OverlapPair] = {}
        for pair in self.pairs:
            representatives.setdefault(pair.heads, pair)
        return representatives


def _bounds_jointly_satisfiable(
    left: Production, right: Production
) -> bool:
    """Can one component combination satisfy both productions' bounds?

    Only decidable (conservatively) when the component lists are
    identical: the bounds then talk about the same positions, and the
    per-pair-per-axis conjunction must be non-empty.  Differing component
    lists are treated as satisfiable.
    """
    if left.components != right.components:
        return True
    grouped: dict[tuple[int, int, str], list[object]] = {}
    for production in (left, right):
        for i, j, h_spec, v_spec in production.bounds:
            for axis, spec in zip(_AXES, (h_spec, v_spec)):
                if _spec_kind(spec) == "free" or _spec_empty(spec):
                    continue
                grouped.setdefault((i, j, axis), []).append(spec)
    for specs in grouped.values():
        if len(specs) >= 2 and _conjunction_empty(specs) is not None:
            return False
    return True


def analyze_overlaps(
    view: GrammarView, summary: YieldSummary | None = None
) -> OverlapAnalysis:
    """Find every overlapping production pair (see module doc)."""
    if summary is None:
        summary = compute_yields(view)
    derives = derives_relation(view)
    productions = view.productions
    prod_yields: list[frozenset[Multiset]] = []
    for production in productions:
        multisets, _ = production_yields(production, summary)
        prod_yields.append(multisets)

    pairs: list[OverlapPair] = []
    for a in range(len(productions)):
        left = productions[a]
        if not prod_yields[a]:
            continue
        for b in range(a + 1, len(productions)):
            right = productions[b]
            if not prod_yields[b]:
                continue
            if left.head != right.head and (
                right.head in derives.get(left.head, set())
                or left.head in derives.get(right.head, set())
            ):
                continue  # derivation chain, not ambiguity
            shared = prod_yields[a] & prod_yields[b]
            if not shared:
                continue
            witness = min(shared, key=lambda m: (len(m), m))
            pairs.append(
                OverlapPair(
                    left=left,
                    right=right,
                    witness=witness,
                    jointly_satisfiable=_bounds_jointly_satisfiable(
                        left, right
                    ),
                )
            )
    return OverlapAnalysis(pairs=tuple(pairs), summary=summary)


def _has_opaque_constraint(production: Production) -> bool:
    return production.constraint is not _always


def check_overlaps(
    view: GrammarView, analysis: OverlapAnalysis | None = None
) -> list[Diagnostic]:
    """Run the overlap pass (G020-G024)."""
    if analysis is None:
        analysis = analyze_overlaps(view)
    diagnostics: list[Diagnostic] = []

    cross_head_reported: set[tuple[str, str]] = set()
    for pair in analysis.pairs:
        if not pair.jointly_satisfiable:
            continue
        left, right = pair.left, pair.right
        names = sorted((left.name, right.name))
        witness = list(pair.witness)
        if pair.same_head:
            unconstrained = not (
                _has_opaque_constraint(left)
                or _has_opaque_constraint(right)
            )
            if unconstrained and left.components == right.components:
                diagnostics.append(
                    Diagnostic(
                        code="G020",
                        severity=SEVERITY_WARNING,
                        message=(
                            f"productions {names[0]} and {names[1]} of "
                            f"{left.head!r} have identical components, "
                            "compatible bounds, and no constraints: every "
                            "qualifying combination fires both, producing "
                            "duplicate instances that conflict at merge "
                            "time"
                        ),
                        symbol=left.head,
                        production=names[0],
                        data={
                            "other": names[1],
                            "witness": witness,
                        },
                    )
                )
            else:
                separator = (
                    "only their opaque constraints keep them apart"
                    if left.components == right.components
                    else "their differing components derive the same "
                    "token classes"
                )
                diagnostics.append(
                    Diagnostic(
                        code="G021",
                        severity=SEVERITY_INFO,
                        message=(
                            f"productions {names[0]} and {names[1]} of "
                            f"{left.head!r} can cover the same tokens "
                            f"({', '.join(witness)}); {separator} -- a "
                            "self-preference on the head arbitrates "
                            "double fires"
                        ),
                        symbol=left.head,
                        production=names[0],
                        data={
                            "other": names[1],
                            "witness": witness,
                        },
                    )
                )
        else:
            heads = pair.heads
            if heads in cross_head_reported:
                continue
            cross_head_reported.add(heads)
            if len(pair.witness) == 1:
                diagnostics.append(
                    Diagnostic(
                        code="G023",
                        severity=SEVERITY_INFO,
                        message=(
                            f"symbols {heads[0]!r} and {heads[1]!r} both "
                            f"derive a single {pair.witness[0]!r} token "
                            f"(e.g. {names[0]} vs {names[1]}); every such "
                            "token is ambiguous between the two roles "
                            "until a preference or context decides"
                        ),
                        symbol=heads[0],
                        production=names[0],
                        data={
                            "other_symbol": heads[1],
                            "other": names[1],
                            "witness": witness,
                        },
                    )
                )
            else:
                diagnostics.append(
                    Diagnostic(
                        code="G022",
                        severity=SEVERITY_INFO,
                        message=(
                            f"symbols {heads[0]!r} and {heads[1]!r} can "
                            "claim the same token run "
                            f"({', '.join(witness)}) via {names[0]} and "
                            f"{names[1]}; if both fire, the merger must "
                            "resolve the conflict"
                        ),
                        symbol=heads[0],
                        production=names[0],
                        data={
                            "other_symbol": heads[1],
                            "other": names[1],
                            "witness": witness,
                        },
                    )
                )

    if analysis.summary.truncated:
        truncated = sorted(analysis.summary.truncated)
        diagnostics.append(
            Diagnostic(
                code="G024",
                severity=SEVERITY_INFO,
                message=(
                    "yield enumeration was truncated for "
                    f"{len(truncated)} symbol(s) "
                    f"({', '.join(truncated[:6])}"
                    + (", ..." if len(truncated) > 6 else "")
                    + "); overlap findings for them are incomplete, not "
                    "absent"
                ),
                data={"symbols": truncated},
            )
        )
    return diagnostics
