"""Production-level pass: spatial-bound satisfiability and callable arity.

====  ========  ==============================================================
code  severity  finding
====  ========  ==============================================================
G010  error     an axis spec is empty on its own (negative symmetric gap,
                or a signed interval with ``lo > hi``)
G011  error     the conjunction of bounds on one component pair and axis
                is unsatisfiable (no geometry passes all of them)
G012  error     constructor cannot accept one positional argument per
                component
G013  error     constraint cannot accept one positional argument per
                component
====  ========  ==============================================================

Satisfiability follows the runtime semantics in
:mod:`repro.parser.spatial_index`: a symmetric spec ``m`` admits axis gaps
``<= m`` (a gap is never negative, so ``m < 0`` admits nothing); a pair
``(lo, hi)`` brackets the *signed displacement* of the later component
(``lo > hi`` admits nothing).  The conjunction of a symmetric ``m`` with a
signed ``(lo, hi)`` is empty when ``lo > m``: a displacement of at least
``lo > m >= 0`` forces an axis gap of at least ``lo``, exceeding ``m``.
"""

from __future__ import annotations

import inspect
from typing import Callable

from repro.analysis.diagnostics import SEVERITY_ERROR, Diagnostic
from repro.analysis.view import GrammarView
from repro.grammar.production import Production

_AXES = ("horizontal", "vertical")


def _spec_kind(spec: object) -> str:
    """Classify an axis spec: ``"free"``, ``"symmetric"``, or ``"signed"``."""
    if spec is None:
        return "free"
    if isinstance(spec, tuple):
        return "signed"
    return "symmetric"


def _spec_empty(spec: object) -> str | None:
    """Reason the spec alone admits no geometry, or ``None`` if satisfiable."""
    kind = _spec_kind(spec)
    if kind == "symmetric":
        assert isinstance(spec, (int, float))
        if spec < 0:
            return (
                f"symmetric gap bound {spec!r} is negative; axis gaps are "
                "never negative, so no pair of boxes can satisfy it"
            )
    elif kind == "signed":
        assert isinstance(spec, tuple)
        lo, hi = spec
        if lo is not None and hi is not None and lo > hi:
            return (
                f"signed displacement interval ({lo!r}, {hi!r}) is empty "
                "(lower bound exceeds upper bound)"
            )
    return None


def _conjunction_empty(specs: list[object]) -> str | None:
    """Reason the *conjunction* of satisfiable specs is empty, or ``None``.

    Callers filter out individually-empty specs first (those are G010).
    """
    min_sym: float | None = None
    max_lo: float | None = None
    min_hi: float | None = None
    for spec in specs:
        kind = _spec_kind(spec)
        if kind == "symmetric":
            assert isinstance(spec, (int, float))
            value = float(spec)
            min_sym = value if min_sym is None else min(min_sym, value)
        elif kind == "signed":
            assert isinstance(spec, tuple)
            lo, hi = spec
            if lo is not None:
                lo = float(lo)
                max_lo = lo if max_lo is None else max(max_lo, lo)
            if hi is not None:
                hi = float(hi)
                min_hi = hi if min_hi is None else min(min_hi, hi)
    if max_lo is not None and min_hi is not None and max_lo > min_hi:
        return (
            f"signed intervals intersect to ({max_lo!r}, {min_hi!r}), "
            "which is empty"
        )
    if max_lo is not None and min_sym is not None and max_lo > min_sym:
        return (
            f"a displacement of at least {max_lo!r} forces an axis gap "
            f"above the symmetric bound {min_sym!r}"
        )
    return None


def _check_bounds(production: Production) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    # Group the satisfiable specs per (i, j, axis) for conjunction checks.
    grouped: dict[tuple[int, int, str], list[object]] = {}
    for i, j, h_spec, v_spec in production.bounds:
        for axis, spec in zip(_AXES, (h_spec, v_spec)):
            if _spec_kind(spec) == "free":
                continue
            reason = _spec_empty(spec)
            if reason is not None:
                diagnostics.append(
                    Diagnostic(
                        code="G010",
                        severity=SEVERITY_ERROR,
                        message=(
                            f"production {production.name}: {axis} bound "
                            f"on components ({i}, {j}) admits no geometry: "
                            f"{reason}; the production can never apply"
                        ),
                        production=production.name,
                        data={
                            "components": [i, j],
                            "axis": axis,
                            "spec": list(spec)
                            if isinstance(spec, tuple)
                            else spec,
                        },
                    )
                )
                continue
            grouped.setdefault((i, j, axis), []).append(spec)
    for (i, j, axis), specs in grouped.items():
        if len(specs) < 2:
            continue
        reason = _conjunction_empty(specs)
        if reason is not None:
            diagnostics.append(
                Diagnostic(
                    code="G011",
                    severity=SEVERITY_ERROR,
                    message=(
                        f"production {production.name}: the {len(specs)} "
                        f"{axis} bounds on components ({i}, {j}) are "
                        f"jointly unsatisfiable: {reason}; the production "
                        "can never apply"
                    ),
                    production=production.name,
                    data={
                        "components": [i, j],
                        "axis": axis,
                        "specs": [
                            list(s) if isinstance(s, tuple) else s
                            for s in specs
                        ],
                    },
                )
            )
    return diagnostics


def _arity_problem(callable_: Callable[..., object], arity: int) -> str | None:
    """Reason *callable_* cannot be called with *arity* positional args.

    Returns ``None`` when the call is fine -- or when the signature cannot
    be introspected at all (C builtins, partials with odd wrappers), in
    which case the analyzer gives the benefit of the doubt.
    """
    try:
        signature = inspect.signature(callable_)
    except (TypeError, ValueError):
        return None
    required = 0
    optional = 0
    variadic = False
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            if parameter.default is inspect.Parameter.empty:
                required += 1
            else:
                optional += 1
        elif parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            variadic = True
        elif (
            parameter.kind is inspect.Parameter.KEYWORD_ONLY
            and parameter.default is inspect.Parameter.empty
        ):
            return (
                f"requires keyword-only argument {parameter.name!r}, but "
                "the parser passes arguments positionally"
            )
    if arity < required:
        return (
            f"requires at least {required} positional argument(s) but "
            f"would be called with {arity}"
        )
    if not variadic and arity > required + optional:
        return (
            f"accepts at most {required + optional} positional "
            f"argument(s) but would be called with {arity}"
        )
    return None


def _check_arities(production: Production) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    arity = len(production.components)
    for code, role, callable_ in (
        ("G012", "constructor", production.constructor),
        ("G013", "constraint", production.constraint),
    ):
        reason = _arity_problem(callable_, arity)
        if reason is not None:
            diagnostics.append(
                Diagnostic(
                    code=code,
                    severity=SEVERITY_ERROR,
                    message=(
                        f"production {production.name}: {role} {reason}; "
                        "every application would raise TypeError at parse "
                        "time"
                    ),
                    production=production.name,
                    data={"role": role, "arity": arity},
                )
            )
    return diagnostics


def check_productions(view: GrammarView) -> list[Diagnostic]:
    """Run the production-level pass."""
    diagnostics: list[Diagnostic] = []
    for production in view.productions:
        diagnostics.extend(_check_bounds(production))
        diagnostics.extend(_check_arities(production))
    return diagnostics
