"""Static analysis of 2P grammars ("grammalint").

The parser is *best-effort by design* -- it never rejects input, so a
broken grammar does not crash; it silently parses worse.  An undefined
symbol means a production never fires; a contradictory preference pair
means instances invalidate each other both ways; an empty spatial bound
means a pattern can never assemble.  These defects are invisible at
runtime and expensive to debug from extraction quality alone.

This package finds them *without running the parser*: :func:`analyze_grammar`
checks symbol hygiene, spatial-bound satisfiability, callable arity,
preference coherence, and previews the schedule graph (d-edge cycles,
r-edge transformations and relaxations) using the exact construction the
runtime scheduler consumes.  Every finding is a :class:`Diagnostic` with a
stable code -- ``G0xx`` grammar structure, ``P0xx`` preferences, ``S0xx``
schedule -- documented in ``docs/GRAMMAR.md`` ("Diagnostics catalogue").

Entry points:

* ``repro lint`` -- CLI, human or ``--json`` output, exit 1 on errors;
* ``BestEffortParser(grammar, validate_grammar=True)`` /
  ``FormExtractor(validate_grammar=True)`` -- opt-in fast-fail raising
  :class:`GrammarDiagnosticsError`;
* :func:`analyze_grammar` -- the library API used by both.
"""

from repro.analysis.analyzer import analyze_grammar
from repro.analysis.diagnostics import (
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    AnalysisReport,
    Diagnostic,
    GrammarDiagnosticsError,
)
from repro.analysis.view import GrammarView, as_view

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "GrammarDiagnosticsError",
    "GrammarView",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "analyze_grammar",
    "as_view",
]
