"""Static analysis of 2P grammars ("grammalint").

The parser is *best-effort by design* -- it never rejects input, so a
broken grammar does not crash; it silently parses worse.  An undefined
symbol means a production never fires; a contradictory preference pair
means instances invalidate each other both ways; an empty spatial bound
means a pattern can never assemble.  These defects are invisible at
runtime and expensive to debug from extraction quality alone.

This package finds them *without running the parser*.  Two tiers:

* **syntactic hygiene** -- :func:`analyze_grammar` checks symbol hygiene,
  spatial-bound satisfiability, callable arity, preference coherence, and
  previews the schedule graph (d-edge cycles, r-edge transformations and
  relaxations) using the exact construction the runtime scheduler
  consumes;
* **semantic analysis** -- abstract interpretation over the grammar: a
  bounded terminal-yield engine (:mod:`repro.analysis.yields`) feeds the
  ambiguity/overlap pass (G02x: productions that can fire on the same
  tokens), the preference-totality pass (P01x: is every possible conflict
  arbitrated?), and the coverage pass (C00x: the paper's §6.4
  incompleteness argument, statically); interval-algebra propagation
  through production chains (G03x) finds spatial dead ends the per-pair
  checks cannot see.

Every finding is a :class:`Diagnostic` with a stable code -- ``G0xx``
grammar structure, ``P0xx`` preferences, ``S0xx`` schedule, ``C0xx``
coverage -- documented in ``docs/GRAMMAR.md`` ("Diagnostics catalogue")
and in :data:`repro.analysis.catalog.CATALOG` (``repro lint --explain``).

Entry points:

* ``repro lint`` -- CLI, human or ``--json`` output, exit 1 on errors;
  ``--coverage`` adds the tokenizer-relative coverage matrix,
  ``--candidate FILE.json`` runs the admission gate, ``--explain CODE``
  prints catalogue entries;
* ``BestEffortParser(grammar, validate_grammar=True)`` /
  ``FormExtractor(validate_grammar=True)`` / ``repro serve`` startup --
  opt-in fast-fail raising :class:`GrammarDiagnosticsError`;
* :func:`analyze_grammar` -- the library API used by all of the above;
* :func:`admit_production` -- the admission gate for machine-proposed
  productions (the learning roadmap's gatekeeper).
"""

from repro.analysis.admit import (
    AdmissionReport,
    CandidateError,
    CandidateProduction,
    admit_production,
)
from repro.analysis.analyzer import analyze_grammar
from repro.analysis.catalog import CATALOG, CatalogEntry, explain
from repro.analysis.coverage import coverage_matrix, render_coverage_matrix
from repro.analysis.diagnostics import (
    REPORT_SCHEMA_VERSION,
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    AnalysisReport,
    Diagnostic,
    GrammarDiagnosticsError,
)
from repro.analysis.view import GrammarView, as_view
from repro.analysis.yields import YieldSummary, compute_yields

__all__ = [
    "AdmissionReport",
    "AnalysisReport",
    "CATALOG",
    "CandidateError",
    "CandidateProduction",
    "CatalogEntry",
    "Diagnostic",
    "GrammarDiagnosticsError",
    "GrammarView",
    "REPORT_SCHEMA_VERSION",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "YieldSummary",
    "admit_production",
    "analyze_grammar",
    "as_view",
    "compute_yields",
    "coverage_matrix",
    "explain",
    "render_coverage_matrix",
]
